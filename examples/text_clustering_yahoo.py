"""Text clustering — the paper's Yahoo! Answers scenario end to end.

Builds a topic-tagged question corpus (a synthetic stand-in for the
licence-gated Webscope data), runs the Section IV-B pipeline —
per-topic TF-IDF vocabulary selection, binary word-presence encoding —
and clusters the questions into topics with K-Modes and MH-K-Modes.

Demonstrates the two pipeline knobs the paper studies:

* the TF-IDF threshold (0.7 → few hundred attributes, 0.3 → thousands);
* presence filtering (``absent_code=0``), without which MinHash would
  hash mostly-shared "word absent" values.

Run:  python examples/text_clustering_yahoo.py
"""

import numpy as np

from repro import (
    KModes,
    MHKModes,
    YahooAnswersSynthesizer,
    cluster_purity,
    corpus_to_dataset,
)
from repro.api import LSHSpec, TrainSpec


def run_threshold(corpus, threshold: float) -> None:
    dataset = corpus_to_dataset(corpus, tfidf_threshold=threshold)
    n_topics = corpus.n_topics
    print(
        f"\n--- TF-IDF threshold {threshold}: "
        f"{dataset.n_items} questions x {dataset.n_attributes} word attributes"
    )

    rng = np.random.default_rng(1)
    initial = dataset.X[rng.choice(dataset.n_items, n_topics, replace=False)]

    exact = KModes(n_clusters=n_topics, max_iter=8, seed=1)
    exact.fit(dataset.X, initial_modes=initial)

    # 1 band x 1 row: the cheapest possible index — the configuration
    # the paper found most efficient on this workload (Figure 10b).
    fast = MHKModes(
        n_clusters=n_topics,
        lsh=LSHSpec(bands=1, rows=1, seed=1),
        train=TrainSpec(max_iter=8),
        absent_code=0,
    )
    fast.fit(dataset.X, initial_centroids=initial)

    for model in (exact, fast):
        stats = model.stats_
        shortlist = (
            f"{np.nanmean(stats.shortlist_sizes):7.1f}"
            if stats.shortlist_sizes and not np.isnan(stats.shortlist_sizes[0])
            else f"{n_topics:7d}"
        )
        print(
            f"{stats.algorithm:20s} iters={model.n_iter_} "
            f"total={stats.total_time_s:6.2f}s shortlist={shortlist} "
            f"purity={cluster_purity(model.labels_, dataset.labels):.3f}"
        )
    print(
        f"speedup: {exact.stats_.total_time_s / fast.stats_.total_time_s:.2f}x "
        f"(purity is capped by the {corpus.label_noise_rate():.0%} label noise, "
        "mirroring the paper's low absolute purity)"
    )


def main() -> None:
    corpus = YahooAnswersSynthesizer(
        n_topics=250,
        label_noise=0.1,   # users pick the wrong fine-grained topic
        keyword_bleed=0.05,  # related topics share keywords
        seed=42,
    ).generate(3_000)
    print(
        f"corpus: {corpus.n_questions} questions across {corpus.n_topics} topics, "
        f"{corpus.label_noise_rate():.1%} mislabelled"
    )
    sample = " ".join(corpus.questions[0][:8])
    print(f"sample question tokens: {sample} ...")

    run_threshold(corpus, threshold=0.7)
    run_threshold(corpus, threshold=0.3)


if __name__ == "__main__":
    main()
