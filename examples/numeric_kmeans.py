"""Numeric data — the paper's Further Work, implemented.

The paper closes by proposing to extend the framework "to work with
not only categorical data, but numeric data".  This example clusters
Gaussian blobs three ways:

* exact Lloyd K-Means (the baseline);
* LSH-K-Means — the same clustered-index framework with p-stable
  Euclidean hashing instead of MinHash;
* mini-batch K-Means (Sculley 2010) — the related-work [16] approach
  that trades exactness for sampling rather than search-space pruning.

Run:  python examples/numeric_kmeans.py
"""

import time

import numpy as np

from repro import KMeans, LSHKMeans, MiniBatchKMeans, adjusted_rand_index
from repro.api import LSHSpec, TrainSpec


def make_blobs(n_clusters: int, n_points: int, dim: int, seed: int):
    rng = np.random.default_rng(seed)
    centres = rng.normal(0.0, 10.0, size=(n_clusters, dim))
    truth = rng.integers(0, n_clusters, size=n_points)
    X = centres[truth] + rng.normal(0.0, 0.5, size=(n_points, dim))
    return X, truth


def main() -> None:
    k, n, dim = 200, 6_000, 24
    X, truth = make_blobs(k, n, dim, seed=11)
    rng = np.random.default_rng(11)
    initial = X[rng.choice(n, k, replace=False)]
    print(f"{n} points, {dim} dims, {k} planted Gaussian clusters\n")

    models = [
        ("K-Means (Lloyd)", KMeans(n_clusters=k, max_iter=25, seed=11)),
        (
            "LSH-K-Means pstable 16b4r",
            LSHKMeans(
                n_clusters=k,
                lsh=LSHSpec(family="pstable", bands=16, rows=4, width=6.0, seed=11),
                train=TrainSpec(max_iter=25),
            ),
        ),
        (
            "LSH-K-Means simhash 16b4r",
            LSHKMeans(
                n_clusters=k,
                lsh=LSHSpec(family="simhash", bands=16, rows=4, seed=11),
                train=TrainSpec(max_iter=25),
            ),
        ),
        (
            "MiniBatch-K-Means b512",
            MiniBatchKMeans(n_clusters=k, batch_size=512, max_iter=60, seed=11),
        ),
    ]

    for name, model in models:
        start = time.perf_counter()
        if isinstance(model, MiniBatchKMeans):
            model.fit(X)
        else:
            model.fit(X, initial_centroids=initial)
        elapsed = time.perf_counter() - start
        shortlist = ""
        if isinstance(model, LSHKMeans):
            shortlist = (
                f" shortlist={np.nanmean(model.stats_.shortlist_sizes):6.1f}/{k}"
            )
        print(
            f"{name:28s} time={elapsed:6.2f}s iters={model.n_iter_:3d} "
            f"SSE={model.cost_:12.0f} "
            f"ARI={adjusted_rand_index(model.labels_, truth):.3f}{shortlist}"
        )

    print(
        "\nLSH-K-Means prunes the centroid search exactly like MH-K-Modes "
        "prunes modes;\nmini-batch instead subsamples items — the two "
        "accelerations are orthogonal."
    )


if __name__ == "__main__":
    main()
