"""Reproduce a paper experiment with the built-in harness.

Runs the (scaled) Figure 2 experiment — three MH-K-Modes
configurations against exact K-Modes from identical initial centroids
— and prints the same tables the paper plots: time per iteration,
average shortlist size, moves per iteration, and the end-to-end
summary with speedups and purity.

The other experiments are one id away:
``EXPERIMENTS['fig3' | 'fig4' | 'fig5' | 'fig5xl' | 'fig9' | 'fig10']``
(or, from a shell: ``python -m repro compare fig3``).

Run:  python examples/large_scale_comparison.py
"""

from repro.experiments import (
    FIG2,
    render_comparison_summary,
    render_series_table,
    run_synthetic_experiment,
)


def main() -> None:
    print(FIG2.description)
    print(
        f"scaled workload: {FIG2.n_items} items x {FIG2.n_attributes} attrs, "
        f"k={FIG2.n_clusters}\n"
    )
    result = run_synthetic_experiment(FIG2)

    print(render_comparison_summary(result))
    for fieldname in ("duration_s", "mean_shortlist", "moves"):
        print()
        print(render_series_table(result, fieldname))

    best = min(
        (label for label in result.results if label != "K-Modes"),
        key=lambda label: result.results[label].total_time_s,
    )
    print(
        f"\nbest MH configuration: {best} — "
        f"{result.speedup(best):.2f}x end-to-end, "
        f"{result.iteration_speedup(best):.2f}x per iteration"
    )


if __name__ == "__main__":
    main()
