"""Quickstart: accelerate K-Modes with a MinHash index.

Generates a synthetic categorical dataset with planted clusters (the
paper's datgen-style workload), clusters it twice — once with exact
K-Modes, once with MH-K-Modes — from identical initial centroids, and
compares time, shortlist size and purity.  Finishes by exporting the
fitted model as an immutable ``ClusterModel`` artifact, the object a
serving deployment would ship.

Estimators are configured through the spec API (``repro.api``): an
``LSHSpec`` describes the index declaratively and a ``TrainSpec`` the
loop.  The pre-spec flat kwargs still work but are deprecated::

    MHKModes(n_clusters=400, bands=20, rows=5, max_iter=15, seed=7)
    # DeprecationWarning: MHKModes(bands=...) is deprecated; pass
    #                     lsh=LSHSpec(bands=...) instead (see repro.api)

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import KModes, MHKModes, RuleBasedGenerator, cluster_purity
from repro.api import LSHSpec, TrainSpec


def main() -> None:
    # 1. A dataset with 400 planted clusters over a 40 000-value domain.
    generator = RuleBasedGenerator(
        n_clusters=400,
        n_attributes=60,
        domain_size=40_000,
        noise_rate=0.1,
        seed=7,
    )
    data = generator.generate(3_000)
    print(f"dataset: {data.describe()}")

    # 2. Fix the initial modes so both algorithms start identically
    #    (the paper's evaluation protocol).
    rng = np.random.default_rng(7)
    initial = data.X[rng.choice(data.n_items, size=400, replace=False)]

    # 3. Exact K-Modes: every item against all 400 modes, every pass.
    exact = KModes(n_clusters=400, max_iter=15, seed=7)
    exact.fit(data.X, initial_modes=initial)

    # 4. MH-K-Modes: hash items once, then compare only against the
    #    clusters of colliding items.  The LSHSpec is the declarative
    #    description of the index (paper's banding: 20 bands x 5 rows).
    fast = MHKModes(
        n_clusters=400,
        lsh=LSHSpec(bands=20, rows=5, seed=7),
        train=TrainSpec(max_iter=15),
    )
    fast.fit(data.X, initial_centroids=initial)

    # 5. Compare.
    for model in (exact, fast):
        stats = model.stats_
        mean_shortlist = (
            np.nanmean(stats.shortlist_sizes) if stats.shortlist_sizes else 400
        )
        print(
            f"{stats.algorithm:22s} iterations={model.n_iter_:2d} "
            f"setup={stats.setup_s:6.2f}s total={stats.total_time_s:6.2f}s "
            f"mean shortlist={mean_shortlist:7.2f} "
            f"purity={cluster_purity(model.labels_, data.labels):.3f}"
        )
    speedup = exact.stats_.total_time_s / fast.stats_.total_time_s
    iter_speedup = (
        exact.stats_.mean_iteration_s / fast.stats_.mean_iteration_s
    )
    print(f"\nend-to-end speedup: {speedup:.2f}x   per-iteration: {iter_speedup:.2f}x")

    # 6. Export the immutable serving artifact: centroids + band keys +
    #    specs, no training machinery.  predict() on the artifact is
    #    bit-identical to the estimator's.
    artifact = fast.fitted_model()
    novel = generator.generate(50).X
    assert np.array_equal(artifact.predict(novel), fast.predict(novel))
    print(f"exported {artifact!r}")


if __name__ == "__main__":
    main()
