"""Choosing (bands, rows) — Section III-C/III-D in executable form.

Walks through the paper's parameter reasoning:

1. the S-curve: how (b, r) positions the candidate-pair probability;
2. the paper's twist — per-cluster recall needs only ONE collision, so
   much cheaper configurations suffice than classic MinHash practice;
3. the closed-form error bound and its worked example (m=100, r=1,
   b=25, |C|=20 → 0.08);
4. repro.suggest_bands_rows, which searches for the cheapest
   configuration meeting a recall target;
5. an empirical check of the chosen configuration on planted data.

Run:  python examples/parameter_tuning.py
"""

import numpy as np

from repro import MHKModes, RuleBasedGenerator, cluster_purity, suggest_bands_rows
from repro.api import LSHSpec, TrainSpec
from repro.core.error_bound import (
    candidate_pair_probability,
    cluster_recall_probability,
    error_bound,
)
from repro.lsh.bands import threshold_similarity


def show_s_curves() -> None:
    print("S-curves: P(candidate pair) at similarity s for several (b, r)")
    configs = [(1, 1), (20, 2), (20, 5), (50, 5)]
    header = "     s  " + "".join(f"{b:3d}b{r}r   " for b, r in configs)
    print(header)
    for s in (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9):
        row = f"  {s:.2f}  "
        for b, r in configs:
            row += f"{candidate_pair_probability(s, b, r):8.3f} "
        print(row)
    for b, r in configs:
        print(
            f"  threshold (1/b)^(1/r) for {b}b {r}r: "
            f"{threshold_similarity(b, r):.3f}"
        )


def show_cluster_recall_twist() -> None:
    print("\nPer-cluster recall (the paper's footnote 1):")
    s, b, r = 0.1, 20, 2
    pair = candidate_pair_probability(s, b, r)
    for cluster_size in (1, 5, 10, 50):
        recall = cluster_recall_probability(s, b, r, cluster_size)
        print(
            f"  pair prob {pair:.3f}; cluster of {cluster_size:3d} similar "
            f"items is found with P = {recall:.3f}"
        )


def show_error_bound() -> None:
    print("\nSection III-C error bound (1 - (1/(2m-1))^r)^(b|C|):")
    print(
        "  paper's worked example m=100, b=25, r=1, |C|=20 → "
        f"{error_bound(100, 25, 1, 20):.3f}  (paper: 0.08)"
    )
    for bands in (5, 10, 25, 50, 100):
        print(f"  b={bands:4d}: bound = {error_bound(100, bands, 1, 20):.4f}")


def tune_and_verify() -> None:
    print("\nAutomatic (b, r) selection and empirical verification:")
    # datgen-style data: ~60 % of attributes pinned per cluster gives
    # within-cluster Jaccard around 0.6/(2-0.6) ≈ 0.43.
    recommendation = suggest_bands_rows(
        target_similarity=0.43, cluster_size=5, min_recall=0.95, max_hashes=256
    )
    print(f"  recommended: {recommendation}")

    data = RuleBasedGenerator(
        n_clusters=300, n_attributes=60, noise_rate=0.1, seed=3
    ).generate(2_400)
    # The recommendation drops straight into an LSHSpec — the tuned
    # banding is data, not keyword soup.
    spec = LSHSpec(bands=recommendation.bands, rows=recommendation.rows, seed=3)
    model = MHKModes(
        n_clusters=300, lsh=spec, train=TrainSpec(max_iter=12)
    ).fit(data.X)
    print(
        f"  fitted {model.stats_.algorithm}: "
        f"purity={cluster_purity(model.labels_, data.labels):.3f}, "
        f"mean shortlist={np.nanmean(model.stats_.shortlist_sizes):.2f} "
        f"(search space was 300 clusters)"
    )


def main() -> None:
    show_s_curves()
    show_cluster_recall_twist()
    show_error_bound()
    tune_and_verify()


if __name__ == "__main__":
    main()
