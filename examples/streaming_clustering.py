"""Streaming clustering — the paper's last Further Work item, running.

Bootstraps MH-K-Modes on an initial batch, then absorbs the rest of
the data one item at a time: each arrival is MinHashed into the live
index, assigned through its candidate-cluster shortlist, and counted
into incremental per-cluster statistics; modes refresh periodically
without ever touching past items again.

Compares three regimes on the same planted data:

* batch MH-K-Modes over everything (the reference);
* bootstrap 60 % + stream 40 %;
* bootstrap 20 % + stream 80 % (mostly streamed).

Run:  python examples/streaming_clustering.py
"""

import time

import numpy as np

from repro import MHKModes, RuleBasedGenerator, StreamingMHKModes, cluster_purity
from repro.api import LSHSpec, TrainSpec


def main() -> None:
    k = 300
    data = RuleBasedGenerator(
        n_clusters=k, n_attributes=40, noise_rate=0.05, seed=21
    ).generate(6_000)
    print(f"dataset: {data.describe()}\n")

    # Reference: batch clustering of the full dataset.
    start = time.perf_counter()
    batch = MHKModes(
        n_clusters=k,
        lsh=LSHSpec(bands=20, rows=3, seed=21),
        train=TrainSpec(max_iter=15),
    )
    batch.fit(data.X)
    batch_time = time.perf_counter() - start
    batch_purity = cluster_purity(batch.labels_, data.labels)
    print(
        f"batch MH-K-Modes          : {batch_time:6.2f}s  "
        f"purity={batch_purity:.3f}"
    )

    for bootstrap_fraction in (0.6, 0.2):
        split = int(len(data.X) * bootstrap_fraction)
        stream = StreamingMHKModes(
            n_clusters=k,
            lsh=LSHSpec(bands=20, rows=3, seed=21),
            refresh_interval=250,
        )
        start = time.perf_counter()
        stream.bootstrap(data.X[:split])
        bootstrap_time = time.perf_counter() - start

        start = time.perf_counter()
        streamed_labels = stream.extend(data.X[split:])
        stream_time = time.perf_counter() - start

        streamed_purity = cluster_purity(streamed_labels, data.labels[split:])
        per_item_ms = 1000.0 * stream_time / (len(data.X) - split)
        print(
            f"bootstrap {bootstrap_fraction:.0%} + stream {1-bootstrap_fraction:.0%}: "
            f"{bootstrap_time:6.2f}s + {stream_time:5.2f}s "
            f"({per_item_ms:.2f} ms/item)  "
            f"streamed-item purity={streamed_purity:.3f}  "
            f"fallbacks={stream.n_fallbacks_}"
        )

    print(
        "\nStreamed items join clusters at near-batch purity while each "
        "arrival costs\nmilliseconds — no pass over historical data ever "
        "recurs (the index absorbs\ninserts in O(bands))."
    )


if __name__ == "__main__":
    main()
