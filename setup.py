"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup(
    extras_require={
        # Optional JIT tier for repro.kernels.  The default install is
        # pure NumPy; the shipped C kernels need only a system C
        # compiler at runtime.  With this extra installed, backend
        # selection prefers Numba-compiled kernels (see
        # src/repro/kernels/__init__.py).
        "kernels": ["numba>=0.57"],
    },
)
