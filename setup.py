"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
