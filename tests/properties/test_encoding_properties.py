"""Property-based tests for encoders and the index (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.encoding import CategoricalEncoder, encode_presence_matrix
from repro.lsh.index import ClusteredLSHIndex
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets

raw_rows = st.lists(
    st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=3, max_size=3),
    min_size=1,
    max_size=25,
)


class TestEncoderProperties:
    @given(rows=raw_rows)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, rows):
        enc = CategoricalEncoder()
        assert enc.inverse_transform(enc.fit_transform(rows)) == rows

    @given(rows=raw_rows)
    @settings(max_examples=60, deadline=None)
    def test_codes_dense_from_zero(self, rows):
        codes = CategoricalEncoder().fit_transform(rows)
        for j in range(codes.shape[1]):
            column = codes[:, j]
            assert column.min() == 0
            assert set(np.unique(column)) == set(range(column.max() + 1))

    @given(rows=raw_rows)
    @settings(max_examples=40, deadline=None)
    def test_equal_rows_equal_codes(self, rows):
        enc = CategoricalEncoder()
        codes = enc.fit_transform(rows)
        for i in range(len(rows)):
            for j in range(len(rows)):
                if rows[i] == rows[j]:
                    assert np.array_equal(codes[i], codes[j])


class TestPresenceMatrixProperties:
    docs = st.lists(
        st.lists(st.sampled_from("pqrstuv"), max_size=6), min_size=1, max_size=15
    )

    @given(docs=docs)
    @settings(max_examples=60, deadline=None)
    def test_bits_match_membership(self, docs):
        vocabulary = sorted({t for doc in docs for t in doc} | {"zz"})
        matrix = encode_presence_matrix(docs, vocabulary)
        for i, doc in enumerate(docs):
            for j, word in enumerate(vocabulary):
                assert matrix[i, j] == (1 if word in doc else 0)


class TestIndexProperties:
    @given(
        rows=st.lists(
            st.lists(st.integers(0, 200), max_size=8), min_size=1, max_size=20
        ),
        bands=st.integers(1, 6),
        lsh_rows=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_candidate_symmetry(self, rows, bands, lsh_rows):
        # Collision is symmetric: j in candidates(i) ⟺ i in candidates(j).
        ts = TokenSets.from_lists(rows)
        sigs = MinHasher(bands * lsh_rows, seed=0).signatures(ts)
        index = ClusteredLSHIndex(bands, lsh_rows).build(
            sigs, np.arange(len(rows))
        )
        for i in range(len(rows)):
            for j in index.candidate_items(i).tolist():
                assert i in index.candidate_items(j).tolist()

    @given(
        rows=st.lists(
            st.lists(st.integers(0, 200), max_size=8), min_size=1, max_size=20
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_token_sets_always_collide(self, rows):
        # Duplicate every row; each duplicate must see its twin.
        doubled = rows + rows
        ts = TokenSets.from_lists(doubled)
        sigs = MinHasher(8, seed=1).signatures(ts)
        index = ClusteredLSHIndex(4, 2).build(sigs, np.arange(len(doubled)))
        n = len(rows)
        for i in range(n):
            assert (i + n) in index.candidate_items(i).tolist()
