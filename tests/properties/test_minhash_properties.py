"""Property-based tests of the MinHash substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.bands import band_probability, compute_band_keys, threshold_similarity
from repro.lsh.minhash import EMPTY_SLOT, MinHasher
from repro.lsh.tokens import TokenSets

token_lists = st.lists(
    st.integers(min_value=0, max_value=1_000_000), min_size=0, max_size=40
)


class TestSignatureProperties:
    @given(tokens=token_lists, seed=st.integers(0, 1_000))
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, tokens, seed):
        mh = MinHasher(16, seed=seed)
        forward = mh.signature(np.array(tokens, dtype=np.int64))
        backward = mh.signature(np.array(tokens[::-1], dtype=np.int64))
        assert np.array_equal(forward, backward)

    @given(tokens=token_lists)
    @settings(max_examples=60, deadline=None)
    def test_idempotent_under_duplication(self, tokens):
        mh = MinHasher(16, seed=0)
        once = mh.signature(np.array(tokens, dtype=np.int64))
        twice = mh.signature(np.array(tokens + tokens, dtype=np.int64))
        assert np.array_equal(once, twice)

    @given(a=token_lists, b=token_lists)
    @settings(max_examples=60, deadline=None)
    def test_union_signature_is_elementwise_min(self, a, b):
        # MinHash's defining algebraic property:
        # sig(A ∪ B) = min(sig(A), sig(B)) element-wise.
        mh = MinHasher(24, seed=1)
        sig_a = mh.signature(np.array(a, dtype=np.int64))
        sig_b = mh.signature(np.array(b, dtype=np.int64))
        sig_union = mh.signature(np.array(a + b, dtype=np.int64))
        assert np.array_equal(sig_union, np.minimum(sig_a, sig_b))

    @given(tokens=st.lists(st.integers(0, 10**6), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_nonempty_signatures_below_sentinel(self, tokens):
        sig = MinHasher(8, seed=2).signature(np.array(tokens, dtype=np.int64))
        assert sig.max() < EMPTY_SLOT

    @given(
        rows_of_tokens=st.lists(token_lists, min_size=1, max_size=12),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_per_item(self, rows_of_tokens, seed):
        mh = MinHasher(12, seed=seed)
        batch = mh.signatures(TokenSets.from_lists(rows_of_tokens))
        for i, row in enumerate(rows_of_tokens):
            single = mh.signature(np.array(row, dtype=np.int64))
            assert np.array_equal(batch[i], single)

    @given(
        subset_size=st.integers(1, 20),
        superset_extra=st.integers(0, 20),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_subset_signature_dominates(self, subset_size, superset_extra, seed):
        # Adding elements can only lower (or keep) each signature slot.
        rng = np.random.default_rng(seed)
        subset = rng.choice(10_000, subset_size, replace=False)
        extra = 10_000 + rng.choice(10_000, superset_extra, replace=False) \
            if superset_extra else np.empty(0, dtype=np.int64)
        mh = MinHasher(16, seed=seed)
        sig_small = mh.signature(subset.astype(np.int64))
        sig_big = mh.signature(np.concatenate([subset, extra]).astype(np.int64))
        assert np.all(sig_big <= sig_small)


class TestBandProperties:
    @given(
        bands=st.integers(1, 30),
        rows=st.integers(1, 8),
        s=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_is_a_probability(self, bands, rows, s):
        p = band_probability(s, bands, rows)
        assert 0.0 <= p <= 1.0

    @given(bands=st.integers(1, 50), rows=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_threshold_within_unit_interval(self, bands, rows):
        t = threshold_similarity(bands, rows)
        assert 0.0 < t <= 1.0

    @given(
        n=st.integers(1, 10),
        bands=st.integers(1, 8),
        rows=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_band_keys_deterministic_shape(self, n, bands, rows, seed):
        rng = np.random.default_rng(seed)
        sigs = rng.integers(0, 2**31 - 1, size=(n, bands * rows))
        keys = compute_band_keys(sigs, bands, rows)
        assert keys.shape == (n, bands)
        assert np.array_equal(keys, compute_band_keys(sigs, bands, rows))

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_equal_bands_equal_keys(self, data):
        rows = data.draw(st.integers(1, 4))
        bands = data.draw(st.integers(1, 6))
        base = data.draw(
            st.lists(st.integers(0, 1_000), min_size=bands * rows, max_size=bands * rows)
        )
        sig_a = np.array([base])
        sig_b = np.array([base])  # identical signature
        keys_a = compute_band_keys(sig_a, bands, rows)
        keys_b = compute_band_keys(sig_b, bands, rows)
        assert np.array_equal(keys_a, keys_b)
