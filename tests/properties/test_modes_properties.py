"""Property-based tests of K-Modes invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kmodes.cost import clustering_cost
from repro.kmodes.dissimilarity import matching_distance, pairwise_matching
from repro.kmodes.modes import compute_modes


small_matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 8)),
    elements=st.integers(0, 6),
)


class TestDistanceProperties:
    @given(X=small_matrices)
    @settings(max_examples=50, deadline=None)
    def test_self_distance_zero(self, X):
        D = pairwise_matching(X, X)
        assert np.all(np.diag(D) == 0)

    @given(X=small_matrices)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, X):
        D = pairwise_matching(X, X)
        assert np.array_equal(D, D.T)

    @given(
        x=st.lists(st.integers(0, 5), min_size=1, max_size=10),
        y=st.lists(st.integers(0, 5), min_size=1, max_size=10),
        z=st.lists(st.integers(0, 5), min_size=1, max_size=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_triangle_inequality(self, x, y, z):
        m = min(len(x), len(y), len(z))
        a, b, c = (np.array(v[:m], dtype=np.int64) for v in (x, y, z))
        assert matching_distance(a, c) <= (
            matching_distance(a, b) + matching_distance(b, c)
        )

    @given(X=small_matrices)
    @settings(max_examples=50, deadline=None)
    def test_distance_bounded_by_m(self, X):
        D = pairwise_matching(X, X)
        assert D.max() <= X.shape[1]


class TestModeProperties:
    @given(X=small_matrices, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_mode_is_global_minimiser_per_column(self, X, data):
        n = X.shape[0]
        k = data.draw(st.integers(1, min(4, n)))
        labels = np.array(
            data.draw(
                st.lists(st.integers(0, k - 1), min_size=n, max_size=n)
            ),
            dtype=np.int64,
        )
        modes = compute_modes(
            X, labels, k, previous_modes=np.zeros((k, X.shape[1]), dtype=X.dtype)
        )
        base = clustering_cost(X, modes, labels)
        # Any alternative value in any cell cannot beat the mode.
        cluster = data.draw(st.integers(0, k - 1))
        column = data.draw(st.integers(0, X.shape[1] - 1))
        alternative = data.draw(st.integers(0, 6))
        perturbed = modes.copy()
        perturbed[cluster, column] = alternative
        assert clustering_cost(X, perturbed, labels) >= base

    @given(X=small_matrices)
    @settings(max_examples=50, deadline=None)
    def test_single_cluster_mode_values_occur_in_data(self, X):
        labels = np.zeros(X.shape[0], dtype=np.int64)
        modes = compute_modes(X, labels, 1)
        for j in range(X.shape[1]):
            assert modes[0, j] in X[:, j]

    @given(X=small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_modes_idempotent(self, X):
        # Recomputing modes from an unchanged assignment changes nothing.
        labels = np.zeros(X.shape[0], dtype=np.int64)
        first = compute_modes(X, labels, 1)
        second = compute_modes(X, labels, 1, previous_modes=first)
        assert np.array_equal(first, second)


class TestCostProperties:
    @given(X=small_matrices, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_cost_bounds(self, X, data):
        n, m = X.shape
        k = data.draw(st.integers(1, 4))
        labels = np.array(
            data.draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        modes = compute_modes(
            X, labels, k, previous_modes=np.zeros((k, m), dtype=X.dtype)
        )
        cost = clustering_cost(X, modes, labels)
        assert 0 <= cost <= n * m

    @given(X=small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_assignment_step_never_increases_cost(self, X):
        # One full K-Modes round (assign → update) from random modes.
        rng = np.random.default_rng(0)
        k = min(3, X.shape[0])
        modes = X[rng.choice(X.shape[0], k, replace=False)]
        labels = np.argmin(pairwise_matching(X, modes), axis=1)
        cost_after_assign = clustering_cost(X, modes, labels)
        new_modes = compute_modes(X, labels, k, previous_modes=modes)
        assert clustering_cost(X, new_modes, labels) <= cost_after_assign
