"""Serving equivalence properties: every path is the same predict.

The serving contract of :class:`repro.serve.ModelServer` is that it is
a pure *delivery* layer: for any spec and dataset, every combination of
backend (serial / thread / process), chunk size (including 1),
batch size (including 1 and 0) and request ordering returns labels
bit-identical to in-process ``ClusterModel.predict`` — which itself
routes through the training estimator's batched shortlist ``predict``.
Hypothesis drives random specs and datasets through the serial and
thread paths; the process backend (expensive to spin per example)
is pinned to representative chunkings over a fixed workload.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import ServeSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.kmeans.mh_kmeans import LSHKMeans
from repro.serve import ModelServer


@st.composite
def serving_cases(draw):
    """A random (dataset, LSH spec, serve chunking) serving scenario."""
    n = draw(st.integers(min_value=12, max_value=70))
    m = draw(st.integers(min_value=2, max_value=8))
    domain = draw(st.integers(min_value=2, max_value=40))
    k = draw(st.integers(min_value=1, max_value=6))
    bands = draw(st.integers(min_value=1, max_value=6))
    rows = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    chunk = draw(st.sampled_from([1, 2, 5, 64]))
    backend = draw(st.sampled_from(["serial", "thread"]))
    return n, m, domain, k, bands, rows, seed, chunk, backend


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=serving_cases())
def test_served_labels_bit_identical_for_random_specs(case):
    n, m, domain, k, bands, rows, seed, chunk, backend = case
    rng = np.random.default_rng(seed)
    X_train = rng.integers(0, domain, size=(n, m))
    X_novel = rng.integers(0, domain, size=(n // 2 + 1, m))
    estimator = MHKModes(
        n_clusters=k,
        lsh={"bands": bands, "rows": rows, "seed": seed},
        train={"max_iter": 5},
        domain_size=domain,  # novel draws stay inside the fitted domain
    ).fit(X_train)
    model = estimator.fitted_model()
    spec = ServeSpec(
        backend=backend, n_jobs=2, chunk_items=chunk, max_batch=max(n, 64)
    )
    with ModelServer(model, spec) as server:
        for X in (X_train, X_novel):
            reference = model.predict(X)
            assert np.array_equal(reference, estimator.predict(X))
            assert np.array_equal(server.predict(X), reference)
            # batch-size-1 requests walk the identical code path
            assert np.array_equal(server.predict(X[:1]), reference[:1])
        # the empty batch is a legal request with zero labels
        empty = server.predict(np.empty((0, m), dtype=np.int64))
        assert empty.shape == (0,) and empty.dtype == np.int64


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=serving_cases())
def test_all_absent_rows_serve_bit_identical(case):
    """Rows where every cell is ``absent_code`` (empty token sets) get
    the same label from the estimator, the artifact and the server."""
    n, m, domain, k, bands, rows, seed, chunk, backend = case
    rng = np.random.default_rng(seed)
    absent = int(rng.integers(0, domain))
    X_train = rng.integers(0, domain, size=(n, m))
    X_train[rng.integers(0, n)] = absent  # an all-absent training row
    X_novel = rng.integers(0, domain, size=(n // 2 + 1, m))
    X_novel[0] = absent
    X_novel[-1] = absent
    estimator = MHKModes(
        n_clusters=k,
        lsh={"bands": bands, "rows": rows, "seed": seed},
        train={"max_iter": 5},
        domain_size=domain,
        absent_code=absent,
    ).fit(X_train)
    model = estimator.fitted_model()
    spec = ServeSpec(
        backend=backend, n_jobs=2, chunk_items=chunk, max_batch=max(n, 64)
    )
    with ModelServer(model, spec) as server:
        for X in (X_train, X_novel):
            reference = model.predict(X)
            assert np.array_equal(reference, estimator.predict(X))
            assert np.array_equal(server.predict(X), reference)


@pytest.fixture(scope="module")
def fixed_workload():
    data = RuleBasedGenerator(
        n_clusters=10, n_attributes=16, domain_size=400, noise_rate=0.1, seed=13
    ).generate(420)
    estimator = MHKModes(
        n_clusters=10, lsh={"bands": 10, "rows": 2, "seed": 4}
    ).fit(data.X)
    model = estimator.fitted_model()
    novel = RuleBasedGenerator(
        n_clusters=10, n_attributes=16, domain_size=400, seed=14
    ).generate(150)
    return estimator, model, data, novel.X


class TestProcessBackend:
    """The process path, pinned (one pool spin-up per chunking)."""

    @pytest.mark.parametrize("chunk_items", [1, 17, 4096])
    def test_process_serving_bit_identical(self, fixed_workload, chunk_items):
        estimator, model, data, X_novel = fixed_workload
        spec = ServeSpec(
            backend="process", n_jobs=2, chunk_items=chunk_items, max_batch=4096
        )
        with ModelServer(model, spec) as server:
            for X in (data.X, X_novel, X_novel[:1]):
                reference = model.predict(X)
                assert np.array_equal(server.predict(X), reference)
                assert np.array_equal(reference, estimator.predict(X))
            assert server.predict(
                np.empty((0, data.X.shape[1]), dtype=np.int64)
            ).shape == (0,)

    def test_interleaved_batch_sizes_share_one_pool(self, fixed_workload):
        _, model, data, _ = fixed_workload
        reference = model.predict(data.X)
        spec = ServeSpec(
            backend="process", n_jobs=2, chunk_items=50, max_batch=512
        )
        with ModelServer(model, spec) as server:
            rng = np.random.default_rng(3)
            for _ in range(8):
                rows = rng.choice(len(data.X), int(rng.integers(1, 120)), False)
                assert np.array_equal(server.predict(data.X[rows]), reference[rows])
            assert server._backend.sessions_opened == 1


class TestTrainingLabels:
    """On training data a converged fit serves its own labels back.

    Up to one documented asymmetry: the training pass keeps the
    *current* cluster on a distance tie (required for the fixed-point
    termination), while predict — which has no current cluster — takes
    the smallest-id minimiser.  So served labels must equal the
    training labels except where the two clusters are exactly
    equidistant, and there the served id must be the smaller one.
    """

    def test_converged_training_labels_round_trip(self, fixed_workload):
        estimator, model, data, _ = fixed_workload
        assert estimator.converged_
        centroids = np.asarray(model.centroids)
        for backend in ("serial", "thread", "process"):
            spec = ServeSpec(
                backend=backend, n_jobs=2, chunk_items=128, max_batch=512
            )
            with ModelServer(model, spec) as server:
                served = server.predict(data.X)
            trained = estimator.labels_
            diff = np.flatnonzero(served != trained)
            # overwhelmingly identical; divergences are exact ties
            assert len(diff) < 0.01 * len(data.X), backend
            if diff.size:
                d_served = np.count_nonzero(
                    data.X[diff] != centroids[served[diff]], axis=1
                )
                d_trained = np.count_nonzero(
                    data.X[diff] != centroids[trained[diff]], axis=1
                )
                assert np.array_equal(d_served, d_trained), backend
                assert np.all(served[diff] < trained[diff]), backend


class TestNumericFamily:
    """The numeric LSH estimator serves identically too (SimHash)."""

    def test_lsh_kmeans_served_bit_identical(self):
        rng = np.random.default_rng(23)
        X = np.vstack([rng.normal(3.0 * c, 1.0, (40, 6)) for c in range(5)])
        estimator = LSHKMeans(
            n_clusters=5,
            lsh={"family": "simhash", "bands": 8, "rows": 2, "seed": 1},
        ).fit(X)
        model = estimator.fitted_model()
        novel = rng.normal(6.0, 4.0, (77, 6))
        reference = model.predict(novel)
        assert np.array_equal(reference, estimator.predict(novel))
        for backend in ("serial", "thread", "process"):
            spec = ServeSpec(
                backend=backend, n_jobs=2, chunk_items=13, max_batch=256
            )
            with ModelServer(model, spec) as server:
                assert np.array_equal(server.predict(novel), reference), backend
