"""Property-based tests for the numeric LSH families (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.lsh.pstable import PStableHasher
from repro.lsh.simhash import SimHasher

# Subnormals are excluded: scaling one can underflow to (signless) zero,
# flipping a projection's sign — a float artefact, not an LSH property.
finite_floats = st.floats(
    min_value=-100.0,
    max_value=100.0,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
)

vectors = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 10)),
    elements=finite_floats,
)


class TestSimHashProperties:
    # Power-of-two scales keep X * scale exact in binary floating point;
    # arbitrary scales can flip the sign of a projection that rounds to
    # ~0, which is a float artefact rather than a SimHash defect.
    @given(X=vectors, scale=st.integers(-10, 10).map(lambda k: 2.0**k))
    @settings(max_examples=50, deadline=None)
    def test_positive_scale_invariance(self, X, scale):
        hasher = SimHasher(16, seed=0)
        assert np.array_equal(hasher.signatures(X), hasher.signatures(X * scale))

    @given(X=vectors, seed=st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_and_binary(self, X, seed):
        hasher = SimHasher(16, seed=seed)
        a = hasher.signatures(X)
        b = hasher.signatures(X)
        assert np.array_equal(a, b)
        assert set(np.unique(a)) <= {0, 1}

    @given(X=vectors)
    @settings(max_examples=50, deadline=None)
    def test_duplicate_rows_hash_identically(self, X):
        hasher = SimHasher(16, seed=1)
        doubled = np.vstack([X, X])
        sigs = hasher.signatures(doubled)
        n = X.shape[0]
        assert np.array_equal(sigs[:n], sigs[n:])


class TestPStableProperties:
    @given(X=vectors, seed=st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, X, seed):
        hasher = PStableHasher(16, seed=seed, width=4.0)
        assert np.array_equal(hasher.signatures(X), hasher.signatures(X))

    @given(X=vectors, shift=st.floats(0.0, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_cell_ids_shift_monotonically(self, X, shift):
        # Moving every point along a fixed direction can only move cell
        # ids monotonically for hash functions aligned with it; at
        # minimum the ids never decrease when the projection grows.
        hasher = PStableHasher(8, seed=3, width=4.0)
        base = hasher.signatures(X)
        # shift along the first hash direction itself
        direction = hasher._directions[:, 0]
        moved = hasher.signatures(X + shift * direction[None, :])
        assert np.all(moved[:, 0] >= base[:, 0])

    @given(X=vectors)
    @settings(max_examples=50, deadline=None)
    def test_identical_rows_identical_cells(self, X):
        hasher = PStableHasher(16, seed=4, width=2.0)
        doubled = np.vstack([X, X])
        sigs = hasher.signatures(doubled)
        n = X.shape[0]
        assert np.array_equal(sigs[:n], sigs[n:])

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_translation_by_multiple_of_width_along_direction(self, data):
        # Translating a point by w·|a|⁻²·a along direction a moves that
        # projection by exactly one cell.
        dim = data.draw(st.integers(2, 8))
        x = np.array(
            data.draw(
                st.lists(finite_floats, min_size=dim, max_size=dim)
            )
        )
        width = 4.0
        hasher = PStableHasher(4, seed=5, width=width)
        hasher.signatures(x[None, :])  # initialise projections
        a = hasher._directions[:, 0]
        norm_sq = float(a @ a)
        if norm_sq < 1e-9:
            return  # degenerate draw of the random direction
        step = width / norm_sq
        base = hasher.signature(x)
        moved = hasher.signature(x + step * a)
        assert moved[0] == base[0] + 1
