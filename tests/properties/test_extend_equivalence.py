"""Streaming ingest equivalence: extend() IS the push() loop, faster.

The contract of the batch ingest pipeline
(:meth:`repro.core.StreamingMHKModes.extend`) is that for any spec,
dataset, chunk size (including 1) and backend (serial / thread /
process), the labels it returns, the modes it refreshes, the fallback
counter and the per-cluster sizes are **bit-identical** to feeding the
same rows one by one through the sequential :meth:`push` loop.
Hypothesis drives random scenarios through the serial and thread
paths; the process backend (expensive to spin per example) is pinned
to a representative fixed workload.

The :class:`repro.core.ClusterModeTracker` storage layouts (dense
count tensor with the incrementally maintained argmax vs the
dict-of-dicts fallback) are conformance-tested against each other and
against a brute-force recount.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import LSHSpec, StreamSpec, TrainSpec
from repro.core.streaming import ClusterModeTracker, StreamingMHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.engine.pool import live_pool_count


def _bootstrap_pair(n, m, domain, k, bands, rows, seed, interval, stream=None):
    """Two independently bootstrapped streams over identical data."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, domain, size=(n, m))
    split = max(k, n // 2)
    kwargs = dict(
        n_clusters=k,
        lsh=LSHSpec(bands=bands, rows=rows, seed=seed),
        train=TrainSpec(max_iter=4),
        domain_size=domain,  # streamed draws stay inside the domain
        refresh_interval=interval,
    )
    reference = StreamingMHKModes(**kwargs).bootstrap(X[:split])
    candidate = StreamingMHKModes(
        stream=stream, **kwargs
    ).bootstrap(X[:split])
    return reference, candidate, X[split:]


def _assert_streams_equal(reference, candidate):
    assert np.array_equal(reference.modes_, candidate.modes_)
    assert reference.n_seen_ == candidate.n_seen_
    assert reference.n_fallbacks_ == candidate.n_fallbacks_
    assert np.array_equal(reference.cluster_sizes_, candidate.cluster_sizes_)
    ref_index = reference._bootstrap_model.index_
    got_index = candidate._bootstrap_model.index_
    assert ref_index.n_items == got_index.n_items
    assert np.array_equal(ref_index.assignments, got_index.assignments)
    assert np.array_equal(ref_index.band_keys, got_index.band_keys)


@st.composite
def stream_cases(draw):
    n = draw(st.integers(min_value=20, max_value=90))
    m = draw(st.integers(min_value=2, max_value=8))
    domain = draw(st.integers(min_value=2, max_value=60))
    k = draw(st.integers(min_value=1, max_value=6))
    bands = draw(st.integers(min_value=1, max_value=8))
    rows = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    interval = draw(st.sampled_from([1, 3, 7, 50, 1000]))
    chunk = draw(st.sampled_from([1, 2, 5, 8192]))
    backend = draw(st.sampled_from(["serial", "serial", "thread"]))
    return n, m, domain, k, bands, rows, seed, interval, chunk, backend


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=stream_cases())
def test_extend_bit_identical_to_push_loop(case):
    n, m, domain, k, bands, rows, seed, interval, chunk, backend = case
    stream = StreamSpec(backend=backend, n_jobs=2, chunk_items=chunk)
    reference, candidate, arrivals = _bootstrap_pair(
        n, m, domain, k, bands, rows, seed, interval, stream=stream
    )
    with candidate:
        pushed = np.array(
            [reference.push(row) for row in arrivals], dtype=np.int64
        )
        extended = candidate.extend(arrivals)
        assert np.array_equal(pushed, extended)
        _assert_streams_equal(reference, candidate)
        # an empty batch is a legal no-op with zero labels
        empty = candidate.extend(np.empty((0, m), dtype=np.int64))
        assert empty.shape == (0,) and empty.dtype == np.int64
        _assert_streams_equal(reference, candidate)
    assert live_pool_count() == 0


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=stream_cases())
def test_all_absent_rows_extend_bit_identical(case):
    """Rows where every cell is ``absent_code`` (empty token sets) take
    the fallback path identically through push() and extend()."""
    n, m, domain, k, bands, rows, seed, interval, chunk, backend = case
    rng = np.random.default_rng(seed)
    absent = int(rng.integers(0, domain))
    X = rng.integers(0, domain, size=(n, m))
    split = max(k, n // 2)
    X[rng.integers(0, split)] = absent  # an all-absent bootstrap row
    arrivals = X[split:]
    arrivals[rng.integers(0, len(arrivals))] = absent
    arrivals[0] = absent  # and one at a chunk boundary
    kwargs = dict(
        n_clusters=k,
        lsh=LSHSpec(bands=bands, rows=rows, seed=seed),
        train=TrainSpec(max_iter=4),
        domain_size=domain,
        refresh_interval=interval,
        absent_code=absent,
    )
    reference = StreamingMHKModes(**kwargs).bootstrap(X[:split])
    stream = StreamSpec(backend=backend, n_jobs=2, chunk_items=chunk)
    candidate = StreamingMHKModes(stream=stream, **kwargs).bootstrap(X[:split])
    with candidate:
        pushed = np.array(
            [reference.push(row) for row in arrivals], dtype=np.int64
        )
        extended = candidate.extend(arrivals)
        assert np.array_equal(pushed, extended)
        _assert_streams_equal(reference, candidate)
    assert live_pool_count() == 0


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=stream_cases())
def test_extend_chunk_boundaries_do_not_leak(case):
    """Splitting one batch into several extend() calls changes nothing."""
    n, m, domain, k, bands, rows, seed, interval, chunk, _ = case
    one, many, arrivals = _bootstrap_pair(
        n, m, domain, k, bands, rows, seed, interval,
        stream=StreamSpec(chunk_items=chunk),
    )
    whole = one.extend(arrivals)
    parts = []
    cut = max(1, len(arrivals) // 3)
    for start in range(0, len(arrivals), cut):
        parts.append(many.extend(arrivals[start : start + cut]))
    assert np.array_equal(whole, np.concatenate(parts) if parts else whole)
    _assert_streams_equal(one, many)


@pytest.fixture(scope="module")
def fixed_workload():
    data = RuleBasedGenerator(
        n_clusters=10, n_attributes=14, domain_size=300, noise_rate=0.1, seed=17
    ).generate(700)
    return data


def _fixed_stream(stream=None):
    return StreamingMHKModes(
        n_clusters=10,
        lsh=LSHSpec(bands=10, rows=2, seed=3),
        train=TrainSpec(max_iter=4),
        domain_size=300,
        refresh_interval=37,
        stream=stream,
    )


class TestProcessBackendPinned:
    def test_process_extend_bit_identical(self, fixed_workload):
        X = fixed_workload.X
        reference = _fixed_stream().bootstrap(X[:400])
        pushed = np.array([reference.push(row) for row in X[400:]])
        spec = StreamSpec(backend="process", n_jobs=2, chunk_items=64)
        with _fixed_stream(stream=spec).bootstrap(X[:400]) as candidate:
            extended = candidate.extend(X[400:])
            assert np.array_equal(pushed, extended)
            _assert_streams_equal(reference, candidate)
        assert live_pool_count() == 0

    def test_pool_survives_multiple_extends(self, fixed_workload):
        X = fixed_workload.X
        spec = StreamSpec(backend="thread", n_jobs=2, chunk_items=32)
        with _fixed_stream(stream=spec).bootstrap(X[:400]) as candidate:
            candidate.extend(X[400:500])
            pool = candidate._stream_pool
            candidate.extend(X[500:600])
            assert candidate._stream_pool is pool  # kept warm across calls
        assert live_pool_count() == 0


class TestTrackerConformance:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(min_value=0, max_value=120),
        m=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=8),
        domain=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**16),
        dense_limit=st.sampled_from([1, 4, 2048]),
    )
    def test_storages_agree_with_brute_force(self, n, m, k, domain, seed, dense_limit):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, domain, size=(n, m))
        labels = rng.integers(0, k, size=n)
        fallback = rng.integers(0, domain, size=(k, m))

        dense = ClusterModeTracker(k, m, storage="dense")
        dense.add_batch(X, labels)
        dict_ = ClusterModeTracker(k, m, storage="dict")
        for row, cluster in zip(X, labels):
            dict_.add(row, int(cluster))
        auto = ClusterModeTracker(k, m, dense_limit=dense_limit)
        half = n // 2
        auto.add_batch(X[:half], labels[:half])
        auto.add_batch(X[half:], labels[half:])

        expected = fallback.copy()
        for cluster in range(k):
            members = X[labels == cluster]
            if len(members) == 0:
                continue
            for j in range(m):
                values, counts = np.unique(members[:, j], return_counts=True)
                expected[cluster, j] = min(zip(-counts, values))[1]

        for tracker in (dense, dict_, auto):
            assert np.array_equal(tracker.modes(fallback), expected)
            for cluster in range(k):
                assert np.array_equal(
                    tracker.mode_of(cluster, fallback[cluster]),
                    expected[cluster],
                )
            assert tracker.cluster_sizes.tolist() == np.bincount(
                labels, minlength=k
            ).tolist()

    def test_auto_converts_to_dict_beyond_limit(self):
        tracker = ClusterModeTracker(2, 2, dense_limit=8)
        assert tracker.storage == "dense"
        tracker.add(np.array([3, 5]), 0)
        tracker.add(np.array([1000, 1000]), 1)  # outgrows the limit
        assert tracker.storage == "dict"
        fallback = np.zeros((2, 2), dtype=np.int64)
        assert tracker.modes(fallback)[0].tolist() == [3, 5]
        assert tracker.modes(fallback)[1].tolist() == [1000, 1000]

    def test_dense_storage_grows_within_limit(self):
        tracker = ClusterModeTracker(2, 2, n_categories=4, dense_limit=2048)
        tracker.add(np.array([900, 2]), 0)
        assert tracker.storage == "dense"
        assert tracker.mode_of(0, np.zeros(2, dtype=np.int64)).tolist() == [900, 2]


class TestTrackerEdgeCases:
    def test_huge_codes_do_not_overflow_the_batch_encoding(self):
        # (cluster, attribute, value) triple encoding would wrap int64
        # for 64-bit-hash-sized codes; the dict path must fall back to
        # row-by-row counting with identical results.
        tracker = ClusterModeTracker(800, 60, storage="dict")
        X = np.array([[2**62] * 60, [5] * 60, [5] * 60], dtype=np.int64)
        labels = np.array([799, 799, 799])
        tracker.add_batch(X, labels)
        reference = ClusterModeTracker(800, 60, storage="dict")
        for row, cluster in zip(X, labels):
            reference.add(row, int(cluster))
        fallback = np.zeros((800, 60), dtype=np.int64)
        assert np.array_equal(tracker.modes(fallback), reference.modes(fallback))
        assert tracker.mode_of(799, fallback[799]).tolist() == [5] * 60
        assert tracker.cluster_sizes[799] == 3

    def test_add_rejects_wrong_width_items(self):
        from repro.exceptions import DataValidationError

        tracker = ClusterModeTracker(3, 10)
        with pytest.raises(DataValidationError):
            tracker.add(np.zeros(12, dtype=np.int64), 0)  # too long
        with pytest.raises(DataValidationError):
            tracker.add(np.zeros(4, dtype=np.int64), 0)  # too short
