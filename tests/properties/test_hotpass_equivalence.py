"""Label-identity properties of the vectorised batch hot path.

The engine's vectorised batch pass must be a pure performance
transformation: at a fixed seed it produces labels bit-identical to
the per-item batch pass for every estimator, backend, chunk size and
shard count — and the batched predict path must match the per-item
prediction loop row for row, including rows whose shortlist is empty.
"""

import numpy as np
import pytest

import repro.engine.parallel as parallel_mod
from repro.core.mh_kmodes import MHKModes
from repro.core.shortlist import apply_fallback
from repro.core.streaming import StreamingMHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.exceptions import ConfigurationError
from repro.kmeans.mh_kmeans import LSHKMeans


@pytest.fixture(scope="module")
def categorical():
    data = RuleBasedGenerator(
        n_clusters=12, n_attributes=18, domain_size=600, noise_rate=0.2, seed=31
    ).generate(380)
    initial = data.X[
        np.random.default_rng(2).choice(len(data.X), 12, replace=False)
    ].copy()
    return data.X, initial


@pytest.fixture(scope="module")
def numeric():
    rng = np.random.default_rng(17)
    X = np.vstack([rng.normal(2.5 * c, 0.9, (45, 7)) for c in range(7)])
    initial = X[rng.choice(len(X), 7, replace=False)].copy()
    return X, initial


def _fit_kmodes(X, initial, per_item=False, **overrides):
    model = MHKModes(
        n_clusters=12,
        bands=8,
        rows=2,
        seed=0,
        max_iter=12,
        update_refs="batch",
        **overrides,
    )
    if per_item:
        model._force_per_item_pass = True
    model.fit(X, initial_centroids=initial)
    return model


def _fit_kmeans(X, initial, per_item=False, **overrides):
    model = LSHKMeans(
        n_clusters=7,
        bands=8,
        rows=2,
        seed=0,
        max_iter=12,
        update_refs="batch",
        **overrides,
    )
    if per_item:
        model._force_per_item_pass = True
    model.fit(X, initial_centroids=initial)
    return model


def _assert_same_fit(candidate, reference):
    assert np.array_equal(candidate.labels_, reference.labels_)
    assert np.array_equal(candidate.centroids_, reference.centroids_)
    assert candidate.n_iter_ == reference.n_iter_
    assert candidate.stats_.shortlist_sizes == reference.stats_.shortlist_sizes


ENGINE_CONFIGS = [
    {},
    {"n_shards": 3},
    {"backend": "thread", "n_jobs": 2},
    {"backend": "thread", "n_jobs": 3, "n_shards": 5},
    {"backend": "process", "n_jobs": 2},
]


class TestVectorisedPassIdentity:
    @pytest.mark.parametrize("overrides", ENGINE_CONFIGS)
    def test_mh_kmodes_matches_per_item_pass(self, categorical, overrides):
        X, initial = categorical
        reference = _fit_kmodes(X, initial, per_item=True)
        candidate = _fit_kmodes(X, initial, **overrides)
        _assert_same_fit(candidate, reference)

    @pytest.mark.parametrize("overrides", ENGINE_CONFIGS)
    def test_lsh_kmeans_matches_per_item_pass(self, numeric, overrides):
        X, initial = numeric
        reference = _fit_kmeans(X, initial, per_item=True)
        candidate = _fit_kmeans(X, initial, **overrides)
        _assert_same_fit(candidate, reference)

    @pytest.mark.parametrize("block_items", [3, 17, 100_000])
    def test_identity_invariant_to_kernel_block_size(
        self, categorical, block_items, monkeypatch
    ):
        """The memory-capping sub-block size must never change labels."""
        X, initial = categorical
        reference = _fit_kmodes(X, initial, per_item=True)
        monkeypatch.setattr(parallel_mod, "_BLOCK_ITEMS", block_items)
        candidate = _fit_kmodes(X, initial)
        chunked = _fit_kmodes(X, initial, backend="thread", n_jobs=2)
        _assert_same_fit(candidate, reference)
        _assert_same_fit(chunked, reference)

    @pytest.mark.parametrize("element_budget", [50, 4_000_000])
    def test_identity_invariant_to_distance_budget(
        self, categorical, element_budget, monkeypatch
    ):
        X, initial = categorical
        reference = _fit_kmodes(X, initial, per_item=True)
        monkeypatch.setattr(
            parallel_mod, "_BLOCK_ELEMENT_BUDGET", element_budget
        )
        _assert_same_fit(_fit_kmodes(X, initial), reference)

    def test_duplicate_heavy_data_stays_grouped(self):
        """Many identical rows form one giant neighbour group; the batch
        pass must dedupe shortlist work at the group level (not expand
        per item) and still match the per-item pass exactly."""
        rng = np.random.default_rng(9)
        distinct = rng.integers(0, 50, size=(4, 10))
        X = np.vstack([np.repeat(distinct, 120, axis=0),
                       rng.integers(0, 50, size=(20, 10))])
        initial = X[rng.choice(len(X), 4, replace=False)].copy()

        def fit(per_item, **overrides):
            model = MHKModes(
                n_clusters=4, bands=6, rows=2, seed=0, max_iter=8,
                update_refs="batch", **overrides,
            )
            if per_item:
                model._force_per_item_pass = True
            return model.fit(X, initial_centroids=initial)

        reference = fit(per_item=True)
        vectorised = fit(per_item=False)
        threaded = fit(per_item=False, backend="thread", n_jobs=2)
        assert np.array_equal(vectorised.labels_, reference.labels_)
        assert np.array_equal(threaded.labels_, reference.labels_)
        # the whole clone cohort shares one group in the index CSR
        group_of, indptr, _ = vectorised.index_.neighbour_csr()
        assert len(np.unique(group_of[:480])) == 4
        assert len(indptr) - 1 == len(np.unique(group_of))

    def test_streaming_bootstrap_matches_per_item_pass(self):
        data = RuleBasedGenerator(
            n_clusters=6, n_attributes=12, domain_size=300, seed=13
        ).generate(260)
        vectorised = StreamingMHKModes(
            n_clusters=6, bands=8, rows=1, seed=0, update_refs="batch"
        )
        sharded = StreamingMHKModes(
            n_clusters=6, bands=8, rows=1, seed=0, update_refs="batch",
            backend="thread", n_jobs=2, n_shards=3,
        )
        # per-item reference needs the hook on the inner bootstrap model,
        # so bootstrap manually through MHKModes
        inner = MHKModes(
            n_clusters=6, bands=8, rows=1, seed=0, update_refs="batch",
            precompute_neighbours=False,
        )
        inner._force_per_item_pass = True
        inner.fit(data.X[:200])
        vectorised.bootstrap(data.X[:200])
        sharded.bootstrap(data.X[:200])
        assert np.array_equal(vectorised._bootstrap_model.labels_, inner.labels_)
        assert np.array_equal(sharded._bootstrap_model.labels_, inner.labels_)
        # the streamed tail (insert + shortlist queries over the CSR-free
        # insertable index) agrees between layouts too
        assert np.array_equal(
            vectorised.extend(data.X[200:]), sharded.extend(data.X[200:])
        )


class TestBatchedPredictRegression:
    def _per_item_predict(self, model, X):
        X = model._validate_X(X)
        signatures = model._signatures(X)
        out = np.empty(X.shape[0], dtype=np.int64)
        n_empty = 0
        for i in range(X.shape[0]):
            shortlist = model.index_.candidate_clusters_for_signature(
                signatures[i]
            )
            n_empty += int(shortlist.size == 0)
            shortlist = apply_fallback(
                shortlist, model.n_clusters, model.predict_fallback
            )
            distances = model._point_distances(X, i, model.centroids_[shortlist])
            out[i] = int(shortlist[np.argmin(distances)])
        return out, n_empty

    def test_kmodes_batched_predict_with_empty_and_nonempty_rows(self, categorical):
        X, initial = categorical
        model = _fit_kmodes(X, initial)
        novel = RuleBasedGenerator(
            n_clusters=12, n_attributes=18, domain_size=600, seed=77
        ).generate(60)
        # rows guaranteed to collide with nothing: an unseen constant row
        aliens = np.full((6, X.shape[1]), 599, dtype=np.int64)
        probes = np.vstack([novel.X, aliens, X[:10]])
        expected, n_empty = self._per_item_predict(model, probes)
        assert n_empty > 0, "probe set must include empty shortlists"
        assert (
            len(probes) - n_empty > 0
        ), "probe set must include non-empty shortlists"
        assert np.array_equal(model.predict(probes), expected)

    def test_kmeans_batched_predict(self, numeric):
        X, initial = numeric
        model = _fit_kmeans(X, initial)
        rng = np.random.default_rng(5)
        probes = np.vstack(
            [
                rng.normal(2.5 * c, 1.2, (8, X.shape[1]))
                for c in range(7)
            ]
            + [rng.normal(500.0, 0.1, (4, X.shape[1]))]  # colliders with nothing
        )
        expected, n_empty = self._per_item_predict(model, probes)
        assert n_empty > 0
        assert np.array_equal(model.predict(probes), expected)

    def test_error_fallback_raises_on_empty_rows(self, categorical):
        X, initial = categorical
        model = _fit_kmodes(X, initial, predict_fallback="error")
        aliens = np.full((3, X.shape[1]), 599, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            model.predict(aliens)

    def test_error_fallback_passes_when_all_rows_collide(self, categorical):
        X, initial = categorical
        model = _fit_kmodes(X, initial, predict_fallback="error")
        full = _fit_kmodes(X, initial)
        assert np.array_equal(model.predict(X[:20]), full.predict(X[:20]))
