"""Property-based tests of the metrics (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.external import (
    adjusted_rand_index,
    completeness,
    homogeneity,
    normalized_mutual_information,
    v_measure,
)
from repro.metrics.jaccard import jaccard_similarity
from repro.metrics.purity import cluster_purity

labellings = st.lists(st.integers(0, 5), min_size=1, max_size=60)


def paired(draw_fn):
    """Draw two equal-length label vectors."""
    labels = draw_fn(labellings)
    truth = draw_fn(
        st.lists(st.integers(0, 5), min_size=len(labels), max_size=len(labels))
    )
    return np.array(labels), np.array(truth)


class TestPurityProperties:
    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_bounds(self, data):
        labels, truth = paired(data.draw)
        assert 0.0 < cluster_purity(labels, truth) <= 1.0

    @given(labels=labellings)
    @settings(max_examples=50, deadline=None)
    def test_self_purity_is_one(self, labels):
        assert cluster_purity(labels, labels) == 1.0

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_refining_clusters_never_decreases_purity(self, data):
        labels, truth = paired(data.draw)
        # Refinement: split every cluster by item parity.
        refined = labels * 2 + (np.arange(len(labels)) % 2)
        assert cluster_purity(refined, truth) >= cluster_purity(labels, truth)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_purity_invariant_to_label_renaming(self, data):
        labels, truth = paired(data.draw)
        renamed = labels + 100
        assert cluster_purity(renamed, truth) == cluster_purity(labels, truth)


class TestExternalMetricProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_nmi_bounds_and_symmetry(self, data):
        labels, truth = paired(data.draw)
        nmi = normalized_mutual_information(labels, truth)
        assert 0.0 <= nmi <= 1.0
        assert nmi == pytest.approx(
            normalized_mutual_information(truth, labels), abs=1e-9
        )

    @given(labels=labellings)
    @settings(max_examples=50, deadline=None)
    def test_self_agreement(self, labels):
        arr = np.array(labels)
        assert normalized_mutual_information(arr, arr) == pytest.approx(1.0)
        assert adjusted_rand_index(arr, arr) == pytest.approx(1.0)
        assert v_measure(arr, arr) == pytest.approx(1.0)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_ari_upper_bound(self, data):
        labels, truth = paired(data.draw)
        assert adjusted_rand_index(labels, truth) <= 1.0 + 1e-12

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_homogeneity_completeness_duality(self, data):
        labels, truth = paired(data.draw)
        assert homogeneity(labels, truth) == completeness(truth, labels)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_v_measure_between_zero_and_one(self, data):
        labels, truth = paired(data.draw)
        assert 0.0 <= v_measure(labels, truth) <= 1.0


class TestJaccardProperties:
    sets = st.sets(st.integers(0, 30), max_size=15)

    @given(a=sets, b=sets)
    @settings(max_examples=80, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        s = jaccard_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == jaccard_similarity(b, a)

    @given(a=sets)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, a):
        assert jaccard_similarity(a, a) == 1.0

    @given(a=sets, b=sets, c=sets)
    @settings(max_examples=80, deadline=None)
    def test_jaccard_distance_triangle_inequality(self, a, b, c):
        # 1 - J is a metric; spot-check the triangle inequality.
        d_ab = 1 - jaccard_similarity(a, b)
        d_bc = 1 - jaccard_similarity(b, c)
        d_ac = 1 - jaccard_similarity(a, c)
        assert d_ac <= d_ab + d_bc + 1e-12

    @given(a=sets, b=sets)
    @settings(max_examples=50, deadline=None)
    def test_monotone_under_shared_extension(self, a, b):
        # Adding one shared element never lowers similarity.
        extended = jaccard_similarity(a | {999}, b | {999})
        assert extended >= jaccard_similarity(a, b) - 1e-12
