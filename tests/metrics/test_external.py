"""Unit tests for NMI / ARI / homogeneity / completeness / V-measure."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics.external import (
    adjusted_rand_index,
    completeness,
    contingency_matrix,
    homogeneity,
    normalized_mutual_information,
    v_measure,
)


class TestContingencyMatrix:
    def test_counts(self):
        J = contingency_matrix([0, 0, 1], [5, 6, 6])
        assert J.tolist() == [[1, 1], [0, 1]]

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, 50)
        truth = rng.integers(0, 3, 50)
        assert contingency_matrix(labels, truth).sum() == 50

    def test_rejects_mismatch(self):
        with pytest.raises(DataValidationError):
            contingency_matrix([0], [0, 1])

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            contingency_matrix([], [])


class TestNMI:
    def test_identical_partitions(self):
        labels = [0, 0, 1, 1, 2]
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_one(self):
        assert normalized_mutual_information(
            [1, 1, 0, 0], [5, 5, 9, 9]
        ) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 10_000)
        truth = rng.integers(0, 2, 10_000)
        assert normalized_mutual_information(labels, truth) < 0.01

    def test_single_cluster_vs_structure_is_zero(self):
        assert normalized_mutual_information([0, 0, 0, 0], [0, 0, 1, 1]) == 0.0

    def test_both_single_cluster_is_one(self):
        assert normalized_mutual_information([0, 0], [3, 3]) == 1.0

    def test_within_unit_interval(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            labels = rng.integers(0, 5, 30)
            truth = rng.integers(0, 5, 30)
            assert 0.0 <= normalized_mutual_information(labels, truth) <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 4, 60)
        truth = rng.integers(0, 3, 60)
        assert normalized_mutual_information(labels, truth) == pytest.approx(
            normalized_mutual_information(truth, labels)
        )


class TestARI:
    def test_identical(self):
        assert adjusted_rand_index([0, 1, 1, 2], [0, 1, 1, 2]) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        assert adjusted_rand_index([0, 0, 1, 1], [9, 9, 2, 2]) == pytest.approx(1.0)

    def test_random_near_zero(self):
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 3, 5_000)
        truth = rng.integers(0, 3, 5_000)
        assert abs(adjusted_rand_index(labels, truth)) < 0.02

    def test_known_value(self):
        # Classic example: one label flipped out of six.
        labels = [0, 0, 0, 1, 1, 1]
        truth = [0, 0, 1, 1, 1, 1]
        expected = adjusted_rand_index(truth, labels)  # symmetry sanity
        assert adjusted_rand_index(labels, truth) == pytest.approx(expected)
        assert 0.0 < adjusted_rand_index(labels, truth) < 1.0

    def test_single_item(self):
        assert adjusted_rand_index([0], [0]) == 1.0


class TestHomogeneityFamily:
    def test_pure_clusters_fully_homogeneous(self):
        # Splitting a class keeps homogeneity at 1 but hurts completeness.
        labels = [0, 1, 2, 2]
        truth = [0, 0, 1, 1]
        assert homogeneity(labels, truth) == pytest.approx(1.0)
        assert completeness(labels, truth) < 1.0

    def test_merged_clusters_fully_complete(self):
        labels = [0, 0, 0, 0]
        truth = [0, 0, 1, 1]
        assert completeness(labels, truth) == pytest.approx(1.0)
        assert homogeneity(labels, truth) == 0.0

    def test_v_measure_harmonic_mean(self):
        rng = np.random.default_rng(5)
        labels = rng.integers(0, 4, 80)
        truth = rng.integers(0, 3, 80)
        h = homogeneity(labels, truth)
        c = completeness(labels, truth)
        assert v_measure(labels, truth) == pytest.approx(2 * h * c / (h + c))

    def test_v_measure_equals_nmi_arithmetic(self):
        # With arithmetic-mean NMI, V-measure and NMI coincide.
        rng = np.random.default_rng(6)
        labels = rng.integers(0, 4, 100)
        truth = rng.integers(0, 5, 100)
        assert v_measure(labels, truth) == pytest.approx(
            normalized_mutual_information(labels, truth), abs=1e-9
        )

    def test_perfect_partition(self):
        labels = [0, 0, 1, 1]
        assert homogeneity(labels, labels) == 1.0
        assert completeness(labels, labels) == 1.0
        assert v_measure(labels, labels) == 1.0
