"""Unit tests for Jaccard similarity (Equation 6)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.lsh.tokens import TokenSets
from repro.metrics.jaccard import (
    jaccard_similarity,
    jaccard_similarity_binary,
    pairwise_jaccard,
)


class TestJaccardSimilarity:
    def test_identical(self):
        assert jaccard_similarity({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_half_overlap(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == 0.5

    def test_both_empty_is_one(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_one_empty_is_zero(self):
        assert jaccard_similarity(set(), {1}) == 0.0

    def test_duplicates_ignored(self):
        assert jaccard_similarity([1, 1, 2], [1, 2, 2]) == 1.0

    def test_symmetry(self):
        a, b = {1, 2, 3}, {3, 4}
        assert jaccard_similarity(a, b) == jaccard_similarity(b, a)

    def test_paper_minimum_similarity_bound(self):
        # §III-C: two m-attribute items sharing one attribute value
        # have Jaccard ≥ 1/(2m-1).
        m = 10
        x = {(j, j) for j in range(m)}
        y = {(j, j + 100) for j in range(1, m)} | {(0, 0)}
        assert jaccard_similarity(x, y) == pytest.approx(1 / (2 * m - 1))


class TestJaccardBinary:
    def test_matches_set_version(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = (rng.random(15) < 0.4).astype(int)
            b = (rng.random(15) < 0.4).astype(int)
            expected = jaccard_similarity(
                set(np.flatnonzero(a)), set(np.flatnonzero(b))
            )
            assert jaccard_similarity_binary(a, b) == pytest.approx(expected)

    def test_shared_absence_ignored(self):
        a = np.array([1, 0, 0, 0])
        b = np.array([1, 0, 0, 0])
        assert jaccard_similarity_binary(a, b) == 1.0

    def test_all_zeros_is_one(self):
        assert jaccard_similarity_binary(np.zeros(4), np.zeros(4)) == 1.0

    def test_rejects_mismatch(self):
        with pytest.raises(DataValidationError):
            jaccard_similarity_binary(np.zeros(3), np.zeros(4))


class TestPairwiseJaccard:
    def test_matrix_properties(self):
        ts = TokenSets.from_lists([[1, 2], [2, 3], [9]])
        M = pairwise_jaccard(ts)
        assert M.shape == (3, 3)
        assert np.allclose(np.diag(M), 1.0)
        assert np.allclose(M, M.T)

    def test_values(self):
        ts = TokenSets.from_lists([[1, 2, 3], [2, 3, 4]])
        assert pairwise_jaccard(ts)[0, 1] == pytest.approx(0.5)
