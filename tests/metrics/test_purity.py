"""Unit tests for cluster purity."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics.purity import cluster_purity, per_cluster_purity


class TestClusterPurity:
    def test_perfect_clustering(self):
        assert cluster_purity([0, 0, 1, 1], [9, 9, 4, 4]) == 1.0

    def test_label_permutation_invariant(self):
        truth = [0, 0, 1, 1, 2, 2]
        assert cluster_purity([2, 2, 0, 0, 1, 1], truth) == 1.0

    def test_single_cluster_majority(self):
        assert cluster_purity([0, 0, 0, 0], [1, 1, 2, 3]) == 0.5

    def test_each_item_its_own_cluster_is_pure(self):
        assert cluster_purity([0, 1, 2, 3], [0, 0, 1, 1]) == 1.0

    def test_worked_example(self):
        labels = [0, 0, 0, 1, 1, 1]
        truth = [5, 5, 6, 6, 6, 5]
        # Cluster 0 majority 5 (2), cluster 1 majority 6 (2) → 4/6.
        assert cluster_purity(labels, truth) == pytest.approx(4 / 6)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            labels = rng.integers(0, 5, 40)
            truth = rng.integers(0, 4, 40)
            p = cluster_purity(labels, truth)
            assert 0.0 < p <= 1.0

    def test_non_contiguous_labels(self):
        assert cluster_purity([10, 10, 77, 77], ["a", "a", "b", "b"]) == 1.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataValidationError):
            cluster_purity([0, 1], [0])

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            cluster_purity([], [])

    def test_rejects_2d(self):
        with pytest.raises(DataValidationError):
            cluster_purity(np.zeros((2, 2)), np.zeros((2, 2)))


class TestPerClusterPurity:
    def test_keys_are_original_labels(self):
        out = per_cluster_purity([5, 5, 9], [0, 0, 1])
        assert set(out) == {5, 9}

    def test_values(self):
        out = per_cluster_purity([0, 0, 0, 1], [7, 7, 8, 8])
        assert out[0] == pytest.approx(2 / 3)
        assert out[1] == 1.0

    def test_mean_consistent_with_overall(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 6, 60)
        truth = rng.integers(0, 4, 60)
        per = per_cluster_purity(labels, truth)
        sizes = {c: int(np.sum(labels == c)) for c in per}
        weighted = sum(per[c] * sizes[c] for c in per) / 60
        assert weighted == pytest.approx(cluster_purity(labels, truth))
