#!/usr/bin/env python
"""Enforce per-package coverage thresholds from a checked-in file.

Usage::

    python tests/coverage/check_coverage.py coverage.json \\
        tests/coverage/thresholds.json

``coverage.json`` is the JSON report pytest-cov writes
(``--cov-report=json:coverage.json``); the thresholds file maps a path
fragment (e.g. ``"repro/serve/"``) to the minimum line-coverage
percentage its files must reach **in aggregate**.  Regressions fail
the build with a per-package breakdown; raising a threshold is a
reviewable one-line diff.
"""

from __future__ import annotations

import json
import sys


def package_coverage(report: dict, fragment: str) -> tuple[int, int, list[str]]:
    """(covered, statements, matched files) for one path fragment."""
    covered = statements = 0
    matched: list[str] = []
    for filename, data in report.get("files", {}).items():
        if fragment not in filename.replace("\\", "/"):
            continue
        summary = data.get("summary", {})
        covered += int(summary.get("covered_lines", 0))
        statements += int(summary.get("num_statements", 0))
        matched.append(filename)
    return covered, statements, matched


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    report_path, thresholds_path = argv[1], argv[2]
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)
    with open(thresholds_path, encoding="utf-8") as handle:
        thresholds = json.load(handle)

    failures = []
    for fragment, minimum in sorted(thresholds.items()):
        covered, statements, matched = package_coverage(report, fragment)
        if not matched:
            failures.append(f"{fragment}: no files matched in {report_path}")
            continue
        percent = 100.0 * covered / statements if statements else 100.0
        status = "ok" if percent >= minimum else "FAIL"
        print(
            f"{status:>4}  {fragment:<24} {percent:6.2f}% "
            f"({covered}/{statements} lines over {len(matched)} files, "
            f"threshold {minimum}%)"
        )
        if percent < minimum:
            failures.append(
                f"{fragment}: {percent:.2f}% < required {minimum}%"
            )
    if failures:
        print("\ncoverage regression:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
