"""Unit tests for the plain-text table renderer."""

from repro.experiments.report import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        # All lines share one width.
        assert len({len(line) for line in lines}) == 1

    def test_separator_under_header(self):
        text = format_table(["col"], [[1]])
        lines = text.splitlines()
        assert set(lines[1]) <= {"-", " "}

    def test_right_justified_cells(self):
        text = format_table(["num"], [[7]])
        assert text.splitlines()[2].endswith("7")

    def test_wide_cell_wins_column_width(self):
        text = format_table(["x"], [["wide-value"]])
        assert "wide-value" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_mixed_types_stringified(self):
        text = format_table(["v"], [[1.5], [True], [None]])
        assert "1.5" in text and "True" in text and "None" in text
