"""Integration: the full Section IV-B text pipeline, corpus → clusters."""

import numpy as np
import pytest

from repro.core.mh_kmodes import MHKModes
from repro.data.yahoo import YahooAnswersSynthesizer, corpus_to_dataset
from repro.kmodes.kmodes import KModes
from repro.metrics.purity import cluster_purity


@pytest.fixture(scope="module")
def pipeline():
    corpus = YahooAnswersSynthesizer(n_topics=40, label_noise=0.1, seed=17).generate(
        900
    )
    dataset = corpus_to_dataset(corpus, tfidf_threshold=0.3)
    return corpus, dataset


class TestPipeline:
    def test_dataset_is_binary_presence(self, pipeline):
        _, dataset = pipeline
        assert set(np.unique(dataset.X)) <= {0, 1}

    def test_kmodes_beats_chance(self, pipeline):
        corpus, dataset = pipeline
        model = KModes(n_clusters=corpus.n_topics, max_iter=10, seed=0).fit(dataset.X)
        purity = cluster_purity(model.labels_, dataset.labels)
        chance = np.bincount(dataset.labels).max() / dataset.n_items
        assert purity > 3 * chance

    def test_mh_kmodes_matches_kmodes_purity(self, pipeline):
        # Figure 9e: nearly identical purity at a fraction of the time.
        corpus, dataset = pipeline
        rng = np.random.default_rng(0)
        init = dataset.X[rng.choice(dataset.n_items, corpus.n_topics, replace=False)]
        exact = KModes(n_clusters=corpus.n_topics, max_iter=10, seed=0).fit(
            dataset.X, initial_modes=init
        )
        accelerated = MHKModes(
            n_clusters=corpus.n_topics, bands=1, rows=1, max_iter=10, seed=0,
            absent_code=0,
        ).fit(dataset.X, initial_centroids=init)
        exact_purity = cluster_purity(exact.labels_, dataset.labels)
        mh_purity = cluster_purity(accelerated.labels_, dataset.labels)
        assert mh_purity > 0.85 * exact_purity

    def test_mh_shortlists_far_below_topic_count(self, pipeline):
        corpus, dataset = pipeline
        model = MHKModes(
            n_clusters=corpus.n_topics, bands=1, rows=1, max_iter=10, seed=0,
            absent_code=0,
        ).fit(dataset.X)
        assert np.nanmean(model.stats_.shortlist_sizes) < corpus.n_topics / 5

    def test_lower_threshold_widens_and_slows(self, pipeline):
        corpus, _ = pipeline
        wide = corpus_to_dataset(corpus, tfidf_threshold=0.2)
        narrow = corpus_to_dataset(corpus, tfidf_threshold=0.6)
        assert wide.n_attributes > narrow.n_attributes


class TestLabelNoiseCeiling:
    def test_label_noise_caps_achievable_purity(self):
        # With 30 % wrong labels even a perfect clustering of the true
        # topics scores at most ~0.7 against the noisy ground truth.
        corpus = YahooAnswersSynthesizer(
            n_topics=20, label_noise=0.3, seed=23
        ).generate(800)
        perfect_purity = cluster_purity(corpus.true_topics, corpus.topics)
        assert perfect_purity < 0.78
