"""Predict cold-path conformance: empty, single-row and variant inputs.

The batched predict path has long been conformance-tested; these are
the cold paths serving exposed: an **empty batch** (a legal request
that must answer with zero labels), a **single row** (must equal the
corresponding slice of a batched call), and **dtype / memory-order
variants** of the same values (F-order, narrow integer codes, float32)
— all of which must produce labels bit-identical to the canonical
int64/float64 C-order call, on the estimator and on the
``ClusterModel`` artifact alike, including after a save/load
round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.exceptions import DataValidationError
from repro.kmeans import KMeans, LSHKMeans, MiniBatchKMeans
from repro.kmodes import FuzzyKModes, KModes

CATEGORICAL_VARIANT_DTYPES = (np.int32, np.int16, np.uint8)
NUMERIC_VARIANT_DTYPES = (np.float32,)


@pytest.fixture(scope="module")
def categorical():
    data = RuleBasedGenerator(
        n_clusters=6, n_attributes=10, domain_size=200, seed=51
    ).generate(220)
    novel = RuleBasedGenerator(
        n_clusters=6, n_attributes=10, domain_size=200, seed=52
    ).generate(60)
    return data.X, novel.X


@pytest.fixture(scope="module")
def numeric():
    rng = np.random.default_rng(29)
    X = np.vstack([rng.normal(4.0 * c, 1.0, (40, 5)) for c in range(4)])
    novel = rng.normal(8.0, 6.0, (60, 5))
    return X, novel


def _categorical_estimators(X):
    yield MHKModes(n_clusters=6, lsh={"bands": 8, "rows": 2, "seed": 0}).fit(X)
    yield KModes(n_clusters=6, seed=0).fit(X)
    yield FuzzyKModes(n_clusters=6, seed=0, max_iter=5).fit(X)


def _numeric_estimators(X):
    yield LSHKMeans(
        n_clusters=4, lsh={"family": "simhash", "bands": 8, "rows": 2, "seed": 0}
    ).fit(X)
    yield KMeans(n_clusters=4, seed=0).fit(X)
    yield MiniBatchKMeans(n_clusters=4, seed=0).fit(X)


def _all_fitted(categorical, numeric):
    X_cat, novel_cat = categorical
    X_num, novel_num = numeric
    for estimator in _categorical_estimators(X_cat):
        yield estimator, novel_cat, CATEGORICAL_VARIANT_DTYPES
    for estimator in _numeric_estimators(X_num):
        yield estimator, novel_num, NUMERIC_VARIANT_DTYPES


class TestEmptyBatch:
    def test_every_estimator_answers_zero_labels(self, categorical, numeric):
        for estimator, novel, _ in _all_fitted(categorical, numeric):
            empty = np.empty((0, novel.shape[1]), dtype=novel.dtype)
            labels = estimator.predict(empty)
            assert labels.shape == (0,), type(estimator).__name__
            assert labels.dtype == np.int64, type(estimator).__name__

    def test_empty_batch_still_checks_width(self, categorical):
        X, _ = categorical
        estimator = MHKModes(
            n_clusters=6, lsh={"bands": 8, "rows": 2, "seed": 0}
        ).fit(X)
        with pytest.raises(DataValidationError, match="attributes"):
            estimator.predict(np.empty((0, X.shape[1] + 1), dtype=np.int64))
        with pytest.raises(DataValidationError, match="attribute"):
            estimator.predict(np.empty((0, 0), dtype=np.int64))

    def test_cluster_model_matches_estimator_on_empty(self, categorical):
        X, _ = categorical
        estimator = MHKModes(
            n_clusters=6, lsh={"bands": 8, "rows": 2, "seed": 0}
        ).fit(X)
        model = estimator.fitted_model()
        empty = np.empty((0, X.shape[1]), dtype=np.int64)
        assert model.predict(empty).shape == (0,)

    def test_fuzzy_memberships_empty(self, categorical):
        X, _ = categorical
        estimator = FuzzyKModes(n_clusters=6, seed=0, max_iter=5).fit(X)
        memberships = estimator.predict_memberships(
            np.empty((0, X.shape[1]), dtype=np.int64)
        )
        assert memberships.shape == (0, 6)


class TestSingleRow:
    def test_single_row_equals_batched_slice(self, categorical, numeric):
        for estimator, novel, _ in _all_fitted(categorical, numeric):
            batched = estimator.predict(novel)
            for row in (0, len(novel) // 2, len(novel) - 1):
                got = estimator.predict(novel[row : row + 1])
                assert got.shape == (1,)
                assert got[0] == batched[row], (type(estimator).__name__, row)


class TestVariantInputs:
    def test_dtype_variants_are_bit_identical(self, categorical, numeric):
        for estimator, novel, dtypes in _all_fitted(categorical, numeric):
            for dtype in dtypes:
                variant = novel.astype(dtype)
                # score the variant against its exact canonical-dtype
                # image (float64 noise is not float32-representable, so
                # the comparison must use the variant's own values)
                canonical = variant.astype(novel.dtype)
                assert np.array_equal(canonical.astype(dtype), variant)
                got = estimator.predict(variant)
                assert np.array_equal(got, estimator.predict(canonical)), (
                    type(estimator).__name__,
                    dtype,
                )

    def test_fortran_order_is_bit_identical(self, categorical, numeric):
        for estimator, novel, _ in _all_fitted(categorical, numeric):
            reference = estimator.predict(novel)
            variant = np.asfortranarray(novel)
            assert not variant.flags["C_CONTIGUOUS"]
            assert np.array_equal(estimator.predict(variant), reference), (
                type(estimator).__name__
            )

    def test_artifact_round_trip_matches_on_variants(
        self, categorical, tmp_path
    ):
        X, novel = categorical
        estimator = MHKModes(
            n_clusters=6, lsh={"bands": 8, "rows": 2, "seed": 0}
        ).fit(X)
        model = estimator.fitted_model()
        reference = estimator.predict(novel)
        from repro.data.io import load_cluster_model

        loaded = load_cluster_model(model.save(tmp_path / "variants"))
        for variant in (
            novel.astype(np.int32),
            np.asfortranarray(novel),
            novel[:1],
            np.empty((0, novel.shape[1]), dtype=np.int64),
        ):
            expected = reference[: len(variant)]
            assert np.array_equal(estimator.predict(variant), expected)
            assert np.array_equal(model.predict(variant), expected)
            assert np.array_equal(loaded.predict(variant), expected)


class TestFitValidationUnchanged:
    """The cold-path fix must not loosen fit-time validation."""

    def test_fit_still_rejects_empty(self):
        with pytest.raises(DataValidationError):
            KModes(n_clusters=1, seed=0).fit(np.empty((0, 2), dtype=np.int64))
        with pytest.raises(DataValidationError):
            KMeans(n_clusters=1, seed=0).fit(np.empty((0, 2)))
        with pytest.raises(DataValidationError):
            MHKModes(n_clusters=1).fit(np.empty((0, 2), dtype=np.int64))

    def test_fit_on_narrow_dtype_matches_int64(self, categorical):
        X, _ = categorical
        a = MHKModes(n_clusters=6, lsh={"bands": 8, "rows": 2, "seed": 0}).fit(X)
        b = MHKModes(n_clusters=6, lsh={"bands": 8, "rows": 2, "seed": 0}).fit(
            X.astype(np.int32)
        )
        assert np.array_equal(a.labels_, b.labels_)
        assert a.centroids_.dtype == b.centroids_.dtype == np.int64
