"""Integration: the experiment harness runs configs end to end."""

import numpy as np
import pytest

from repro.experiments.configs import (
    ALL_SYNTHETIC_CONFIGS,
    ALL_YAHOO_CONFIGS,
    EXPERIMENTS,
    SyntheticConfig,
    VariantSpec,
    YahooConfig,
    baseline,
    mh,
)
from repro.experiments.report import (
    render_comparison_summary,
    render_probability_table,
    render_series_table,
)
from repro.experiments.runner import (
    run_comparison,
    run_synthetic_experiment,
    run_yahoo_experiment,
    scaling_study,
    synthetic_dataset,
    yahoo_dataset,
)


TINY = SyntheticConfig(
    exp_id="tiny",
    description="scaled-down config for integration tests",
    n_items=300,
    n_attributes=16,
    n_clusters=30,
    variants=(mh(8, 2), baseline()),
    domain_size=1_000,
    max_iter=6,
    seed=5,
)

TINY_YAHOO = YahooConfig(
    exp_id="tiny-yahoo",
    description="scaled-down yahoo config",
    n_questions=300,
    n_topics=25,
    tfidf_threshold=0.3,
    variants=(mh(1, 1), baseline()),
    max_iter=5,
    seed=5,
)


class TestVariantSpec:
    def test_labels(self):
        assert baseline().label == "K-Modes"
        assert mh(20, 5).label == "MH-K-Modes 20b 5r"

    def test_baseline_flag(self):
        assert baseline().is_baseline
        assert not mh(1, 1).is_baseline


class TestConfigs:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "fig5", "fig5xl", "fig9", "fig10",
        }

    def test_every_config_has_baseline(self):
        for config in (*ALL_SYNTHETIC_CONFIGS, *ALL_YAHOO_CONFIGS):
            assert any(v.is_baseline for v in config.variants), config.exp_id

    def test_scaled_override(self):
        bigger = TINY.scaled(n_items=500)
        assert bigger.n_items == 500
        assert bigger.n_clusters == TINY.n_clusters


class TestRunner:
    @pytest.fixture(scope="class")
    def result(self):
        return run_synthetic_experiment(TINY)

    def test_all_variants_present(self, result):
        assert set(result.results) == {"MH-K-Modes 8b 2r", "K-Modes"}

    def test_baseline_accessor(self, result):
        assert result.baseline.label == "K-Modes"

    def test_speedup_computable(self, result):
        assert result.speedup("MH-K-Modes 8b 2r") > 0
        assert result.iteration_speedup("MH-K-Modes 8b 2r") > 0

    def test_purity_recorded(self, result):
        for run in result.results.values():
            assert 0.0 < run.purity <= 1.0
            assert 0.0 <= run.nmi <= 1.0

    def test_same_initialisation_across_variants(self):
        # Both variants must start from identical modes: their first
        # exhaustive pass yields identical assignments, which we verify
        # through equal iteration-1 cost in a deterministic rerun.
        dataset = synthetic_dataset(TINY)
        comparison = run_comparison(
            dataset, TINY.n_clusters, (baseline(), mh(1, 1)), 1, seed=3,
        )
        costs = [r.cost for r in comparison.results.values()]
        assert len(costs) == 2

    def test_yahoo_runner(self):
        result = run_yahoo_experiment(TINY_YAHOO)
        assert set(result.results) == {"MH-K-Modes 1b 1r", "K-Modes"}
        info = result.dataset_info
        assert info["n_items"] == 300

    def test_scaling_study_axes(self):
        study = scaling_study(
            TINY, "n_items", (200, 300), variants=(mh(8, 2), baseline())
        )
        assert set(study) == {200, 300}
        assert study[200].dataset_info["n_items"] == 200

    def test_scaling_study_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            scaling_study(TINY, "n_bananas", (1, 2))

    def test_yahoo_dataset_materialisation(self):
        ds = yahoo_dataset(TINY_YAHOO)
        assert ds.n_items == 300


class TestReports:
    @pytest.fixture(scope="class")
    def result(self):
        return run_synthetic_experiment(TINY)

    def test_summary_table_renders(self, result):
        text = render_comparison_summary(result)
        assert "K-Modes" in text
        assert "speedup" in text
        assert "purity" in text

    @pytest.mark.parametrize(
        "fieldname", ["duration_s", "moves", "mean_shortlist", "cost"]
    )
    def test_series_tables_render(self, result, fieldname):
        text = render_series_table(result, fieldname)
        assert "iter" in text
        assert "K-Modes" in text

    def test_series_table_rejects_unknown_field(self, result):
        with pytest.raises(ValueError):
            render_series_table(result, "latency")

    def test_shorter_runs_padded_with_dash(self, result):
        lengths = {
            label: run.stats.n_iterations for label, run in result.results.items()
        }
        if len(set(lengths.values())) > 1:
            text = render_series_table(result, "duration_s")
            assert "-" in text.splitlines()[-1]

    def test_probability_table_renders(self):
        from repro.core.parameters import probability_table

        table = probability_table(1, [10], [0.1, 0.5])
        text = render_probability_table(table, "Table I")
        assert "Bands" in text
        assert "0.65" in text
