"""Backend-equivalence suite.

The engine's core contract: with a fixed seed and batch updates, the
``serial``, ``thread`` and ``process`` backends — and any shard count —
produce *identical* labels and centroids, because a batch pass scores
every item against the labels frozen at the start of the pass and the
chunked kernels replicate the serial tie-breaking exactly.
"""

import numpy as np
import pytest

from repro.core.mh_kmodes import MHKModes
from repro.core.streaming import StreamingMHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.engine import ShardedClusteredLSHIndex
from repro.exceptions import ConfigurationError
from repro.kmeans.mh_kmeans import LSHKMeans

BACKEND_CONFIGS = [("serial", None), ("thread", 2), ("thread", 3), ("process", 2)]


@pytest.fixture(scope="module")
def categorical():
    data = RuleBasedGenerator(
        n_clusters=15, n_attributes=20, domain_size=800, noise_rate=0.15, seed=21
    ).generate(450)
    initial = data.X[
        np.random.default_rng(4).choice(len(data.X), 15, replace=False)
    ].copy()
    return data.X, initial


@pytest.fixture(scope="module")
def numeric():
    rng = np.random.default_rng(8)
    X = np.vstack([rng.normal(3 * c, 0.8, (50, 8)) for c in range(6)])
    initial = X[rng.choice(len(X), 6, replace=False)].copy()
    return X, initial


def _fit_kmodes(X, initial, backend, n_jobs, **overrides):
    model = MHKModes(
        n_clusters=15,
        bands=8,
        rows=2,
        seed=0,
        max_iter=15,
        update_refs="batch",
        backend=backend,
        n_jobs=n_jobs,
        **overrides,
    )
    model.fit(X, initial_centroids=initial)
    return model


class TestKModesBackendEquivalence:
    @pytest.mark.parametrize("backend,n_jobs", BACKEND_CONFIGS[1:])
    def test_labels_and_centroids_match_serial(
        self, categorical, backend, n_jobs
    ):
        X, initial = categorical
        reference = _fit_kmodes(X, initial, "serial", None)
        candidate = _fit_kmodes(X, initial, backend, n_jobs)
        assert np.array_equal(candidate.labels_, reference.labels_)
        assert np.array_equal(candidate.centroids_, reference.centroids_)
        assert candidate.n_iter_ == reference.n_iter_
        assert candidate.converged_ == reference.converged_

    @pytest.mark.parametrize("backend,n_jobs", BACKEND_CONFIGS[1:])
    def test_shortlist_series_match_serial(self, categorical, backend, n_jobs):
        X, initial = categorical
        reference = _fit_kmodes(X, initial, "serial", None)
        candidate = _fit_kmodes(X, initial, backend, n_jobs)
        assert candidate.stats_.shortlist_sizes == reference.stats_.shortlist_sizes
        assert (
            candidate.stats_.moves_per_iteration
            == reference.stats_.moves_per_iteration
        )

    def test_predict_matches_across_backends(self, categorical):
        X, initial = categorical
        novel = RuleBasedGenerator(
            n_clusters=15, n_attributes=20, domain_size=800, seed=22
        ).generate(60)
        serial = _fit_kmodes(X, initial, "serial", None)
        threaded = _fit_kmodes(X, initial, "thread", 2)
        assert np.array_equal(serial.predict(novel.X), threaded.predict(novel.X))


class TestShardCountInvariance:
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_fit_invariant_to_shards(self, categorical, n_shards):
        X, initial = categorical
        reference = _fit_kmodes(X, initial, "serial", None)
        sharded = _fit_kmodes(X, initial, "serial", None, n_shards=n_shards)
        assert np.array_equal(sharded.labels_, reference.labels_)
        assert np.array_equal(sharded.centroids_, reference.centroids_)

    def test_parallel_sharded_fit_matches_serial(self, categorical):
        X, initial = categorical
        reference = _fit_kmodes(X, initial, "serial", None)
        sharded = _fit_kmodes(X, initial, "thread", 2, n_shards=4)
        assert isinstance(sharded.index_, ShardedClusteredLSHIndex)
        assert np.array_equal(sharded.labels_, reference.labels_)


class TestKMeansBackendEquivalence:
    @pytest.mark.parametrize("backend,n_jobs", BACKEND_CONFIGS[1:])
    def test_labels_and_centroids_match_serial(self, numeric, backend, n_jobs):
        X, initial = numeric
        def fit(backend, n_jobs):
            return LSHKMeans(
                n_clusters=6,
                bands=8,
                rows=2,
                seed=0,
                update_refs="batch",
                backend=backend,
                n_jobs=n_jobs,
            ).fit(X, initial_centroids=initial)

        reference = fit("serial", None)
        candidate = fit(backend, n_jobs)
        assert np.array_equal(candidate.labels_, reference.labels_)
        assert np.array_equal(candidate.centroids_, reference.centroids_)


class TestSemanticsGuards:
    def test_online_with_parallel_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            MHKModes(n_clusters=3, bands=4, rows=1, backend="thread",
                     update_refs="online")

    def test_default_update_refs_resolution(self):
        assert MHKModes(n_clusters=3, bands=4, rows=1).update_refs == "online"
        assert (
            MHKModes(n_clusters=3, bands=4, rows=1, backend="thread").update_refs
            == "batch"
        )

    def test_phase_timings_recorded(self, categorical):
        X, initial = categorical
        model = _fit_kmodes(X, initial, "thread", 2)
        assert set(model.stats_.phase_s) == {
            "session_open",
            "exhaustive_assign",
            "signatures",
            "index_build",
            "iterations",
        }
        assert all(v >= 0 for v in model.stats_.phase_s.values())


class TestStreamingWithEngine:
    def test_parallel_sharded_bootstrap_matches_serial_stream(self):
        data = RuleBasedGenerator(
            n_clusters=6, n_attributes=12, domain_size=300, seed=13
        ).generate(240)
        serial = StreamingMHKModes(n_clusters=6, bands=8, rows=1, seed=0)
        parallel = StreamingMHKModes(
            n_clusters=6, bands=8, rows=1, seed=0,
            backend="thread", n_jobs=2, n_shards=3,
        )
        serial.bootstrap(data.X[:180])
        parallel.bootstrap(data.X[:180])
        assert isinstance(
            parallel._bootstrap_model.index_, ShardedClusteredLSHIndex
        )
        serial_labels = serial.extend(data.X[180:])
        parallel_labels = parallel.extend(data.X[180:])
        # bootstrap semantics differ (online vs batch), so streamed labels
        # need not be identical — but the machinery must agree on shape,
        # absorb every arrival, and keep shortlists non-degenerate.
        assert len(parallel_labels) == 60
        assert parallel.n_seen_ == serial.n_seen_ == 240
        assert parallel._bootstrap_model.index_.n_items == 240
