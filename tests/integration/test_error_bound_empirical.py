"""Integration: the Section III-C error bound holds empirically."""

import numpy as np

from repro.core.error_bound import cluster_recall_probability
from repro.lsh.bands import compute_band_keys
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets


def _collision_rate(sim: float, bands: int, rows: int, trials: int = 400) -> float:
    """Empirical candidate-pair rate for pairs of known Jaccard similarity."""
    rng = np.random.default_rng(99)
    universe = 1_000_000
    size = 60
    shared = int(round(size * 2 * sim / (1 + sim)))  # |A∩B| giving J=sim
    hits = 0
    mh = MinHasher(bands * rows, seed=1)
    for trial in range(trials):
        common = rng.choice(universe, shared, replace=False)
        only_a = universe + rng.choice(universe, size - shared, replace=False)
        only_b = 2 * universe + rng.choice(universe, size - shared, replace=False)
        ts = TokenSets.from_lists(
            [np.concatenate([common, only_a]), np.concatenate([common, only_b])]
        )
        sigs = MinHasher(bands * rows, seed=trial).signatures(ts)
        keys = compute_band_keys(sigs, bands, rows)
        if np.any(keys[0] == keys[1]):
            hits += 1
    return hits / trials


class TestCandidatePairProbability:
    def test_matches_theory_mid_similarity(self):
        # J = 0.5, b = 10, r = 2 → theory 0.945.
        from repro.lsh.bands import band_probability

        empirical = _collision_rate(0.5, bands=10, rows=2)
        assert abs(empirical - band_probability(0.5, 10, 2)) < 0.06

    def test_matches_theory_low_similarity(self):
        # J = 0.2, b = 10, r = 2 → theory 0.33.
        from repro.lsh.bands import band_probability

        empirical = _collision_rate(0.2, bands=10, rows=2)
        assert abs(empirical - band_probability(0.2, 10, 2)) < 0.08


class TestClusterRecallBound:
    def test_empirical_recall_at_least_theoretical(self):
        """Clusters of c similar items are found at >= the bound's rate.

        Builds many (query, cluster) pairs where each of the c cluster
        members has Jaccard ~s with the query, indexes everything, and
        checks the true cluster reaches the shortlist at least as often
        as 1-(1-s^r)^(b·c) predicts (the bound assumes similarity
        *exactly* s; members here have similarity >= s, so the
        empirical rate must dominate).
        """
        rng = np.random.default_rng(5)
        bands, rows, c = 8, 2, 5
        sim = 0.5
        size = 40
        shared = int(round(size * 2 * sim / (1 + sim)))
        trials = 150
        found = 0
        for trial in range(trials):
            base = rng.choice(500_000, size, replace=False)
            members = []
            for _ in range(c):
                keep = rng.choice(size, shared, replace=False)
                fresh = 500_000 + rng.choice(500_000, size - shared, replace=False)
                members.append(np.concatenate([base[keep], fresh]))
            ts = TokenSets.from_lists([base] + members)
            sigs = MinHasher(bands * rows, seed=trial).signatures(ts)
            keys = compute_band_keys(sigs, bands, rows)
            collides = np.any(keys[1:] == keys[0][None, :], axis=1)
            if collides.any():
                found += 1
        empirical = found / trials
        theoretical = cluster_recall_probability(sim, bands, rows, c)
        assert empirical >= theoretical - 0.08
