"""Reproducibility guarantees across the whole stack.

Every published number in EXPERIMENTS.md depends on runs being exactly
repeatable given a seed; these tests pin that property at the
experiment-harness level (the estimator-level determinism tests live
next to each estimator).
"""

import numpy as np

from repro.experiments.configs import SyntheticConfig, baseline, mh
from repro.experiments.runner import run_synthetic_experiment, synthetic_dataset

CONFIG = SyntheticConfig(
    exp_id="determinism",
    description="tiny determinism config",
    n_items=200,
    n_attributes=12,
    n_clusters=20,
    variants=(mh(8, 2), baseline()),
    domain_size=500,
    max_iter=5,
    seed=99,
)


class TestDeterminism:
    def test_dataset_generation_is_repeatable(self):
        a = synthetic_dataset(CONFIG)
        b = synthetic_dataset(CONFIG)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.labels, b.labels)

    def test_full_experiment_is_repeatable(self):
        first = run_synthetic_experiment(CONFIG)
        second = run_synthetic_experiment(CONFIG)
        for label in first.results:
            assert np.array_equal(
                first.results[label].labels, second.results[label].labels
            ), label
            assert first.results[label].cost == second.results[label].cost
            assert first.results[label].purity == second.results[label].purity

    def test_seed_changes_the_run(self):
        from dataclasses import replace

        first = run_synthetic_experiment(CONFIG)
        other = run_synthetic_experiment(replace(CONFIG, seed=100))
        assert not np.array_equal(
            first.results["K-Modes"].labels, other.results["K-Modes"].labels
        )

    def test_variant_order_does_not_matter(self):
        from dataclasses import replace

        forward = run_synthetic_experiment(CONFIG)
        reversed_config = replace(CONFIG, variants=tuple(reversed(CONFIG.variants)))
        backward = run_synthetic_experiment(reversed_config)
        for label in forward.results:
            assert np.array_equal(
                forward.results[label].labels, backward.results[label].labels
            ), label
