"""Integration: MH-K-Modes vs exact K-Modes agreement.

The paper's correctness story (Section III-C) is that MH-K-Modes makes
the *same decisions* as K-Modes whenever the true best cluster reaches
the shortlist.  These tests drive that story end to end:

* with a *saturating* index (every item collides with every other),
  the shortlist contains every non-empty cluster and MH-K-Modes must
  replicate exact K-Modes decisions exactly;
* with realistic parameters, agreement is high but not guaranteed.
"""

import numpy as np
import pytest

from repro.core.mh_kmodes import MHKModes
from repro.kmodes.kmodes import KModes
from repro.metrics.external import adjusted_rand_index
from repro.metrics.purity import cluster_purity


@pytest.fixture
def saturating_dataset(rng):
    """Planted clusters plus one constant column shared by every item.

    The constant column guarantees every pair of items has Jaccard
    similarity at least 1/(2m-1); with 200 bands of 1 row the pair
    collision probability is 1-(1-J)^200 > 0.999, so under the fixed
    test seed every item's shortlist contains every populated cluster —
    the same search space exact K-Modes uses (empty clusters can never
    win under random-item initialisation because every initial mode is
    an item of some populated cluster).
    """
    k, per, m = 6, 25, 12
    protos = rng.integers(1, 400, size=(k, m))
    X = np.repeat(protos, per, axis=0)
    noise = rng.random(X.shape) < 0.2
    X[noise] = rng.integers(1, 400, size=noise.sum())
    X[:, 0] = 0  # shared constant column → universal collisions
    labels = np.repeat(np.arange(k), per)
    order = rng.permutation(len(X))
    return X[order], labels[order]


class TestSaturatedEquivalence:
    def test_identical_labels_with_full_shortlists(self, saturating_dataset, rng):
        X, _ = saturating_dataset
        k = 6
        init = X[rng.choice(len(X), k, replace=False)]
        exact = KModes(n_clusters=k, max_iter=30, seed=0).fit(X, initial_modes=init)
        accelerated = MHKModes(
            n_clusters=k, bands=200, rows=1, max_iter=30, seed=0,
        ).fit(X, initial_centroids=init)
        assert np.array_equal(exact.labels_, accelerated.labels_)
        assert exact.cost_ == accelerated.cost_

    def test_identical_modes_with_full_shortlists(self, saturating_dataset, rng):
        X, _ = saturating_dataset
        k = 6
        init = X[rng.choice(len(X), k, replace=False)]
        exact = KModes(n_clusters=k, max_iter=30, seed=0).fit(X, initial_modes=init)
        accelerated = MHKModes(
            n_clusters=k, bands=200, rows=1, max_iter=30, seed=0
        ).fit(X, initial_centroids=init)
        assert np.array_equal(exact.modes_, accelerated.modes_)

    def test_saturated_shortlist_covers_nonempty_clusters(
        self, saturating_dataset, rng
    ):
        X, _ = saturating_dataset
        k = 6
        init = X[rng.choice(len(X), k, replace=False)]
        model = MHKModes(n_clusters=k, bands=200, rows=1, max_iter=30, seed=0).fit(
            X, initial_centroids=init
        )
        sizes = model.stats_.shortlist_sizes
        populated = len(np.unique(model.labels_))
        assert sizes[-1] >= populated


class TestRealisticAgreement:
    def test_high_agreement_with_generous_parameters(self, medium_planted_dataset):
        ds = medium_planted_dataset
        rng = np.random.default_rng(0)
        init = ds.X[rng.choice(ds.n_items, 60, replace=False)]
        exact = KModes(n_clusters=60, max_iter=30, seed=0).fit(
            ds.X, initial_modes=init
        )
        accelerated = MHKModes(
            n_clusters=60, bands=30, rows=2, max_iter=30, seed=0
        ).fit(ds.X, initial_centroids=init)
        assert adjusted_rand_index(exact.labels_, accelerated.labels_) > 0.85

    def test_purity_comparable_across_parameters(self, medium_planted_dataset):
        # The paper's Figure 8 claim at laptop scale: purity within a
        # few points of exact K-Modes for all tested (b, r).
        ds = medium_planted_dataset
        rng = np.random.default_rng(1)
        init = ds.X[rng.choice(ds.n_items, 60, replace=False)]
        exact = KModes(n_clusters=60, max_iter=30, seed=0).fit(
            ds.X, initial_modes=init
        )
        exact_purity = cluster_purity(exact.labels_, ds.labels)
        for bands, rows in ((20, 2), (20, 5), (50, 5)):
            accelerated = MHKModes(
                n_clusters=60, bands=bands, rows=rows, max_iter=30, seed=0
            ).fit(ds.X, initial_centroids=init)
            purity = cluster_purity(accelerated.labels_, ds.labels)
            assert purity > 0.85 * exact_purity, f"{bands}b {rows}r"

    def test_shortlists_shrink_search_space(self, medium_planted_dataset):
        ds = medium_planted_dataset
        model = MHKModes(n_clusters=60, bands=20, rows=5, max_iter=30, seed=0).fit(
            ds.X
        )
        assert np.nanmean(model.stats_.shortlist_sizes) < 60 / 4

    def test_mh_converges_no_slower_in_iterations(self, medium_planted_dataset):
        # Figure 2/3 observation: MH-K-Modes converges in no more
        # iterations than K-Modes (usually fewer).
        ds = medium_planted_dataset
        rng = np.random.default_rng(2)
        init = ds.X[rng.choice(ds.n_items, 60, replace=False)]
        exact = KModes(n_clusters=60, max_iter=40, seed=0).fit(
            ds.X, initial_modes=init
        )
        accelerated = MHKModes(
            n_clusters=60, bands=20, rows=5, max_iter=40, seed=0
        ).fit(ds.X, initial_centroids=init)
        assert accelerated.n_iter_ <= exact.n_iter_ + 1
