"""The documented public API surface stays importable and coherent."""

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_from_module_docstring(self):
        # The README/docstring example, executed verbatim (scaled down).
        data = repro.RuleBasedGenerator(
            n_clusters=20, n_attributes=16, seed=0
        ).generate(300)
        fast = repro.MHKModes(n_clusters=20, bands=20, rows=5, seed=0).fit(data.X)
        exact = repro.KModes(n_clusters=20, seed=0).fit(data.X)
        assert repro.cluster_purity(fast.labels_, data.labels) > 0.6
        assert repro.cluster_purity(exact.labels_, data.labels) > 0.6

    def test_exception_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.DataValidationError, repro.ReproError)
        assert issubclass(repro.NotFittedError, repro.ReproError)
        assert issubclass(repro.ConfigurationError, ValueError)
        assert issubclass(repro.NotFittedError, RuntimeError)

    def test_single_base_catch(self):
        with pytest.raises(repro.ReproError):
            repro.KModes(n_clusters=0)
        with pytest.raises(repro.ReproError):
            repro.MinHasher(0)

    def test_error_bound_accessible_at_top_level(self):
        assert repro.error_bound(100, 25, 1, 20) == pytest.approx(0.08, abs=0.005)

    def test_suggest_bands_rows_top_level(self):
        rec = repro.suggest_bands_rows(0.4, cluster_size=10, min_recall=0.9)
        assert rec.bands >= 1
