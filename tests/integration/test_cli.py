"""Integration tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import save_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.npz"])
        assert args.kind == "datgen"
        assert args.items == 5_000

    def test_cluster_requires_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "ds.npz"])


class TestGenerateCommand:
    def test_datgen_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        code = main(
            [
                "generate", str(out),
                "--items", "120", "--clusters", "12",
                "--attributes", "10", "--seed", "3",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_yahoo_kind(self, tmp_path, capsys):
        out = tmp_path / "yahoo.npz"
        code = main(
            [
                "generate", str(out), "--kind", "yahoo",
                "--items", "150", "--clusters", "10",
                "--tfidf-threshold", "0.3", "--seed", "3",
            ]
        )
        assert code == 0
        assert out.exists()


class TestClusterCommand:
    @pytest.fixture
    def dataset_path(self, tmp_path):
        ds = RuleBasedGenerator(n_clusters=8, n_attributes=10, seed=4).generate(150)
        return save_dataset(ds, tmp_path / "ds.npz")

    def test_mh_kmodes_run(self, dataset_path, capsys):
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--bands", "8", "--rows", "2", "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MH-K-Modes 8b 2r" in out
        assert "purity" in out

    def test_kmodes_run(self, dataset_path, capsys):
        code = main(
            [
                "cluster", str(dataset_path),
                "--algorithm", "kmodes", "--clusters", "8", "--seed", "0",
            ]
        )
        assert code == 0
        assert "K-Modes" in capsys.readouterr().out

    def test_phase_timings_printed(self, dataset_path, capsys):
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--bands", "8", "--rows", "2", "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phases" in out
        assert "index_build=" in out

    def test_parallel_backend_run(self, dataset_path, capsys):
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--bands", "8", "--rows", "2", "--seed", "0",
                "--backend", "thread", "--jobs", "2", "--shards", "2",
            ]
        )
        assert code == 0
        assert "backend=thread" in capsys.readouterr().out

    def test_save_writes_model_and_sidecar(self, dataset_path, tmp_path, capsys):
        target = tmp_path / "model"
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--bands", "8", "--rows", "2", "--seed", "0",
                "--save", str(target),
            ]
        )
        assert code == 0
        assert (tmp_path / "model.npz").exists()
        assert (tmp_path / "model.json").exists()

        from repro.data import load_model

        assert load_model(tmp_path / "model.npz").n_clusters == 8

    def test_spec_file_configures_run(self, dataset_path, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "lsh": {"bands": 8, "rows": 2, "seed": 0},
                    "train": {"max_iter": 5},
                }
            )
        )
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--spec", str(spec_path),
            ]
        )
        assert code == 0
        assert "MH-K-Modes 8b 2r" in capsys.readouterr().out

    def test_spec_file_round_trips_to_dict(self, dataset_path, tmp_path, capsys):
        import json

        from repro.api import EngineSpec, LSHSpec, TrainSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "lsh": LSHSpec(bands=4, rows=1, seed=0).to_dict(),
                    "engine": EngineSpec().to_dict(),
                    "train": TrainSpec(max_iter=3).to_dict(),
                }
            )
        )
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--spec", str(spec_path),
            ]
        )
        assert code == 0
        assert "MH-K-Modes 4b 1r" in capsys.readouterr().out

    def test_flags_override_spec_file(self, dataset_path, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps({"lsh": {"bands": 8, "rows": 2, "seed": 0}})
        )
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--spec", str(spec_path),
                "--bands", "4",  # flag wins over the file's bands=8
            ]
        )
        assert code == 0
        assert "MH-K-Modes 4b 2r" in capsys.readouterr().out

    def test_backend_flag_overrides_spec_start_method(
        self, dataset_path, tmp_path, capsys
    ):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "lsh": {"bands": 4, "rows": 1, "seed": 0},
                    "engine": {"backend": "process", "start_method": "fork"},
                    "train": {"max_iter": 3},
                }
            )
        )
        # moving off the process backend must drop the file's
        # start_method along with the backend it configured
        code = main(
            [
                "cluster", str(dataset_path),
                "--clusters", "8", "--spec", str(spec_path),
                "--backend", "serial",
            ]
        )
        assert code == 0
        assert "backend=serial" in capsys.readouterr().out

    def test_spec_file_without_seed_keeps_cli_default(
        self, dataset_path, tmp_path, capsys
    ):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"train": {"max_iter": 3}}))
        outputs = []
        for _ in range(2):
            code = main(
                [
                    "cluster", str(dataset_path),
                    "--clusters", "8", "--spec", str(spec_path),
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        # the historic seed=0 default applies (reproducible runs), so
        # two identical invocations print identical cost lines
        cost = [l for l in outputs[0].splitlines() if l.startswith("cost")]
        assert cost == [l for l in outputs[1].splitlines() if l.startswith("cost")]

    def test_bad_spec_file_rejected(self, dataset_path, tmp_path):
        import json

        from repro.exceptions import ConfigurationError

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"lsh": {"bandz": 8}}))
        with pytest.raises(ConfigurationError):
            main(
                [
                    "cluster", str(dataset_path),
                    "--clusters", "8", "--spec", str(spec_path),
                ]
            )

    def test_kmodes_warns_on_ignored_engine_flags(self, dataset_path, capsys):
        code = main(
            [
                "cluster", str(dataset_path),
                "--algorithm", "kmodes", "--clusters", "8", "--seed", "0",
                "--backend", "process", "--jobs", "4",
            ]
        )
        assert code == 0
        assert "apply to mh-kmodes only" in capsys.readouterr().err

    def test_backend_flag_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "ds.npz", "--clusters", "4", "--backend", "gpu"]
            )


class TestTablesCommand:
    def test_prints_both_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "0.65" in out  # Table I row (10, 0.1)


class TestCompareCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["compare", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestExtendCommand:
    @pytest.fixture
    def dataset_path(self, tmp_path):
        ds = RuleBasedGenerator(
            n_clusters=8, n_attributes=10, domain_size=200, seed=6
        ).generate(240)
        return save_dataset(ds, tmp_path / "stream.npz")

    def test_streams_with_per_chunk_timings(self, dataset_path, capsys):
        code = main(
            [
                "extend", str(dataset_path),
                "--clusters", "8", "--bootstrap", "120",
                "--stream-chunk", "40", "--bands", "10", "--rows", "2",
                "--max-iter", "5", "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bootstrap : 120 items" in out
        assert out.count("chunk") >= 3  # 120 streamed / 40 per chunk
        assert "signatures=" in out and "walk=" in out and "update=" in out
        assert "streamed  : 120 items" in out
        assert "purity" in out

    def test_parallel_backend_matches_serial(self, dataset_path, capsys):
        code = main(
            [
                "extend", str(dataset_path),
                "--clusters", "8", "--bootstrap", "120",
                "--backend", "thread", "--jobs", "2",
                "--bands", "10", "--rows", "2", "--seed", "1",
            ]
        )
        assert code == 0
        serial_out = capsys.readouterr().out
        assert "backend=thread" in serial_out
        assert "streamed  : 120 items" in serial_out

    def test_bootstrap_must_leave_items_to_stream(self, dataset_path, capsys):
        code = main(
            [
                "extend", str(dataset_path),
                "--clusters", "8", "--bootstrap", "240",
            ]
        )
        assert code == 2
        assert "leave items to stream" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["extend", "ds.npz", "--clusters", "5"]
        )
        assert args.stream_chunk == 4096
        assert args.backend is None
        assert args.refresh_interval == 200
