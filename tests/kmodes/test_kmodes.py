"""Unit tests for the KModes estimator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.kmodes.kmodes import KModes
from repro.metrics.purity import cluster_purity


class TestFitBasics:
    def test_recovers_planted_clusters(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=ds.n_classes, seed=0).fit(ds.X)
        assert cluster_purity(model.labels_, ds.labels) > 0.9

    def test_fitted_attributes(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=10, seed=0).fit(ds.X)
        assert model.modes_.shape == (10, ds.n_attributes)
        assert model.labels_.shape == (ds.n_items,)
        assert model.n_iter_ >= 1
        assert model.stats_ is not None
        assert np.isfinite(model.cost_)

    def test_labels_within_range(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=7, seed=1).fit(ds.X)
        assert model.labels_.min() >= 0
        assert model.labels_.max() < 7

    def test_fit_predict_matches_labels(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=5, seed=2)
        labels = model.fit_predict(ds.X)
        assert np.array_equal(labels, model.labels_)

    def test_deterministic_given_seed(self, small_planted_dataset):
        ds = small_planted_dataset
        a = KModes(n_clusters=6, seed=3).fit(ds.X)
        b = KModes(n_clusters=6, seed=3).fit(ds.X)
        assert np.array_equal(a.labels_, b.labels_)
        assert np.array_equal(a.modes_, b.modes_)

    def test_different_seeds_can_differ(self, small_planted_dataset):
        ds = small_planted_dataset
        a = KModes(n_clusters=6, seed=4).fit(ds.X)
        b = KModes(n_clusters=6, seed=5).fit(ds.X)
        # Not guaranteed in general, but holds for this fixture.
        assert not np.array_equal(a.labels_, b.labels_)


class TestConvergence:
    def test_cost_monotonically_non_increasing(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=8, seed=6).fit(ds.X)
        costs = model.stats_.costs
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_converged_run_reports_zero_final_moves(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=8, seed=7).fit(ds.X)
        assert model.converged_
        assert model.stats_.moves_per_iteration[-1] == 0

    def test_first_iteration_moves_everything(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=8, seed=8).fit(ds.X)
        assert model.stats_.moves_per_iteration[0] == ds.n_items

    def test_max_iter_respected(self, medium_planted_dataset):
        ds = medium_planted_dataset
        model = KModes(n_clusters=60, seed=9, max_iter=2).fit(ds.X)
        assert model.n_iter_ <= 2
        if model.n_iter_ == 2 and model.stats_.moves_per_iteration[-1] > 0:
            assert not model.converged_

    def test_fixed_point_cost_is_stable(self, small_planted_dataset):
        # Re-fitting from converged modes cannot increase the cost.
        # (Labels may legally differ on distance ties: a fresh fit has
        # no "current cluster" to keep, so ties break to lowest id.)
        ds = small_planted_dataset
        first = KModes(n_clusters=8, seed=10).fit(ds.X)
        second = KModes(n_clusters=8, seed=10).fit(ds.X, initial_modes=first.modes_)
        assert second.cost_ <= first.cost_
        assert second.converged_


class TestInitialModes:
    def test_explicit_initial_modes_used(self, small_planted_dataset):
        ds = small_planted_dataset
        init = ds.X[:4].copy()
        model = KModes(n_clusters=4, seed=11).fit(ds.X, initial_modes=init)
        assert model.n_iter_ >= 1

    def test_same_initial_modes_same_result_any_seed(self, small_planted_dataset):
        # With fixed initial modes and no empty-cluster randomness the
        # seed must not influence the outcome — the paper's protocol.
        ds = small_planted_dataset
        init = ds.X[10:16].copy()
        a = KModes(n_clusters=6, seed=1).fit(ds.X, initial_modes=init)
        b = KModes(n_clusters=6, seed=99).fit(ds.X, initial_modes=init)
        assert np.array_equal(a.labels_, b.labels_)

    def test_rejects_wrong_shape(self, small_planted_dataset):
        ds = small_planted_dataset
        with pytest.raises(DataValidationError):
            KModes(n_clusters=4, seed=0).fit(ds.X, initial_modes=ds.X[:3])

    def test_all_init_methods_run(self, small_planted_dataset):
        ds = small_planted_dataset
        for method in ("random", "huang", "cao"):
            model = KModes(n_clusters=5, init=method, seed=12).fit(ds.X)
            assert model.labels_ is not None, method


class TestPredict:
    def test_training_items_keep_their_cluster(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=8, seed=13).fit(ds.X)
        predicted = model.predict(ds.X)
        # A converged fit is a fixed point of nearest-mode assignment,
        # up to ties which predict breaks by lowest cluster id.
        distances_match = (
            np.count_nonzero(ds.X != model.modes_[predicted], axis=1)
            == np.count_nonzero(ds.X != model.modes_[model.labels_], axis=1)
        )
        assert np.all(distances_match)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KModes(n_clusters=2).predict(np.array([[1, 2]]))

    def test_predict_checks_attribute_count(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=4, seed=14).fit(ds.X)
        with pytest.raises(DataValidationError):
            model.predict(ds.X[:, :-1])


class TestValidation:
    def test_rejects_float_matrix(self):
        with pytest.raises(DataValidationError):
            KModes(n_clusters=2, seed=0).fit(np.array([[0.5, 1.0]]))

    def test_rejects_negative_codes(self):
        with pytest.raises(DataValidationError):
            KModes(n_clusters=1, seed=0).fit(np.array([[-1, 2]]))

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            KModes(n_clusters=1, seed=0).fit(np.empty((0, 2), dtype=np.int64))

    def test_rejects_k_above_n(self):
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=3, seed=0).fit(np.array([[1, 2], [3, 4]]))

    def test_rejects_bad_constructor_args(self):
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=0)
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=2, max_iter=0)
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=2, chunk_items=0)
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=2, init="unknown")


class TestEdgeCases:
    def test_k_equals_n(self):
        X = np.array([[1, 1], [2, 2], [3, 3]])
        model = KModes(n_clusters=3, seed=0).fit(X)
        assert len(np.unique(model.labels_)) == 3
        assert model.cost_ == 0

    def test_single_cluster(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=1, seed=0).fit(ds.X)
        assert np.all(model.labels_ == 0)

    def test_constant_data(self):
        X = np.tile([5, 6, 7], (20, 1))
        model = KModes(n_clusters=3, seed=0).fit(X)
        assert model.cost_ == 0
        assert model.converged_

    def test_single_item(self):
        model = KModes(n_clusters=1, seed=0).fit(np.array([[1, 2, 3]]))
        assert model.labels_.tolist() == [0]
        assert model.modes_.tolist() == [[1, 2, 3]]

    def test_single_attribute(self):
        X = np.array([[0], [0], [9], [9]])
        model = KModes(n_clusters=2, seed=0).fit(X)
        assert cluster_purity(model.labels_, np.array([0, 0, 1, 1])) == 1.0

    def test_duplicate_initial_modes_leave_empty_clusters(self):
        X = np.array([[1, 1], [1, 1], [9, 9], [9, 9]])
        init = np.array([[1, 1], [1, 1], [9, 9]])
        model = KModes(n_clusters=3, seed=0).fit(X, initial_modes=init)
        # Cluster 1 duplicates cluster 0's mode; the tie rule sends all
        # items to the lower id and the 'keep' policy retains the mode.
        assert model.converged_

    def test_chunk_size_does_not_change_result(self, small_planted_dataset):
        ds = small_planted_dataset
        init = ds.X[:6].copy()
        a = KModes(n_clusters=6, seed=0, chunk_items=7).fit(ds.X, initial_modes=init)
        b = KModes(n_clusters=6, seed=0, chunk_items=500).fit(ds.X, initial_modes=init)
        assert np.array_equal(a.labels_, b.labels_)

    def test_track_cost_off_gives_nan_series(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=4, seed=0, track_cost=False).fit(ds.X)
        assert all(np.isnan(c) for c in model.stats_.costs)
        assert np.isfinite(model.cost_)  # final cost still computed

    def test_stats_shortlist_equals_k(self, small_planted_dataset):
        ds = small_planted_dataset
        model = KModes(n_clusters=9, seed=0).fit(ds.X)
        assert all(s == 9 for s in model.stats_.shortlist_sizes)
