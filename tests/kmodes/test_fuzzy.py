"""Unit tests for FuzzyKModes (Huang & Ng 1999, paper reference [21])."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.kmodes.fuzzy import FuzzyKModes
from repro.metrics.purity import cluster_purity


class TestFit:
    def test_recovers_planted_clusters(self, small_planted_dataset):
        # A sharp exponent (alpha near 1) approaches hard K-Modes and
        # recovers the planted structure; larger alphas trade purity
        # for softer memberships (checked separately below).
        ds = small_planted_dataset
        model = FuzzyKModes(n_clusters=ds.n_classes, alpha=1.1, seed=0).fit(ds.X)
        assert cluster_purity(model.labels_, ds.labels) > 0.85

    def test_memberships_row_stochastic(self, small_planted_dataset):
        ds = small_planted_dataset
        model = FuzzyKModes(n_clusters=6, alpha=1.5, seed=1).fit(ds.X)
        sums = model.memberships_.sum(axis=1)
        assert np.allclose(sums, 1.0)
        assert model.memberships_.min() >= 0.0

    def test_labels_are_argmax_memberships(self, small_planted_dataset):
        ds = small_planted_dataset
        model = FuzzyKModes(n_clusters=6, alpha=1.5, seed=2).fit(ds.X)
        assert np.array_equal(model.labels_, model.memberships_.argmax(axis=1))

    def test_cost_non_increasing(self, small_planted_dataset):
        ds = small_planted_dataset
        model = FuzzyKModes(n_clusters=8, alpha=1.4, seed=3).fit(ds.X)
        costs = model.stats_.costs
        assert all(a >= b - 1e-6 for a, b in zip(costs, costs[1:]))

    def test_deterministic(self, small_planted_dataset):
        ds = small_planted_dataset
        a = FuzzyKModes(n_clusters=5, alpha=1.5, seed=4).fit(ds.X)
        b = FuzzyKModes(n_clusters=5, alpha=1.5, seed=4).fit(ds.X)
        assert np.array_equal(a.labels_, b.labels_)
        assert np.allclose(a.memberships_, b.memberships_)

    def test_zero_distance_items_get_crisp_membership(self):
        X = np.array([[1, 1], [1, 1], [9, 9], [9, 9]])
        init = np.array([[1, 1], [9, 9]])
        model = FuzzyKModes(n_clusters=2, alpha=2.0, seed=0).fit(
            X, initial_modes=init
        )
        # Items identical to a mode must put all membership on it.
        assert model.memberships_[0, 0] == pytest.approx(1.0)
        assert model.memberships_[2, 1] == pytest.approx(1.0)

    def test_large_alpha_blurs_memberships(self, small_planted_dataset):
        ds = small_planted_dataset
        sharp = FuzzyKModes(n_clusters=5, alpha=1.2, seed=5).fit(ds.X)
        blurry = FuzzyKModes(n_clusters=5, alpha=4.0, seed=5).fit(ds.X)
        # Entropy of memberships grows with alpha.
        def mean_entropy(memberships):
            p = np.clip(memberships, 1e-12, 1.0)
            return float((-p * np.log(p)).sum(axis=1).mean())

        assert mean_entropy(blurry.memberships_) > mean_entropy(sharp.memberships_)

    def test_explicit_initial_modes(self, small_planted_dataset):
        ds = small_planted_dataset
        init = ds.X[:4].copy()
        model = FuzzyKModes(n_clusters=4, seed=6).fit(ds.X, initial_modes=init)
        assert model.modes_.shape == (4, ds.n_attributes)


class TestPredict:
    def test_predict_memberships_shape(self, small_planted_dataset):
        ds = small_planted_dataset
        model = FuzzyKModes(n_clusters=5, seed=7).fit(ds.X)
        memberships = model.predict_memberships(ds.X[:10])
        assert memberships.shape == (10, 5)
        assert np.allclose(memberships.sum(axis=1), 1.0)

    def test_predict_hard_labels(self, small_planted_dataset):
        ds = small_planted_dataset
        model = FuzzyKModes(n_clusters=5, seed=8).fit(ds.X)
        labels = model.predict(ds.X[:10])
        assert labels.shape == (10,)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            FuzzyKModes(n_clusters=2).predict(np.array([[1, 2]]))

    def test_predict_attribute_check(self, small_planted_dataset):
        ds = small_planted_dataset
        model = FuzzyKModes(n_clusters=3, seed=9).fit(ds.X)
        with pytest.raises(DataValidationError):
            model.predict(ds.X[:, :-1])


class TestValidation:
    def test_rejects_alpha_at_or_below_one(self):
        with pytest.raises(ConfigurationError):
            FuzzyKModes(n_clusters=2, alpha=1.0)
        with pytest.raises(ConfigurationError):
            FuzzyKModes(n_clusters=2, alpha=0.5)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            FuzzyKModes(n_clusters=0)

    def test_rejects_negative_tol(self):
        with pytest.raises(ConfigurationError):
            FuzzyKModes(n_clusters=2, tol=-0.1)

    def test_rejects_float_matrix(self):
        with pytest.raises(DataValidationError):
            FuzzyKModes(n_clusters=1, seed=0).fit(np.array([[0.5]]))

    def test_rejects_k_above_n(self):
        with pytest.raises(ConfigurationError):
            FuzzyKModes(n_clusters=3, seed=0).fit(np.array([[1], [2]]))
