"""Unit tests for repro.kmodes.cost (Equation 4)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.kmodes.cost import clustering_cost


class TestClusteringCost:
    def test_zero_when_items_equal_modes(self):
        X = np.array([[1, 2], [3, 4]])
        modes = X.copy()
        assert clustering_cost(X, modes, np.array([0, 1])) == 0

    def test_counts_total_mismatches(self):
        X = np.array([[1, 2], [3, 4]])
        modes = np.array([[1, 9], [9, 9]])
        assert clustering_cost(X, modes, np.array([0, 1])) == 3

    def test_maximum_is_n_times_m(self):
        X = np.zeros((4, 3), dtype=np.int64)
        modes = np.ones((2, 3), dtype=np.int64)
        assert clustering_cost(X, modes, np.array([0, 1, 0, 1])) == 12

    def test_equals_sum_of_matching_distances(self):
        from repro.kmodes.dissimilarity import matching_distance

        rng = np.random.default_rng(0)
        X = rng.integers(0, 5, (30, 7))
        modes = rng.integers(0, 5, (4, 7))
        labels = rng.integers(0, 4, 30)
        expected = sum(
            matching_distance(X[i], modes[labels[i]]) for i in range(30)
        )
        assert clustering_cost(X, modes, labels) == expected

    def test_empty_labels(self):
        X = np.zeros((0, 3), dtype=np.int64)
        modes = np.zeros((2, 3), dtype=np.int64)
        assert clustering_cost(X, modes, np.zeros(0, dtype=np.int64)) == 0

    def test_rejects_labels_out_of_range(self):
        X = np.zeros((2, 2), dtype=np.int64)
        modes = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(DataValidationError):
            clustering_cost(X, modes, np.array([0, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataValidationError):
            clustering_cost(
                np.zeros((2, 2), dtype=np.int64),
                np.zeros((1, 3), dtype=np.int64),
                np.array([0, 0]),
            )

    def test_rejects_label_count_mismatch(self):
        with pytest.raises(DataValidationError):
            clustering_cost(
                np.zeros((2, 2), dtype=np.int64),
                np.zeros((1, 2), dtype=np.int64),
                np.array([0]),
            )
