"""Unit tests for repro.kmodes.dissimilarity (Equations 1-2)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.kmodes.dissimilarity import (
    distances_to_modes,
    matching_distance,
    pairwise_matching,
)


class TestMatchingDistance:
    def test_identical_items(self):
        assert matching_distance(np.array([1, 2, 3]), np.array([1, 2, 3])) == 0

    def test_completely_different(self):
        assert matching_distance(np.array([1, 2]), np.array([3, 4])) == 2

    def test_counts_mismatches(self):
        assert matching_distance(np.array([1, 2, 3, 4]), np.array([1, 9, 3, 9])) == 2

    def test_symmetry(self):
        x, y = np.array([1, 5, 2]), np.array([1, 6, 3])
        assert matching_distance(x, y) == matching_distance(y, x)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            x, y, z = rng.integers(0, 4, (3, 10))
            assert matching_distance(x, z) <= (
                matching_distance(x, y) + matching_distance(y, z)
            )

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataValidationError):
            matching_distance(np.array([1, 2]), np.array([1, 2, 3]))

    def test_rejects_2d(self):
        with pytest.raises(DataValidationError):
            matching_distance(np.zeros((2, 2)), np.zeros((2, 2)))


class TestDistancesToModes:
    def test_basic(self):
        x = np.array([1, 2, 3])
        modes = np.array([[1, 2, 3], [1, 2, 9], [7, 8, 9]])
        assert distances_to_modes(x, modes).tolist() == [0, 1, 3]

    def test_single_mode(self):
        assert distances_to_modes(np.array([1]), np.array([[2]])).tolist() == [1]

    def test_matches_pairwise(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 5, 8)
        modes = rng.integers(0, 5, (6, 8))
        single = distances_to_modes(x, modes)
        full = pairwise_matching(x[None, :], modes)[0]
        assert np.array_equal(single, full)

    def test_rejects_incompatible_modes(self):
        with pytest.raises(DataValidationError):
            distances_to_modes(np.array([1, 2]), np.array([[1, 2, 3]]))

    def test_rejects_2d_item(self):
        with pytest.raises(DataValidationError):
            distances_to_modes(np.zeros((2, 2)), np.zeros((2, 2)))


class TestPairwiseMatching:
    def test_shape(self):
        A = np.zeros((3, 4), dtype=np.int64)
        B = np.zeros((5, 4), dtype=np.int64)
        assert pairwise_matching(A, B).shape == (3, 5)

    def test_diagonal_zero_for_self_comparison(self):
        rng = np.random.default_rng(2)
        A = rng.integers(0, 3, (6, 5))
        D = pairwise_matching(A, A)
        assert np.all(np.diag(D) == 0)

    def test_chunking_does_not_change_result(self):
        rng = np.random.default_rng(3)
        A = rng.integers(0, 4, (17, 6))
        B = rng.integers(0, 4, (9, 6))
        assert np.array_equal(
            pairwise_matching(A, B, chunk_rows=3),
            pairwise_matching(A, B, chunk_rows=1000),
        )

    def test_bounded_by_attribute_count(self):
        rng = np.random.default_rng(4)
        A = rng.integers(0, 2, (10, 7))
        D = pairwise_matching(A, A)
        assert D.max() <= 7
        assert D.min() >= 0

    def test_rejects_incompatible(self):
        with pytest.raises(DataValidationError):
            pairwise_matching(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_rejects_bad_chunk(self):
        with pytest.raises(DataValidationError):
            pairwise_matching(np.zeros((2, 3)), np.zeros((2, 3)), chunk_rows=0)
