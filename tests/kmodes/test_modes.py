"""Unit tests for repro.kmodes.modes (mode update, Equation 3)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError, EmptyClusterError
from repro.kmodes.cost import clustering_cost
from repro.kmodes.modes import column_mode, compute_modes


class TestColumnMode:
    def test_most_frequent(self):
        assert column_mode(np.array([1, 2, 2, 3])) == 2

    def test_tie_break_smallest(self):
        assert column_mode(np.array([3, 1, 3, 1])) == 1

    def test_single_value(self):
        assert column_mode(np.array([9])) == 9

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            column_mode(np.array([], dtype=np.int64))


class TestComputeModes:
    def test_single_cluster_mode(self):
        X = np.array([[1, 5], [1, 6], [2, 5]])
        modes = compute_modes(X, np.zeros(3, dtype=np.int64), 1)
        assert modes.tolist() == [[1, 5]]

    def test_per_cluster_modes(self):
        X = np.array([[1, 1], [1, 1], [9, 9], [9, 8], [9, 8]])
        labels = np.array([0, 0, 1, 1, 1])
        modes = compute_modes(X, labels, 2)
        assert modes[0].tolist() == [1, 1]
        assert modes[1].tolist() == [9, 8]

    def test_mode_minimises_within_cluster_cost(self):
        # Equation 3: the mode is the vector minimising D(cluster, Q).
        rng = np.random.default_rng(5)
        X = rng.integers(0, 4, (40, 6))
        labels = rng.integers(0, 3, 40)
        modes = compute_modes(X, labels, 3)
        base_cost = clustering_cost(X, modes, labels)
        for cluster in range(3):
            for j in range(6):
                for candidate in range(4):
                    perturbed = modes.copy()
                    perturbed[cluster, j] = candidate
                    assert clustering_cost(X, perturbed, labels) >= base_cost

    def test_deterministic_tie_break(self):
        # Two values with equal counts: the smaller code must win.
        X = np.array([[2], [7], [7], [2]])
        labels = np.zeros(4, dtype=np.int64)
        assert compute_modes(X, labels, 1)[0, 0] == 2

    def test_preserves_dtype(self):
        X = np.array([[1, 2]], dtype=np.int32)
        modes = compute_modes(X, np.zeros(1, dtype=np.int64), 1)
        assert modes.dtype == np.int32

    def test_empty_policy_keep(self):
        X = np.array([[1, 1], [1, 1]])
        previous = np.array([[0, 0], [42, 43]])
        modes = compute_modes(
            X, np.zeros(2, dtype=np.int64), 2,
            previous_modes=previous, empty_policy="keep",
        )
        assert modes[1].tolist() == [42, 43]

    def test_empty_policy_keep_requires_previous(self):
        X = np.array([[1, 1]])
        with pytest.raises(ConfigurationError):
            compute_modes(X, np.zeros(1, dtype=np.int64), 2, empty_policy="keep")

    def test_empty_policy_error(self):
        X = np.array([[1, 1]])
        with pytest.raises(EmptyClusterError):
            compute_modes(X, np.zeros(1, dtype=np.int64), 2, empty_policy="error")

    def test_empty_policy_reinit_uses_items(self):
        X = np.array([[1, 2], [3, 4]])
        modes = compute_modes(
            X, np.zeros(2, dtype=np.int64), 2,
            empty_policy="reinit", rng=np.random.default_rng(0),
        )
        assert modes[1].tolist() in (X[0].tolist(), X[1].tolist())

    def test_rejects_unknown_policy(self):
        X = np.array([[1]])
        with pytest.raises(ConfigurationError):
            compute_modes(X, np.zeros(1, dtype=np.int64), 1, empty_policy="what")

    def test_rejects_labels_out_of_range(self):
        X = np.array([[1], [2]])
        with pytest.raises(DataValidationError):
            compute_modes(X, np.array([0, 5]), 2)
        with pytest.raises(DataValidationError):
            compute_modes(X, np.array([0, -1]), 2)

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(DataValidationError):
            compute_modes(np.array([[1], [2]]), np.array([0]), 1)

    def test_rejects_previous_modes_shape(self):
        X = np.array([[1, 1]])
        with pytest.raises(DataValidationError):
            compute_modes(
                X, np.zeros(1, dtype=np.int64), 2,
                previous_modes=np.zeros((1, 2), dtype=np.int64),
                empty_policy="keep",
            )

    def test_large_value_codes(self):
        # datgen uses a 40 000-value domain; the fused encoding must cope.
        X = np.array([[39_999, 0], [39_999, 5], [39_999, 5]])
        modes = compute_modes(X, np.zeros(3, dtype=np.int64), 1)
        assert modes[0].tolist() == [39_999, 5]

    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(9)
        X = rng.integers(0, 6, (60, 5))
        labels = rng.integers(0, 4, 60)
        fast = compute_modes(X, labels, 4, previous_modes=np.zeros((4, 5), dtype=X.dtype))
        for cluster in range(4):
            members = X[labels == cluster]
            if len(members) == 0:
                continue
            for j in range(5):
                assert fast[cluster, j] == column_mode(members[:, j])
