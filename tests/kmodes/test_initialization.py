"""Unit tests for repro.kmodes.initialization."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmodes.initialization import cao_init, huang_init, random_init, resolve_init


@pytest.fixture
def X():
    rng = np.random.default_rng(0)
    return rng.integers(0, 10, (50, 6))


class TestRandomInit:
    def test_selects_actual_items(self, X):
        modes = random_init(X, 5, np.random.default_rng(1))
        rows = {tuple(row) for row in X.tolist()}
        assert all(tuple(mode) in rows for mode in modes.tolist())

    def test_distinct_items(self, X):
        rng = np.random.default_rng(2)
        modes = random_init(X, 50, rng)  # select everything
        assert len({tuple(m) for m in modes.tolist()}) == len(
            {tuple(r) for r in X.tolist()}
        )

    def test_deterministic_given_rng(self, X):
        a = random_init(X, 5, np.random.default_rng(3))
        b = random_init(X, 5, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_returns_copy(self, X):
        modes = random_init(X, 3, np.random.default_rng(4))
        modes[:] = -1
        assert X.min() >= 0

    def test_rejects_k_above_n(self, X):
        with pytest.raises(ConfigurationError):
            random_init(X, 51, np.random.default_rng(0))

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            random_init(np.empty((0, 3), dtype=np.int64), 1, np.random.default_rng(0))


class TestHuangInit:
    def test_shape(self, X):
        modes = huang_init(X, 4, np.random.default_rng(5))
        assert modes.shape == (4, X.shape[1])

    def test_modes_are_actual_items(self, X):
        modes = huang_init(X, 4, np.random.default_rng(6))
        rows = {tuple(row) for row in X.tolist()}
        assert all(tuple(mode) in rows for mode in modes.tolist())

    def test_distinct_items_where_possible(self, X):
        modes = huang_init(X, 6, np.random.default_rng(7))
        assert len({tuple(m) for m in modes.tolist()}) == 6

    def test_deterministic_given_rng(self, X):
        a = huang_init(X, 4, np.random.default_rng(8))
        b = huang_init(X, 4, np.random.default_rng(8))
        assert np.array_equal(a, b)


class TestCaoInit:
    def test_shape(self, X):
        assert cao_init(X, 5).shape == (5, X.shape[1])

    def test_deterministic_without_rng(self, X):
        assert np.array_equal(cao_init(X, 5), cao_init(X, 5))

    def test_first_mode_has_max_density(self):
        # One item repeated 5 times dominates every frequency table.
        X = np.vstack([np.tile([7, 7, 7], (5, 1)), [[1, 2, 3]], [[4, 5, 6]]])
        modes = cao_init(X, 2)
        assert modes[0].tolist() == [7, 7, 7]

    def test_modes_are_distinct_items(self, X):
        modes = cao_init(X, 8)
        assert len({tuple(m) for m in modes.tolist()}) == 8

    def test_spreads_across_clusters(self):
        # Two tight groups: the two chosen modes should straddle them.
        rng = np.random.default_rng(1)
        a = np.tile([1, 1, 1, 1], (20, 1)) + (rng.random((20, 4)) < 0.1)
        b = np.tile([9, 9, 9, 9], (20, 1)) + (rng.random((20, 4)) < 0.1)
        X = np.vstack([a, b]).astype(np.int64)
        modes = cao_init(X, 2)
        sides = {tuple(np.array(m) > 5) for m in modes.tolist()}
        assert len(sides) == 2


class TestResolveInit:
    def test_known_methods(self):
        assert resolve_init("random") is random_init
        assert resolve_init("huang") is huang_init
        assert resolve_init("cao") is cao_init

    def test_case_insensitive(self):
        assert resolve_init("Random") is random_init

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError, match="unknown init method"):
            resolve_init("magic")
