"""Unit tests for the datgen clone (repro.data.datgen)."""

import numpy as np
import pytest

from repro.data.datgen import ClusterRule, RuleBasedGenerator
from repro.exceptions import ConfigurationError


class TestClusterRule:
    def test_width(self):
        rule = ClusterRule(np.array([0, 2]), np.array([5, 9]))
        assert rule.width == 2

    def test_matches(self):
        rule = ClusterRule(np.array([0, 2]), np.array([5, 9]))
        assert rule.matches(np.array([5, 100, 9]))
        assert not rule.matches(np.array([5, 100, 8]))


class TestRules:
    def test_rule_count(self):
        gen = RuleBasedGenerator(n_clusters=7, n_attributes=20, seed=0)
        assert len(gen.rules) == 7

    def test_rule_widths_within_fraction(self):
        gen = RuleBasedGenerator(
            n_clusters=30, n_attributes=50, rule_width_fraction=(0.4, 0.8), seed=1
        )
        for rule in gen.rules:
            assert 20 <= rule.width <= 40

    def test_rules_deterministic(self):
        a = RuleBasedGenerator(n_clusters=5, n_attributes=10, seed=2)
        b = RuleBasedGenerator(n_clusters=5, n_attributes=10, seed=2)
        for ra, rb in zip(a.rules, b.rules):
            assert np.array_equal(ra.attributes, rb.attributes)
            assert np.array_equal(ra.values, rb.values)

    def test_rules_stable_across_generate_calls(self):
        gen = RuleBasedGenerator(n_clusters=5, n_attributes=10, seed=3)
        before = [(r.attributes.copy(), r.values.copy()) for r in gen.rules]
        gen.generate(50)
        gen.generate(80)
        for (attrs, values), rule in zip(before, gen.rules):
            assert np.array_equal(attrs, rule.attributes)
            assert np.array_equal(values, rule.values)

    def test_rule_attributes_unique_and_sorted(self):
        gen = RuleBasedGenerator(n_clusters=10, n_attributes=30, seed=4)
        for rule in gen.rules:
            assert np.array_equal(rule.attributes, np.unique(rule.attributes))


class TestGenerate:
    def test_shapes(self):
        ds = RuleBasedGenerator(n_clusters=5, n_attributes=12, seed=5).generate(100)
        assert ds.X.shape == (100, 12)
        assert ds.labels.shape == (100,)

    def test_noise_free_items_satisfy_their_rule(self):
        gen = RuleBasedGenerator(n_clusters=8, n_attributes=16, seed=6)
        ds = gen.generate(200)
        for i in range(200):
            assert gen.rules[ds.labels[i]].matches(ds.X[i])

    def test_values_within_domain(self):
        ds = RuleBasedGenerator(
            n_clusters=4, n_attributes=8, domain_size=100, seed=7
        ).generate(50)
        assert ds.X.min() >= 0
        assert ds.X.max() < 100

    def test_deterministic(self):
        a = RuleBasedGenerator(n_clusters=4, n_attributes=8, seed=8).generate(60)
        b = RuleBasedGenerator(n_clusters=4, n_attributes=8, seed=8).generate(60)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.labels, b.labels)

    def test_equal_balance(self):
        ds = RuleBasedGenerator(
            n_clusters=5, n_attributes=8, balance="equal", seed=9
        ).generate(100)
        assert np.bincount(ds.labels).tolist() == [20] * 5

    def test_zipf_balance_is_skewed(self):
        ds = RuleBasedGenerator(
            n_clusters=10, n_attributes=8, balance="zipf", seed=10
        ).generate(2_000)
        counts = np.bincount(ds.labels, minlength=10)
        assert counts[0] > 2 * counts[5]

    def test_noise_corrupts_rule_attributes(self):
        gen = RuleBasedGenerator(
            n_clusters=4, n_attributes=20, noise_rate=0.5, seed=11
        )
        ds = gen.generate(200)
        violations = sum(
            not gen.rules[ds.labels[i]].matches(ds.X[i]) for i in range(200)
        )
        assert violations > 100  # half-rate noise must break most items

    def test_metadata_provenance(self):
        gen = RuleBasedGenerator(n_clusters=3, n_attributes=6, seed=12)
        ds = gen.generate(30)
        assert ds.metadata["generator"] == "RuleBasedGenerator"
        assert ds.metadata["seed"] == 12

    def test_within_cluster_similarity_exceeds_between(self):
        gen = RuleBasedGenerator(n_clusters=4, n_attributes=20, seed=13)
        ds = gen.generate(100)
        same = within = 0
        diff = between = 0
        for i in range(0, 100, 3):
            for j in range(i + 1, 100, 7):
                matches = int(np.sum(ds.X[i] == ds.X[j]))
                if ds.labels[i] == ds.labels[j]:
                    within += matches
                    same += 1
                else:
                    between += matches
                    diff += 1
        assert same > 0 and diff > 0
        assert within / same > 3 * (between / diff + 0.1)


class TestValidation:
    def test_rejects_bad_cluster_count(self):
        with pytest.raises(ConfigurationError):
            RuleBasedGenerator(n_clusters=0, n_attributes=4)

    def test_rejects_bad_attribute_count(self):
        with pytest.raises(ConfigurationError):
            RuleBasedGenerator(n_clusters=2, n_attributes=0)

    def test_rejects_tiny_domain(self):
        with pytest.raises(ConfigurationError):
            RuleBasedGenerator(n_clusters=2, n_attributes=4, domain_size=1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            RuleBasedGenerator(
                n_clusters=2, n_attributes=4, rule_width_fraction=(0.8, 0.4)
            )
        with pytest.raises(ConfigurationError):
            RuleBasedGenerator(
                n_clusters=2, n_attributes=4, rule_width_fraction=(0.0, 0.5)
            )

    def test_rejects_bad_noise(self):
        with pytest.raises(ConfigurationError):
            RuleBasedGenerator(n_clusters=2, n_attributes=4, noise_rate=1.0)

    def test_rejects_bad_balance(self):
        with pytest.raises(ConfigurationError):
            RuleBasedGenerator(n_clusters=2, n_attributes=4, balance="heavy")

    def test_rejects_bad_item_count(self):
        gen = RuleBasedGenerator(n_clusters=2, n_attributes=4, seed=0)
        with pytest.raises(ConfigurationError):
            gen.generate(0)
