"""Unit tests for fitted-model persistence (npz + json sidecar)."""

import json

import numpy as np
import pytest

from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import load_model, save_model
from repro.engine import ShardedClusteredLSHIndex
from repro.exceptions import DataValidationError, NotFittedError
from repro.kmeans.mh_kmeans import LSHKMeans
from repro.kmodes.kmodes import KModes


@pytest.fixture(scope="module")
def categorical():
    return RuleBasedGenerator(
        n_clusters=8, n_attributes=14, domain_size=400, seed=2
    ).generate(220)


@pytest.fixture(scope="module")
def novel():
    return RuleBasedGenerator(
        n_clusters=8, n_attributes=14, domain_size=400, seed=3
    ).generate(40)


class TestMHKModesRoundTrip:
    def test_arrays_and_scalars_survive(self, categorical, tmp_path):
        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        loaded = load_model(save_model(model, tmp_path / "model"))
        assert np.array_equal(loaded.labels_, model.labels_)
        assert np.array_equal(loaded.centroids_, model.centroids_)
        assert loaded.cost_ == model.cost_
        assert loaded.n_iter_ == model.n_iter_
        assert loaded.converged_ == model.converged_

    def test_constructor_params_survive(self, categorical, tmp_path):
        model = MHKModes(
            n_clusters=8, bands=10, rows=3, seed=7, absent_code=0,
            update_refs="batch", max_iter=17,
        ).fit(categorical.X)
        loaded = load_model(save_model(model, tmp_path / "model"))
        assert (loaded.bands, loaded.rows, loaded.max_iter) == (10, 3, 17)
        assert loaded.absent_code == 0
        assert loaded.update_refs == "batch"
        assert loaded.seed == 7

    def test_predict_identical_after_reload(self, categorical, novel, tmp_path):
        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        loaded = load_model(save_model(model, tmp_path / "model"))
        assert np.array_equal(loaded.predict(novel.X), model.predict(novel.X))

    def test_neighbour_csr_survives_reload(self, categorical, tmp_path):
        # band keys fully determine the flat CSR neighbour storage, so
        # the reloaded index must reproduce it array for array
        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        loaded = load_model(save_model(model, tmp_path / "model"))
        original = model.index_.neighbour_csr()
        rebuilt = loaded.index_.neighbour_csr()
        assert original is not None and rebuilt is not None
        for left, right in zip(original, rebuilt):
            assert np.array_equal(left, right)

    def test_sharded_parallel_fit_reloads_and_predicts(
        self, categorical, novel, tmp_path
    ):
        model = MHKModes(
            n_clusters=8, bands=8, rows=2, seed=7,
            backend="thread", n_jobs=2, n_shards=3,
        ).fit(categorical.X)
        loaded = load_model(save_model(model, tmp_path / "sharded"))
        assert isinstance(loaded.index_, ShardedClusteredLSHIndex)
        assert np.array_equal(loaded.predict(novel.X), model.predict(novel.X))

    def test_sidecar_is_human_readable(self, categorical, tmp_path):
        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        path = save_model(model, tmp_path / "model")
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert sidecar["kind"] == "repro.Model"
        assert sidecar["class"] == "MHKModes"
        assert sidecar["algorithm"] == "mh-kmodes"
        assert sidecar["specs"]["lsh"]["bands"] == 8
        assert sidecar["specs"]["engine"]["backend"] == "serial"
        assert sidecar["specs"]["train"]["max_iter"] == 100


class TestOtherEstimators:
    def test_lsh_kmeans_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(4 * c, 0.5, (40, 5)) for c in range(4)])
        model = LSHKMeans(n_clusters=4, bands=8, rows=2, seed=1).fit(X)
        loaded = load_model(save_model(model, tmp_path / "kmeans"))
        assert np.array_equal(loaded.centroids_, model.centroids_)
        assert loaded.family == model.family
        assert loaded.width == model.width
        assert np.array_equal(loaded.predict(X), model.predict(X))

    def test_kmodes_round_trip_without_index(self, categorical, tmp_path):
        model = KModes(n_clusters=8, seed=0).fit(categorical.X)
        loaded = load_model(save_model(model, tmp_path / "kmodes"))
        assert np.array_equal(loaded.modes_, model.modes_)
        assert np.array_equal(loaded.labels_, model.labels_)


class TestServeSpecSidecar:
    def test_serve_spec_round_trips_and_is_inert_for_loading(
        self, categorical, novel, tmp_path
    ):
        from repro.api import ServeSpec
        from repro.data.io import load_cluster_model, load_serve_spec

        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        spec = ServeSpec(backend="thread", n_jobs=2, chunk_items=64, max_batch=128)
        path = save_model(model, tmp_path / "with_serve", serve=spec)
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert sidecar["specs"]["serve"] == spec.to_dict()
        assert load_serve_spec(path) == spec
        # the extra section does not disturb artifact loading
        loaded = load_cluster_model(path)
        assert np.array_equal(loaded.predict(novel.X), model.predict(novel.X))

    def test_serve_accepts_dict_and_validates(self, categorical, tmp_path):
        from repro.data.io import load_serve_spec

        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        path = save_model(
            model, tmp_path / "dict_serve", serve={"backend": "thread"}
        )
        assert load_serve_spec(path).backend == "thread"
        with pytest.raises(Exception):
            save_model(model, tmp_path / "bad_serve", serve={"backend": "grpc"})

    def test_load_serve_spec_none_without_section(self, categorical, tmp_path):
        from repro.data.io import load_serve_spec

        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        assert load_serve_spec(save_model(model, tmp_path / "plain")) is None

    def test_load_serve_spec_missing_sidecar_rejected(self, tmp_path):
        from repro.data.io import load_serve_spec

        with pytest.raises(DataValidationError):
            load_serve_spec(tmp_path / "absent")


class TestValidation:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_model(MHKModes(n_clusters=3, bands=4, rows=1), tmp_path / "m")

    def test_unsupported_class_rejected(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_model(object(), tmp_path / "m")

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_model(tmp_path / "absent")

    def test_missing_sidecar_rejected(self, categorical, tmp_path):
        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        path = save_model(model, tmp_path / "model")
        path.with_suffix(".json").unlink()
        with pytest.raises(DataValidationError):
            load_model(path)

    def test_wrong_sidecar_kind_rejected(self, categorical, tmp_path):
        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        path = save_model(model, tmp_path / "model")
        path.with_suffix(".json").write_text(json.dumps({"kind": "other"}))
        with pytest.raises(DataValidationError):
            load_model(path)

    def test_future_format_version_rejected(self, categorical, tmp_path):
        model = MHKModes(n_clusters=8, bands=8, rows=2, seed=7).fit(categorical.X)
        path = save_model(model, tmp_path / "model")
        sidecar_path = path.with_suffix(".json")
        sidecar = json.loads(sidecar_path.read_text())
        sidecar["format_version"] = 99
        sidecar_path.write_text(json.dumps(sidecar))
        with pytest.raises(DataValidationError):
            load_model(path)
