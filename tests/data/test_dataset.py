"""Unit tests for CategoricalDataset."""

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataValidationError


def make(n=10, m=4, k=3):
    rng = np.random.default_rng(0)
    return CategoricalDataset(
        X=rng.integers(0, 5, (n, m)), labels=rng.integers(0, k, n), name="t"
    )


class TestConstruction:
    def test_properties(self):
        ds = make(12, 5, 3)
        assert ds.n_items == 12
        assert ds.n_attributes == 5
        assert 1 <= ds.n_classes <= 3

    def test_rejects_1d_X(self):
        with pytest.raises(DataValidationError):
            CategoricalDataset(X=np.array([1, 2]), labels=np.array([0, 0]))

    def test_rejects_label_mismatch(self):
        with pytest.raises(DataValidationError):
            CategoricalDataset(X=np.zeros((3, 2), dtype=int), labels=np.array([0]))

    def test_rejects_float_X(self):
        with pytest.raises(DataValidationError):
            CategoricalDataset(X=np.zeros((2, 2)), labels=np.array([0, 1]))

    def test_describe(self):
        info = make().describe()
        assert info["n_items"] == 10
        assert info["name"] == "t"
        assert "domain_size" in info


class TestSubsample:
    def test_size(self):
        sub = make(20).subsample(5, seed=0)
        assert sub.n_items == 5

    def test_rows_come_from_parent(self):
        ds = make(20)
        sub = ds.subsample(8, seed=1)
        parent_rows = {tuple(r) for r in ds.X.tolist()}
        assert all(tuple(r) in parent_rows for r in sub.X.tolist())

    def test_deterministic(self):
        ds = make(20)
        a = ds.subsample(6, seed=2)
        b = ds.subsample(6, seed=2)
        assert np.array_equal(a.X, b.X)

    def test_rejects_oversample(self):
        with pytest.raises(DataValidationError):
            make(5).subsample(6)

    def test_rejects_zero(self):
        with pytest.raises(DataValidationError):
            make(5).subsample(0)

    def test_copies_are_independent(self):
        ds = make(10)
        sub = ds.subsample(10, seed=0)
        sub.X[:] = 0
        assert ds.X.max() > 0
