"""Unit tests for dataset/corpus persistence."""

import numpy as np
import pytest

from repro.data.datgen import RuleBasedGenerator
from repro.data.io import load_corpus, load_dataset, save_corpus, save_dataset
from repro.data.yahoo import YahooAnswersSynthesizer
from repro.exceptions import DataValidationError


@pytest.fixture
def dataset():
    return RuleBasedGenerator(n_clusters=4, n_attributes=6, seed=0).generate(30)


@pytest.fixture
def corpus():
    return YahooAnswersSynthesizer(n_topics=6, seed=1).generate(40)


class TestDatasetRoundTrip:
    def test_exact_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert np.array_equal(loaded.X, dataset.X)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.name == dataset.name

    def test_metadata_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert loaded.metadata["generator"] == "RuleBasedGenerator"
        assert loaded.metadata["seed"] == 0

    def test_suffix_added(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_dataset(tmp_path / "absent.npz")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataValidationError):
            load_dataset(path)

    def test_parent_directories_created(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "deep" / "nest" / "ds.npz")
        assert path.exists()


class TestCorpusRoundTrip:
    def test_exact_roundtrip(self, corpus, tmp_path):
        path = save_corpus(corpus, tmp_path / "corpus.jsonl")
        loaded = load_corpus(path)
        assert loaded.questions == corpus.questions
        assert np.array_equal(loaded.topics, corpus.topics)
        assert np.array_equal(loaded.true_topics, corpus.true_topics)
        assert loaded.topic_names == corpus.topic_names

    def test_metadata_roundtrip(self, corpus, tmp_path):
        path = save_corpus(corpus, tmp_path / "corpus.jsonl")
        loaded = load_corpus(path)
        assert loaded.metadata["generator"] == "YahooAnswersSynthesizer"

    def test_suffix_added(self, corpus, tmp_path):
        path = save_corpus(corpus, tmp_path / "bare")
        assert path.suffix == ".jsonl"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_corpus(tmp_path / "absent.jsonl")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_corpus(path)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(DataValidationError):
            load_corpus(path)
