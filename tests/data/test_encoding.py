"""Unit tests for repro.data.encoding."""

import numpy as np
import pytest

from repro.data.encoding import (
    CategoricalEncoder,
    augment_presence_features,
    encode_presence_matrix,
)
from repro.exceptions import DataValidationError, NotFittedError


class TestCategoricalEncoder:
    def test_roundtrip(self):
        rows = [["red", "s"], ["blue", "m"], ["red", "m"]]
        enc = CategoricalEncoder()
        codes = enc.fit_transform(rows)
        assert enc.inverse_transform(codes) == rows

    def test_codes_first_seen_order(self):
        enc = CategoricalEncoder()
        codes = enc.fit_transform([["b"], ["a"], ["b"]])
        assert codes.ravel().tolist() == [0, 1, 0]

    def test_per_column_independence(self):
        enc = CategoricalEncoder()
        codes = enc.fit_transform([["x", "x"], ["y", "x"]])
        assert codes[0].tolist() == [0, 0]
        assert codes[1].tolist() == [1, 0]

    def test_unknown_value_errors_by_default(self):
        enc = CategoricalEncoder().fit([["a"]])
        with pytest.raises(DataValidationError):
            enc.transform([["b"]])

    def test_unknown_value_code_policy(self):
        enc = CategoricalEncoder(unknown="code").fit([["a"], ["b"]])
        codes = enc.transform([["zzz"]])
        assert codes[0, 0] == 2  # one shared unknown code per column

    def test_ragged_rows_rejected(self):
        enc = CategoricalEncoder()
        with pytest.raises(DataValidationError):
            enc.fit([["a", "b"], ["c"]])
        enc.fit([["a", "b"]])
        with pytest.raises(DataValidationError):
            enc.transform([["a"]])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CategoricalEncoder().transform([["a"]])
        with pytest.raises(NotFittedError):
            CategoricalEncoder().inverse_transform(np.zeros((1, 1), dtype=int))
        with pytest.raises(NotFittedError):
            CategoricalEncoder().n_columns

    def test_domain_sizes(self):
        enc = CategoricalEncoder().fit([["a", "x"], ["b", "x"], ["c", "y"]])
        assert enc.domain_sizes() == [3, 2]

    def test_inverse_of_unknown_code_is_none(self):
        enc = CategoricalEncoder().fit([["a"]])
        assert enc.inverse_transform(np.array([[99]]))[0] == [None]

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            CategoricalEncoder().fit([])
        with pytest.raises(DataValidationError):
            CategoricalEncoder().fit([[]])

    def test_bad_policy(self):
        with pytest.raises(DataValidationError):
            CategoricalEncoder(unknown="skip")

    def test_non_string_values(self):
        enc = CategoricalEncoder()
        codes = enc.fit_transform([[1, None], [2, None]])
        assert codes[:, 1].tolist() == [0, 0]


class TestEncodePresenceMatrix:
    def test_basic(self):
        out = encode_presence_matrix([["zoo", "a"], ["tax"]], ["zoo", "tax"])
        assert out.tolist() == [[1, 0], [0, 1]]

    def test_ignores_out_of_vocabulary(self):
        out = encode_presence_matrix([["unknown"]], ["zoo"])
        assert out.tolist() == [[0]]

    def test_duplicates_collapse_to_one(self):
        out = encode_presence_matrix([["zoo", "zoo"]], ["zoo"])
        assert out.tolist() == [[1]]

    def test_rejects_empty_vocabulary(self):
        with pytest.raises(DataValidationError):
            encode_presence_matrix([["a"]], [])

    def test_rejects_duplicate_vocabulary(self):
        with pytest.raises(DataValidationError):
            encode_presence_matrix([["a"]], ["a", "a"])


class TestAugmentPresenceFeatures:
    def test_paper_example(self):
        B = np.array([[1, 0]])
        out = augment_presence_features(B, ["zoo", "tax"])
        assert out[0].tolist() == ["zoo-1", "tax-0"]

    def test_all_values_distinct_across_columns(self):
        B = np.array([[1, 1], [0, 0]])
        out = augment_presence_features(B, ["a", "b"])
        assert len({v for row in out for v in row}) == 4

    def test_shape_mismatch(self):
        with pytest.raises(DataValidationError):
            augment_presence_features(np.array([[1, 0]]), ["only-one"])

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            augment_presence_features(np.array([1, 0]), ["a", "b"])
