"""Unit tests for the Yahoo!-Answers-like corpus generator."""

import numpy as np
import pytest

from repro.data.yahoo import QuestionCorpus, YahooAnswersSynthesizer, corpus_to_dataset
from repro.exceptions import ConfigurationError, DataValidationError


@pytest.fixture(scope="module")
def corpus():
    return YahooAnswersSynthesizer(n_topics=40, seed=3).generate(800)


class TestGeneration:
    def test_counts(self, corpus):
        assert corpus.n_questions == 800
        assert corpus.n_topics == 40

    def test_deterministic(self):
        a = YahooAnswersSynthesizer(n_topics=10, seed=1).generate(50)
        b = YahooAnswersSynthesizer(n_topics=10, seed=1).generate(50)
        assert a.questions == b.questions
        assert np.array_equal(a.topics, b.topics)

    def test_minimum_question_length(self, corpus):
        assert all(len(q) >= 3 for q in corpus.questions)

    def test_label_noise_rate_close_to_configured(self):
        corpus = YahooAnswersSynthesizer(
            n_topics=20, label_noise=0.2, seed=4
        ).generate(3_000)
        assert corpus.label_noise_rate() == pytest.approx(0.2, abs=0.03)

    def test_zero_label_noise(self):
        corpus = YahooAnswersSynthesizer(
            n_topics=10, label_noise=0.0, seed=5
        ).generate(200)
        assert corpus.label_noise_rate() == 0.0
        assert np.array_equal(corpus.topics, corpus.true_topics)

    def test_questions_contain_topic_keywords(self):
        corpus = YahooAnswersSynthesizer(
            n_topics=10, keyword_rate=0.9, keyword_bleed=0.0, label_noise=0.0, seed=6
        ).generate(100)
        hits = 0
        for tokens, topic in zip(corpus.questions, corpus.true_topics):
            prefix = f"kw{int(topic):05d}x"
            if any(t.startswith(prefix) for t in tokens):
                hits += 1
        assert hits > 95

    def test_topic_documents_grouping(self, corpus):
        docs = corpus.topic_documents()
        assert len(docs) == corpus.n_topics
        total = sum(len(d) for d in docs)
        assert total == sum(len(q) for q in corpus.questions)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            YahooAnswersSynthesizer(n_topics=1)
        with pytest.raises(ConfigurationError):
            YahooAnswersSynthesizer(n_topics=5, keyword_rate=1.5)
        with pytest.raises(ConfigurationError):
            YahooAnswersSynthesizer(n_topics=5, mean_question_length=1.0)
        with pytest.raises(ConfigurationError):
            YahooAnswersSynthesizer(n_topics=5, zipf_exponent=1.0)
        with pytest.raises(ConfigurationError):
            YahooAnswersSynthesizer(n_topics=5, keywords_per_topic=0)
        with pytest.raises(ConfigurationError):
            YahooAnswersSynthesizer(n_topics=5).generate(0)


class TestQuestionCorpus:
    def test_length_mismatch_rejected(self):
        with pytest.raises(DataValidationError):
            QuestionCorpus(
                questions=[["a"]],
                topics=np.array([0, 1]),
                true_topics=np.array([0, 1]),
                topic_names=["t0", "t1"],
            )


class TestCorpusToDataset:
    def test_pipeline_shapes(self, corpus):
        ds = corpus_to_dataset(corpus, tfidf_threshold=0.3)
        assert ds.n_items == corpus.n_questions
        assert ds.n_attributes == len(ds.metadata["vocabulary"])
        assert set(np.unique(ds.X)) <= {0, 1}

    def test_labels_are_user_topics(self, corpus):
        ds = corpus_to_dataset(corpus, tfidf_threshold=0.3)
        assert np.array_equal(ds.labels, corpus.topics)

    def test_lower_threshold_more_attributes(self, corpus):
        high = corpus_to_dataset(corpus, tfidf_threshold=0.7)
        low = corpus_to_dataset(corpus, tfidf_threshold=0.3)
        assert low.n_attributes > high.n_attributes

    def test_presence_bits_match_questions(self, corpus):
        ds = corpus_to_dataset(corpus, tfidf_threshold=0.3)
        vocab = ds.metadata["vocabulary"]
        column = {word: j for j, word in enumerate(vocab)}
        for i in (0, 5, 99):
            present = {t for t in corpus.questions[i] if t in column}
            on_bits = {vocab[j] for j in np.flatnonzero(ds.X[i])}
            assert on_bits == present

    def test_empty_vocabulary_raises(self):
        # Every word appears in every topic → idf 0 everywhere → no
        # word can clear any threshold and the pipeline must fail loudly.
        degenerate = QuestionCorpus(
            questions=[["same", "words"], ["same", "words"]],
            topics=np.array([0, 1]),
            true_topics=np.array([0, 1]),
            topic_names=["t0", "t1"],
        )
        with pytest.raises(DataValidationError):
            corpus_to_dataset(degenerate, tfidf_threshold=0.5)
