"""Unit tests for repro.data.tfidf (Section IV-B word selection)."""

import pytest

from repro.data.tfidf import TfIdfVectorizer, select_topic_vocabulary
from repro.exceptions import ConfigurationError, DataValidationError


@pytest.fixture
def topic_docs():
    # Three "topics": zoology, tax, cooking — sharing filler words.
    return [
        ["zoo", "zoologist", "animal", "the", "a", "the", "zoo", "zoo"],
        ["tax", "income", "refund", "the", "a", "the", "tax", "tax"],
        ["recipe", "oven", "bake", "the", "a", "the", "recipe", "recipe"],
    ]


class TestTfIdfVectorizer:
    def test_topic_words_beat_filler(self, topic_docs):
        vec = TfIdfVectorizer().fit(topic_docs)
        assert vec.score("zoo", 0) > vec.score("the", 0)
        assert vec.score("tax", 1) > vec.score("a", 1)

    def test_word_in_every_document_scores_zero(self, topic_docs):
        vec = TfIdfVectorizer().fit(topic_docs)
        assert vec.idf("the") == 0.0
        assert vec.score("the", 0) == 0.0

    def test_unique_word_has_max_idf(self, topic_docs):
        vec = TfIdfVectorizer().fit(topic_docs)
        assert vec.idf("zoologist") == pytest.approx(1.0)

    def test_absent_word_scores_zero(self, topic_docs):
        vec = TfIdfVectorizer().fit(topic_docs)
        assert vec.score("quantum", 0) == 0.0

    def test_scores_bounded(self, topic_docs):
        vec = TfIdfVectorizer().fit(topic_docs)
        for doc in range(3):
            for word, score in vec.document_scores(doc).items():
                assert 0.0 <= score <= 1.0, word

    def test_most_frequent_unique_word_scores_one(self):
        vec = TfIdfVectorizer().fit([["only", "only"], ["other"]])
        assert vec.score("only", 0) == pytest.approx(1.0)

    def test_document_scores_complete(self, topic_docs):
        vec = TfIdfVectorizer().fit(topic_docs)
        scores = vec.document_scores(0)
        assert set(scores) == set(topic_docs[0])

    def test_document_index_validated(self, topic_docs):
        vec = TfIdfVectorizer().fit(topic_docs)
        with pytest.raises(DataValidationError):
            vec.score("zoo", 3)
        with pytest.raises(DataValidationError):
            vec.document_scores(-1)

    def test_unfitted_raises(self):
        with pytest.raises(DataValidationError):
            TfIdfVectorizer().score("zoo", 0)

    def test_rejects_zero_documents(self):
        with pytest.raises(DataValidationError):
            TfIdfVectorizer().fit([])

    def test_single_document_all_idf_zero(self):
        vec = TfIdfVectorizer().fit([["a", "b"]])
        assert vec.idf("a") == 0.0


class TestSelectTopicVocabulary:
    def test_selects_topic_keywords(self, topic_docs):
        vocab = select_topic_vocabulary(topic_docs, threshold=0.5)
        assert "zoo" in vocab
        assert "tax" in vocab
        assert "recipe" in vocab

    def test_excludes_ubiquitous_words(self, topic_docs):
        vocab = select_topic_vocabulary(topic_docs, threshold=0.1)
        assert "the" not in vocab
        assert "a" not in vocab

    def test_lower_threshold_grows_vocabulary(self, topic_docs):
        high = select_topic_vocabulary(topic_docs, threshold=0.9)
        low = select_topic_vocabulary(topic_docs, threshold=0.2)
        assert set(high) <= set(low)
        assert len(low) > len(high)

    def test_max_words_per_topic_caps_contribution(self, topic_docs):
        capped = select_topic_vocabulary(
            topic_docs, threshold=0.1, max_words_per_topic=1
        )
        # One word per topic at most (the union may be smaller).
        assert len(capped) <= 3

    def test_sorted_deterministic(self, topic_docs):
        vocab = select_topic_vocabulary(topic_docs, threshold=0.3)
        assert vocab == sorted(vocab)

    def test_threshold_validated(self, topic_docs):
        with pytest.raises(ConfigurationError):
            select_topic_vocabulary(topic_docs, threshold=0.0)
        with pytest.raises(ConfigurationError):
            select_topic_vocabulary(topic_docs, threshold=1.5)

    def test_cap_validated(self, topic_docs):
        with pytest.raises(ConfigurationError):
            select_topic_vocabulary(topic_docs, threshold=0.5, max_words_per_topic=0)
