"""Unit tests for repro.data.text."""

import pytest

from repro.data.text import Vocabulary, tokenize
from repro.exceptions import DataValidationError


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Zoo ZOO zoo") == ["zoo", "zoo", "zoo"]

    def test_strips_punctuation(self):
        assert tokenize("do they, really do?") == ["do", "they", "really", "do"]

    def test_keeps_digits_and_apostrophes(self):
        assert tokenize("it's 42") == ["it's", "42"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_paper_example(self):
        question = (
            "im interested in being a zoologist but im not sure what do "
            "they really do.Does zoologist work only in zoo?"
        )
        tokens = tokenize(question)
        assert "zoologist" in tokens
        assert "zoo" in tokens


class TestVocabulary:
    def test_from_words_ids_follow_order(self):
        vocab = Vocabulary.from_words(["b", "a", "c"])
        assert vocab.id_of("b") == 0
        assert vocab.id_of("c") == 2
        assert vocab.word_of(1) == "a"

    def test_from_words_rejects_duplicates(self):
        with pytest.raises(DataValidationError):
            Vocabulary.from_words(["a", "a"])

    def test_fit_first_seen_order(self):
        vocab = Vocabulary().fit([["x", "y"], ["y", "z"]])
        assert vocab.id_of("x") == 0
        assert vocab.id_of("z") == 2

    def test_document_frequency_counts_documents_not_tokens(self):
        vocab = Vocabulary().fit([["a", "a", "b"], ["a"]])
        assert vocab.document_frequency["a"] == 2
        assert vocab.document_frequency["b"] == 1

    def test_n_documents(self):
        vocab = Vocabulary().fit([["a"], ["b"], []])
        assert vocab.n_documents == 3

    def test_contains(self):
        vocab = Vocabulary.from_words(["q"])
        assert "q" in vocab
        assert "r" not in vocab

    def test_len(self):
        assert len(Vocabulary.from_words(["a", "b"])) == 2

    def test_encode_skips_unknown(self):
        vocab = Vocabulary.from_words(["a", "b"])
        assert vocab.encode(["a", "mystery", "b", "a"]) == [0, 1, 0]

    def test_words_returns_copy(self):
        vocab = Vocabulary.from_words(["a"])
        words = vocab.words
        words.append("b")
        assert len(vocab) == 1

    def test_id_of_unknown_raises(self):
        with pytest.raises(KeyError):
            Vocabulary.from_words(["a"]).id_of("b")
