"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datgen import RuleBasedGenerator
from repro.data.dataset import CategoricalDataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_planted_dataset() -> CategoricalDataset:
    """A tiny rule-based dataset with clearly separated clusters.

    10 clusters × ~20 items, 24 attributes; rules pin 40-80 % of the
    attributes so exact K-Modes recovers the planted labels.
    """
    return RuleBasedGenerator(
        n_clusters=10, n_attributes=24, domain_size=500, seed=7
    ).generate(200)


@pytest.fixture
def medium_planted_dataset() -> CategoricalDataset:
    """A medium rule-based dataset for integration tests (60 clusters)."""
    return RuleBasedGenerator(
        n_clusters=60, n_attributes=30, domain_size=2_000, seed=11
    ).generate(900)


@pytest.fixture
def binary_presence_dataset(rng: np.random.Generator) -> CategoricalDataset:
    """Sparse 0/1 word-presence data in the style of Section IV-B."""
    n, m, k = 150, 40, 8
    labels = rng.integers(0, k, n)
    X = np.zeros((n, m), dtype=np.int64)
    for cluster in range(k):
        members = np.flatnonzero(labels == cluster)
        keywords = rng.choice(m, size=4, replace=False)
        for member in members:
            chosen = rng.random(4) < 0.8
            X[member, keywords[chosen]] = 1
            extra = rng.choice(m, size=2)
            X[member, extra] = 1
    return CategoricalDataset(X=X, labels=labels, name="binary-presence")
