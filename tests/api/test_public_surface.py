"""Public-API snapshot: repro.__all__ and spec fields vs a checked-in file.

An unintentional export or a renamed spec field is an API break for
downstream users; this test makes any change to the public surface an
explicit, reviewable diff of ``public_surface.json``.  Regenerate with

    PYTHONPATH=src python tests/api/regenerate_public_surface.py
"""

import dataclasses
import json
from pathlib import Path

import repro
from repro.api import (
    EngineSpec,
    LSHSpec,
    ResilienceSpec,
    ServeSpec,
    StreamSpec,
    TrainSpec,
    available_estimators,
)

SNAPSHOT_PATH = Path(__file__).parent / "public_surface.json"


def current_surface() -> dict:
    return {
        "repro_all": sorted(repro.__all__),
        "estimators": sorted(available_estimators()),
        "spec_fields": {
            cls.__name__: [f.name for f in dataclasses.fields(cls)]
            for cls in (
                LSHSpec,
                EngineSpec,
                TrainSpec,
                ServeSpec,
                StreamSpec,
                ResilienceSpec,
            )
        },
    }


class TestPublicSurfaceSnapshot:
    def test_snapshot_file_exists(self):
        assert SNAPSHOT_PATH.exists(), (
            "missing public-surface snapshot; run "
            "tests/api/regenerate_public_surface.py"
        )

    def test_surface_matches_snapshot(self):
        snapshot = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
        surface = current_surface()
        assert surface["repro_all"] == snapshot["repro_all"], (
            "repro.__all__ changed; if intentional, regenerate "
            "tests/api/public_surface.json and review the diff"
        )
        assert surface["estimators"] == snapshot["estimators"]
        assert surface["spec_fields"] == snapshot["spec_fields"], (
            "spec field names changed; this breaks to_dict/from_dict "
            "round-trips of persisted models — regenerate the snapshot "
            "only with a format-version bump or a migration story"
        )

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
