"""Regenerate the public-API snapshot (run after an intentional change).

Usage:  PYTHONPATH=src python tests/api/regenerate_public_surface.py
"""

import json
from pathlib import Path

from test_public_surface import SNAPSHOT_PATH, current_surface


def main() -> None:
    SNAPSHOT_PATH.write_text(
        json.dumps(current_surface(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {SNAPSHOT_PATH}")


if __name__ == "__main__":
    main()
