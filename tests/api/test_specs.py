"""Unit tests for the frozen spec objects (repro.api.specs)."""

import dataclasses
import doctest
import json

import pytest

import repro.api.protocol
import repro.api.registry
import repro.api.specs
from repro.api import EngineSpec, LSHSpec, ServeSpec, TrainSpec
from repro.exceptions import ConfigurationError


class TestValidationAtConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"family": "xxhash"},
            {"bands": 0},
            {"rows": -1},
            {"bands": 2.5},
            {"width": 0.0},
            {"width": -3},
            {"seed": "seven"},
        ],
    )
    def test_lsh_spec_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            LSHSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "gpu"},
            {"n_jobs": 0},
            {"n_shards": -2},
            {"chunk_items": 0},
            {"start_method": "teleport"},
            # start_method is meaningless off the process backend
            {"backend": "serial", "start_method": "spawn"},
        ],
    )
    def test_engine_spec_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            EngineSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"init": ""},
            {"max_iter": 0},
            {"update_refs": "sometimes"},
            {"empty_cluster_policy": "shrug"},
            {"track_cost": "yes"},
            {"predict_fallback": "maybe"},
        ],
    )
    def test_train_spec_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "grpc"},
            {"n_jobs": 0},
            {"chunk_items": 0},
            {"max_batch": -1},
        ],
        ids=repr,
    )
    def test_serve_spec_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeSpec(**kwargs)

    def test_serve_spec_max_batch_alone_is_overridable(self):
        # chunk_items above max_batch just means "one span per worker";
        # a max_batch-only override (the CLI's --max-batch flag) must
        # not trip over the chunk_items default.
        assert ServeSpec().replace(max_batch=100).max_batch == 100
        assert ServeSpec.from_dict({"max_batch": 64}).max_batch == 64

    def test_valid_specs_construct(self):
        LSHSpec(family="pstable", bands=50, rows=5, width=2.0, seed=1)
        EngineSpec(backend="process", n_jobs=4, n_shards=8, start_method="spawn")
        TrainSpec(init="huang", max_iter=5, update_refs="batch")
        ServeSpec(backend="process", n_jobs=4, chunk_items=256, max_batch=1024)


class TestImmutability:
    def test_frozen(self):
        spec = LSHSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.bands = 99

    def test_replace_returns_new_validated_spec(self):
        spec = LSHSpec(bands=8)
        other = spec.replace(rows=2)
        assert other is not spec
        assert (other.bands, other.rows) == (8, 2)
        assert spec.rows == 5  # original untouched
        with pytest.raises(ConfigurationError):
            spec.replace(rows=0)

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            EngineSpec().replace(jobs=4)

    def test_value_equality_and_hash(self):
        assert LSHSpec(bands=8) == LSHSpec(bands=8)
        assert LSHSpec(bands=8) != LSHSpec(bands=9)
        assert hash(TrainSpec()) == hash(TrainSpec())


class TestDictRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            LSHSpec(family="simhash", bands=32, rows=2, seed=11),
            EngineSpec(backend="thread", n_jobs=3, n_shards=2, chunk_items=64),
            TrainSpec(init="cao", max_iter=7, update_refs="batch"),
            ServeSpec(backend="process", n_jobs=2, chunk_items=128, max_batch=256),
        ],
    )
    def test_to_dict_from_dict_identity(self, spec):
        rebuilt = type(spec).from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_round_trips_through_json(self):
        spec = EngineSpec(backend="process", n_jobs=2, start_method="spawn")
        assert EngineSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            LSHSpec.from_dict({"bandz": 8})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            TrainSpec.from_dict([("max_iter", 5)])

    def test_from_dict_validates_values(self):
        with pytest.raises(ConfigurationError):
            EngineSpec.from_dict({"backend": "quantum"})


class TestRepr:
    def test_default_spec_repr_is_bare(self):
        assert repr(LSHSpec()) == "LSHSpec()"
        assert repr(EngineSpec()) == "EngineSpec()"
        assert repr(TrainSpec()) == "TrainSpec()"
        assert repr(ServeSpec()) == "ServeSpec()"

    def test_non_default_fields_only(self):
        assert repr(LSHSpec(bands=8, rows=5)) == "LSHSpec(bands=8)"
        assert (
            repr(EngineSpec(backend="thread", n_jobs=2))
            == "EngineSpec(backend='thread', n_jobs=2)"
        )

    def test_repr_round_trips_through_eval(self):
        spec = TrainSpec(init="huang", max_iter=12)
        assert eval(repr(spec), {"TrainSpec": TrainSpec}) == spec


class TestDoctests:
    """The satellite requirement: repr behaviour is doctest-covered."""

    @pytest.mark.parametrize(
        "module",
        [repro.api.specs, repro.api.protocol, repro.api.registry],
        ids=lambda m: m.__name__,
    )
    def test_module_doctests_pass(self, module):
        result = doctest.testmod(module, raise_on_error=False, verbose=False)
        assert result.attempted > 0
        assert result.failed == 0


class TestStreamSpec:
    def test_defaults_and_repr(self):
        from repro.api import StreamSpec

        spec = StreamSpec()
        assert spec.backend == "serial"
        assert spec.n_jobs is None
        assert spec.chunk_items == 8192
        assert repr(spec) == "StreamSpec()"
        assert repr(StreamSpec(backend="thread")) == "StreamSpec(backend='thread')"

    def test_validation(self):
        from repro.api import StreamSpec
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            StreamSpec(backend="gpu")
        with pytest.raises(ConfigurationError):
            StreamSpec(n_jobs=0)
        with pytest.raises(ConfigurationError):
            StreamSpec(chunk_items=-1)

    def test_dict_round_trip(self):
        from repro.api import StreamSpec

        spec = StreamSpec(backend="process", n_jobs=3, chunk_items=64)
        assert StreamSpec.from_dict(spec.to_dict()) == spec

    def test_serve_spec_allow_extend_round_trip(self):
        from repro.api import ServeSpec

        spec = ServeSpec(backend="thread", allow_extend=True)
        assert ServeSpec.from_dict(spec.to_dict()) == spec
        assert "allow_extend=True" in repr(spec)
