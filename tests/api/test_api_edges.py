"""Edge-path coverage for the api layer (errors and rarely-hit branches).

These paths guard users against malformed configuration; each test
pins the error type and message shape so refactors cannot silently
swallow them.  They also keep the serving/API coverage gate honest —
``tests/coverage/thresholds.json`` holds both packages at ≥ 90 %.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ClusterModel,
    EngineSpec,
    LSHSpec,
    TrainSpec,
    register_estimator,
)
from repro.api.model import _values_equal
from repro.core.mh_kmodes import MHKModes
from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmodes import KModes


def _artifact(**overrides) -> ClusterModel:
    kwargs = dict(
        algorithm="mh-kmodes",
        n_clusters=2,
        centroids=np.zeros((2, 3), dtype=np.int64),
        engine=EngineSpec(),
        train=TrainSpec(),
    )
    kwargs.update(overrides)
    return ClusterModel(**kwargs)


class TestClusterModelValidation:
    def test_rejects_empty_algorithm(self):
        with pytest.raises(ConfigurationError, match="registry name"):
            _artifact(algorithm="")

    def test_rejects_non_positive_clusters(self):
        with pytest.raises(ConfigurationError, match="n_clusters"):
            _artifact(n_clusters=0)

    def test_rejects_wrong_spec_types(self):
        with pytest.raises(ConfigurationError, match="EngineSpec"):
            _artifact(engine={"backend": "serial"})
        with pytest.raises(ConfigurationError, match="TrainSpec"):
            _artifact(train={"max_iter": 3})
        with pytest.raises(ConfigurationError, match="LSHSpec"):
            _artifact(lsh="minhash")

    def test_rejects_wrong_centroid_shape(self):
        with pytest.raises(DataValidationError, match="2-D"):
            _artifact(centroids=np.zeros(3))

    def test_band_keys_and_assignments_must_pair(self):
        with pytest.raises(DataValidationError, match="together"):
            _artifact(band_keys=np.zeros((4, 2), dtype=np.uint64))
        with pytest.raises(DataValidationError, match="disagree"):
            _artifact(
                band_keys=np.zeros((4, 2), dtype=np.uint64),
                assignments=np.zeros(3, dtype=np.int64),
            )

    def test_equality_handles_absent_arrays_and_nan_cost(self):
        with_labels = _artifact(labels=np.zeros(2, dtype=np.int64))
        without = _artifact()
        assert with_labels != without
        assert with_labels == _artifact(labels=np.zeros(2, dtype=np.int64))
        nan_a = _artifact(state={"cost": float("nan")})
        nan_b = _artifact(state={"cost": float("nan")})
        assert nan_a == nan_b
        assert _artifact() != object()  # NotImplemented path

    def test_values_equal_mapping_mismatch(self):
        assert not _values_equal({"a": 1}, {"b": 1})
        assert _values_equal({"a": np.arange(3)}, {"a": np.arange(3)})

    def test_to_estimator_requires_restore_hook(self):
        @register_estimator("no-restore-test")
        class NoRestore:
            _accepts_specs = False

            def __init__(self, n_clusters):
                self.n_clusters = n_clusters

        try:
            with pytest.raises(ConfigurationError, match="reconstructed"):
                _artifact(algorithm="no-restore-test").to_estimator()
        finally:
            from repro.api import registry

            registry._REGISTRY.pop("no-restore-test", None)


class TestRegistryEdges:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_estimator("kmodes")(MHKModes)

    def test_reregistering_same_class_is_idempotent(self):
        assert register_estimator("kmodes")(KModes) is KModes


class TestLegacyEdges:
    def test_spec_and_legacy_kwarg_conflict(self):
        with pytest.raises(ConfigurationError, match="both"):
            MHKModes(n_clusters=2, lsh=LSHSpec(bands=4, rows=1), bands=8)

    def test_non_spec_value_rejected(self):
        with pytest.raises(ConfigurationError, match="LSHSpec"):
            MHKModes(n_clusters=2, lsh="minhash")

    def test_backend_instance_type_checked(self):
        with pytest.raises(ConfigurationError, match="ExecutionBackend"):
            MHKModes(n_clusters=2, backend=42)

    def test_backend_instance_n_jobs_conflict(self):
        from repro.engine import ThreadBackend

        with pytest.raises(ConfigurationError, match="n_jobs"):
            MHKModes(n_clusters=2, backend=ThreadBackend(n_jobs=2), n_jobs=4)

    def test_unknown_legacy_kwarg_rejected(self):
        with pytest.raises(TypeError):
            MHKModes(n_clusters=2, verbosity=3)


class TestProtocolEdges:
    def test_get_params_deep_flattens_specs(self):
        model = MHKModes(n_clusters=3, lsh=LSHSpec(bands=8, rows=2))
        deep = model.get_params(deep=True)
        assert deep["lsh__bands"] == 8
        assert deep["train__max_iter"] == TrainSpec().max_iter

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="invalid parameter"):
            MHKModes(n_clusters=3).set_params(bogus=1)

    def test_set_params_empty_noop(self):
        model = MHKModes(n_clusters=3)
        assert model.set_params() is model

    def test_validate_predict_x_rejects_zero_width(self):
        model = MHKModes(n_clusters=3)
        with pytest.raises(DataValidationError, match="attribute"):
            model._validate_predict_X(np.empty((0, 0), dtype=np.int64))
