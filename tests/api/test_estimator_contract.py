"""Common-API conformance suite, parametrised over every registered estimator.

Every estimator in the registry must honour the shared protocol:
``get_params`` → ``set_params`` → ``clone`` round-trips, uniform
``NotFittedError`` on pre-fit access, construction through
``make_estimator``, and — for spec-accepting estimators — the legacy
flat kwargs must produce *identical labels* to the equivalent specs
while warning exactly once per legacy kwarg.
"""

import warnings

import numpy as np
import pytest

from repro.api import (
    EngineSpec,
    LSHSpec,
    TrainSpec,
    available_estimators,
    get_estimator_class,
    make_estimator,
)
from repro.data.datgen import RuleBasedGenerator
from repro.exceptions import ConfigurationError, NotFittedError

ALL_ESTIMATORS = sorted(available_estimators())
CATEGORICAL = {"mh-kmodes", "kmodes", "fuzzy-kmodes", "streaming-mh-kmodes"}
SPEC_DRIVEN = {"mh-kmodes", "lsh-kmeans", "streaming-mh-kmodes"}

K = 6

#: Cheap non-default parameters per estimator, exercising estimator-own
#: params alongside the shared surface.
EXTRA_PARAMS = {
    "mh-kmodes": {"lsh": LSHSpec(bands=8, rows=2, seed=3)},
    "lsh-kmeans": {"lsh": LSHSpec(family="pstable", bands=8, rows=2, seed=3)},
    "streaming-mh-kmodes": {
        "lsh": LSHSpec(bands=8, rows=2, seed=3),
        "refresh_interval": 50,
    },
    "kmodes": {"seed": 3, "max_iter": 10},
    "fuzzy-kmodes": {"seed": 3, "alpha": 1.3},
    "kmeans": {"seed": 3, "max_iter": 10},
    "minibatch-kmeans": {"seed": 3, "batch_size": 64},
}


@pytest.fixture(scope="module")
def categorical_X():
    return RuleBasedGenerator(
        n_clusters=K, n_attributes=12, domain_size=300, seed=5
    ).generate(180).X


@pytest.fixture(scope="module")
def numeric_X():
    rng = np.random.default_rng(5)
    centres = rng.normal(0.0, 10.0, size=(K, 6))
    labels = rng.integers(0, K, 180)
    return centres[labels] + rng.normal(0.0, 0.4, size=(180, 6))


@pytest.fixture
def data(request, categorical_X, numeric_X):
    name = request.getfixturevalue("name")
    return categorical_X if name in CATEGORICAL else numeric_X


def build(name):
    return make_estimator(name, n_clusters=K, **EXTRA_PARAMS[name])


def fit(estimator, name, X):
    if name == "streaming-mh-kmodes":
        split = (2 * len(X)) // 3
        estimator.bootstrap(X[:split])
        estimator.extend(X[split:])
    else:
        estimator.fit(X)
    return estimator


@pytest.mark.parametrize("name", ALL_ESTIMATORS)
class TestProtocolConformance:
    def test_registered_class_exposes_protocol(self, name):
        cls = get_estimator_class(name)
        for method in ("get_params", "set_params", "clone", "_is_fitted"):
            assert callable(getattr(cls, method)), f"{name} lacks {method}"

    def test_make_estimator_matches_direct_construction(self, name):
        via_registry = build(name)
        direct = get_estimator_class(name)(n_clusters=K, **EXTRA_PARAMS[name])
        assert via_registry.get_params() == direct.get_params()

    def test_get_set_clone_round_trip(self, name):
        estimator = build(name)
        params = estimator.get_params()
        assert params["n_clusters"] == K

        clone = estimator.clone()
        assert type(clone) is type(estimator)
        assert clone is not estimator
        assert clone.get_params() == params
        assert not clone._is_fitted()

        fresh = make_estimator(name, n_clusters=K)
        fresh.set_params(**params)
        assert fresh.get_params() == params

    def test_set_params_rejects_unknown(self, name):
        with pytest.raises(ConfigurationError):
            build(name).set_params(definitely_not_a_param=1)

    def test_repr_shows_only_non_defaults(self, name):
        default = make_estimator(name, n_clusters=K)
        assert repr(default) == f"{type(default).__name__}(n_clusters={K})"
        tuned = build(name)
        assert repr(tuned).startswith(f"{type(tuned).__name__}(n_clusters={K}")

    def test_unfitted_access_raises_not_fitted(self, name, data):
        estimator = build(name)
        fitted_attrs = [
            attr
            for attr in ("labels_", "centroids_", "modes_", "stats_", "index_")
            if hasattr(type(estimator), attr)
        ]
        assert fitted_attrs, f"{name} exposes no fitted attributes"
        for attr in fitted_attrs:
            with pytest.raises(NotFittedError):
                getattr(estimator, attr)
        if hasattr(estimator, "predict"):
            with pytest.raises(NotFittedError):
                estimator.predict(data[:3])
        with pytest.raises(NotFittedError):
            estimator.fitted_model()

    def test_fitted_model_round_trip_predict_identical(self, name, data, tmp_path):
        from repro.data.io import load_cluster_model, save_model

        estimator = fit(build(name), name, data)
        artifact = estimator.fitted_model()
        loaded = load_cluster_model(save_model(artifact, tmp_path / "model"))
        assert loaded == artifact
        predictions = loaded.predict(data)
        if name == "streaming-mh-kmodes":
            # The artifact serves with the stream's current modes/index.
            reference = artifact.predict(data)
        else:
            reference = estimator.predict(data)
        assert np.array_equal(predictions, reference)

    def test_clone_is_unfitted_but_equivalent(self, name, data):
        estimator = fit(build(name), name, data)
        clone = estimator.clone()
        assert not clone._is_fitted()
        fit(clone, name, data)
        if name == "streaming-mh-kmodes":
            assert np.array_equal(clone.modes_, estimator.modes_)
        else:
            assert np.array_equal(clone.labels_, estimator.labels_)


LEGACY_EQUIVALENTS = {
    "mh-kmodes": (
        {"bands": 8, "rows": 2, "seed": 3, "max_iter": 10},
        {
            "lsh": LSHSpec(bands=8, rows=2, seed=3),
            "train": TrainSpec(max_iter=10),
        },
    ),
    "lsh-kmeans": (
        {"family": "pstable", "width": 2.0, "bands": 8, "rows": 2, "seed": 3},
        {"lsh": LSHSpec(family="pstable", width=2.0, bands=8, rows=2, seed=3)},
    ),
    "streaming-mh-kmodes": (
        {"bands": 8, "rows": 2, "seed": 3, "update_refs": "batch"},
        {
            "lsh": LSHSpec(bands=8, rows=2, seed=3),
            "train": TrainSpec(update_refs="batch"),
        },
    ),
}


@pytest.mark.parametrize("name", sorted(SPEC_DRIVEN))
class TestLegacyKwargEquivalence:
    def test_deprecation_warning_once_per_legacy_kwarg(self, name):
        legacy, _ = LEGACY_EQUIVALENTS[name]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            make_estimator(name, n_clusters=K, **legacy)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == len(legacy)
        for kwarg in legacy:
            matching = [
                w for w in deprecations if f"({kwarg}=...)" in str(w.message)
            ]
            assert len(matching) == 1, f"expected one warning for {kwarg}="

    def test_spec_construction_does_not_warn(self, name):
        _, specs = LEGACY_EQUIVALENTS[name]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_estimator(name, n_clusters=K, **specs)

    def test_identical_labels_legacy_vs_spec(self, name, data):
        legacy_kwargs, specs = LEGACY_EQUIVALENTS[name]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = make_estimator(name, n_clusters=K, **legacy_kwargs)
        via_specs = make_estimator(name, n_clusters=K, **specs)
        assert via_legacy.get_params() == via_specs.get_params()
        fit(via_legacy, name, data)
        fit(via_specs, name, data)
        if name == "streaming-mh-kmodes":
            assert np.array_equal(via_legacy.modes_, via_specs.modes_)
        else:
            assert np.array_equal(via_legacy.labels_, via_specs.labels_)

    def test_spec_plus_conflicting_legacy_kwarg_rejected(self, name):
        with pytest.raises(ConfigurationError):
            make_estimator(
                name, n_clusters=K, lsh=LSHSpec(bands=8, rows=2), bands=9
            )

    def test_unknown_kwarg_rejected(self, name):
        with pytest.raises(TypeError):
            make_estimator(name, n_clusters=K, bandz=8)

    def test_numpy_scalar_kwargs_accepted(self, name):
        # rng.integers / np.arange sweeps produce numpy scalars; both
        # construction paths accept and normalise them (the flat API did)
        base_spec = EXTRA_PARAMS[name]["lsh"]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = make_estimator(
                name,
                n_clusters=K,
                family=base_spec.family,
                bands=np.int64(8),
                rows=np.int64(2),
            )
        spec = make_estimator(
            name,
            n_clusters=K,
            lsh=base_spec.replace(bands=np.int64(8), rows=np.int64(2)),
        )
        for estimator in (legacy, spec):
            assert estimator.bands == 8 and type(estimator.bands) is int

    def test_prebuilt_backend_instance_not_deprecated(self, name):
        # sharing one worker pool across fits is a supported feature
        # with no spec equivalent (a spec cannot hold a live pool)
        from repro.engine import ThreadBackend

        backend = ThreadBackend(n_jobs=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            estimator = make_estimator(name, n_clusters=K, backend=backend)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert estimator.backend is backend
        assert estimator.engine.backend == "thread"
        assert estimator.engine.n_jobs == 2

    def test_legacy_warning_attributed_to_caller(self, name):
        # default Python filters only show DeprecationWarnings blamed on
        # the caller's file; the shim must skip the library frames
        # (direct construction here — on 3.12+ skip_file_prefixes also
        # covers deeper paths such as make_estimator)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            get_estimator_class(name)(n_clusters=K, bands=8)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations and all(
            w.filename == __file__ for w in deprecations
        ), [w.filename for w in deprecations]
