"""Unit tests for the immutable ClusterModel artifact."""

import dataclasses

import numpy as np
import pytest

from repro.api import ClusterModel, EngineSpec, LSHSpec, TrainSpec
from repro.core.mh_kmodes import MHKModes
from repro.core.streaming import StreamingMHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import load_cluster_model, load_model, save_model
from repro.exceptions import ConfigurationError, DataValidationError

K = 6


@pytest.fixture(scope="module")
def data():
    return RuleBasedGenerator(
        n_clusters=K, n_attributes=12, domain_size=300, seed=9
    ).generate(200)


@pytest.fixture(scope="module")
def novel():
    return RuleBasedGenerator(
        n_clusters=K, n_attributes=12, domain_size=300, seed=10
    ).generate(40)


@pytest.fixture(scope="module")
def fitted(data):
    return MHKModes(n_clusters=K, lsh=LSHSpec(bands=8, rows=2, seed=1)).fit(data.X)


class TestImmutability:
    def test_fields_frozen(self, fitted):
        artifact = fitted.fitted_model()
        with pytest.raises(dataclasses.FrozenInstanceError):
            artifact.n_clusters = 3

    def test_arrays_read_only_copies(self, fitted):
        artifact = fitted.fitted_model()
        for array in (artifact.centroids, artifact.labels, artifact.band_keys,
                      artifact.assignments):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 0
        # the artifact owns copies: mutating the estimator afterwards
        # cannot corrupt an already exported artifact
        assert artifact.centroids is not fitted.centroids_

    def test_mappings_read_only(self, fitted):
        artifact = fitted.fitted_model()
        with pytest.raises(TypeError):
            artifact.params["absent_code"] = 99
        with pytest.raises(TypeError):
            artifact.state["cost"] = 0.0

    def test_training_mutation_does_not_leak_into_artifact(self, data):
        model = MHKModes(n_clusters=K, lsh=LSHSpec(bands=8, rows=2, seed=1))
        model.fit(data.X)
        artifact = model.fitted_model()
        before = artifact.centroids.copy()
        model.fit(data.X[:100])  # refit mutates the estimator
        assert np.array_equal(artifact.centroids, before)


class TestValidation:
    def test_band_keys_require_assignments(self):
        with pytest.raises(DataValidationError):
            ClusterModel(
                algorithm="mh-kmodes",
                n_clusters=2,
                centroids=np.zeros((2, 3), dtype=np.int64),
                engine=EngineSpec(),
                train=TrainSpec(),
                lsh=LSHSpec(),
                band_keys=np.zeros((4, 2), dtype=np.int64),
            )

    def test_mismatched_index_lengths_rejected(self):
        with pytest.raises(DataValidationError):
            ClusterModel(
                algorithm="mh-kmodes",
                n_clusters=2,
                centroids=np.zeros((2, 3), dtype=np.int64),
                engine=EngineSpec(),
                train=TrainSpec(),
                lsh=LSHSpec(),
                band_keys=np.zeros((4, 2), dtype=np.int64),
                assignments=np.zeros(3, dtype=np.int64),
            )

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterModel(
                algorithm="mh-kmodes",
                n_clusters=2,
                centroids=np.zeros((2, 3)),
                engine={"backend": "serial"},
                train=TrainSpec(),
            )

    def test_indexless_artifact_predict_raises_not_fitted(self):
        from repro.exceptions import NotFittedError

        # band_keys/assignments are optional; an LSH estimator restored
        # without them must fail with NotFittedError, not AttributeError
        artifact = ClusterModel(
            algorithm="mh-kmodes",
            n_clusters=2,
            centroids=np.zeros((2, 3), dtype=np.int64),
            engine=EngineSpec(),
            train=TrainSpec(),
            lsh=LSHSpec(),
        )
        with pytest.raises(NotFittedError):
            artifact.predict(np.zeros((1, 3), dtype=np.int64))

    def test_unknown_algorithm_fails_at_serving(self):
        artifact = ClusterModel(
            algorithm="not-an-estimator",
            n_clusters=2,
            centroids=np.zeros((2, 3), dtype=np.int64),
            engine=EngineSpec(),
            train=TrainSpec(),
        )
        with pytest.raises(ConfigurationError):
            artifact.to_estimator()


class TestServing:
    def test_predict_without_training_estimator(self, fitted, data, novel, tmp_path):
        path = save_model(fitted.fitted_model(), tmp_path / "artifact")
        # a fresh process would start exactly here: artifact only
        artifact = load_cluster_model(path)
        assert np.array_equal(artifact.predict(novel.X), fitted.predict(novel.X))
        assert np.array_equal(artifact.predict(data.X), fitted.predict(data.X))

    def test_to_estimator_round_trip(self, fitted, novel):
        restored = fitted.fitted_model().to_estimator()
        assert isinstance(restored, MHKModes)
        assert restored.get_params() == fitted.get_params()
        assert np.array_equal(restored.labels_, fitted.labels_)
        assert np.array_equal(restored.predict(novel.X), fitted.predict(novel.X))

    def test_load_model_returns_fitted_estimator(self, fitted, novel, tmp_path):
        loaded = load_model(save_model(fitted, tmp_path / "model"))
        assert isinstance(loaded, MHKModes)
        assert np.array_equal(loaded.predict(novel.X), fitted.predict(novel.X))

    def test_save_accepts_estimator_and_artifact_identically(
        self, fitted, tmp_path
    ):
        from_estimator = load_cluster_model(
            save_model(fitted, tmp_path / "via_estimator")
        )
        from_artifact = load_cluster_model(
            save_model(fitted.fitted_model(), tmp_path / "via_artifact")
        )
        assert from_estimator == from_artifact

    def test_artifact_save_load_methods(self, fitted, novel, tmp_path):
        artifact = fitted.fitted_model()
        loaded = ClusterModel.load(artifact.save(tmp_path / "artifact"))
        assert loaded == artifact
        assert np.array_equal(loaded.predict(novel.X), artifact.predict(novel.X))

    def test_specs_survive_round_trip(self, fitted, tmp_path):
        artifact = load_cluster_model(save_model(fitted, tmp_path / "m"))
        assert artifact.lsh == LSHSpec(bands=8, rows=2, seed=1)
        assert artifact.engine == EngineSpec()
        assert artifact.train == TrainSpec()
        assert artifact.algorithm == "mh-kmodes"


class TestStreamingArtifact:
    def test_stream_exports_serving_artifact(self, data, novel, tmp_path):
        stream = StreamingMHKModes(
            n_clusters=K, lsh=LSHSpec(bands=8, rows=2, seed=1)
        )
        stream.bootstrap(data.X[:120])
        stream.extend(data.X[120:])
        artifact = stream.fitted_model()
        # streamed arrivals are in the exported index
        assert artifact.n_items == len(data.X)
        assert int(artifact.state["n_seen"]) == len(data.X)
        loaded = load_cluster_model(save_model(artifact, tmp_path / "stream"))
        predictions = loaded.predict(novel.X)
        assert predictions.shape == (len(novel.X),)
        assert np.array_equal(predictions, artifact.predict(novel.X))
        # serving uses the stream's current modes
        assert np.array_equal(loaded.centroids, stream.modes_)
