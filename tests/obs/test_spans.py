"""Spans: nesting, registry counters, traced(), PhaseSpans accumulation."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import (
    MetricsRegistry,
    PhaseSpans,
    capture_metrics,
    current_span,
    span,
    traced,
)


class TestSpan:
    def test_measures_wall_time(self):
        registry = MetricsRegistry()
        with span("test.sleep", registry=registry) as active:
            pass
        assert active.wall_s >= 0.0
        assert active.elapsed_s == active.wall_s

    def test_records_counter_pair(self):
        registry = MetricsRegistry()
        with span("test.phase", registry=registry):
            pass
        with span("test.phase", registry=registry):
            pass
        assert registry.value(
            "repro_span_calls_total", {"span": "test.phase"}
        ) == 2.0
        seconds = registry.value(
            "repro_span_seconds_total", {"span": "test.phase"}
        )
        assert seconds is not None and seconds >= 0.0

    def test_nesting_tracks_parent_depth_children(self):
        registry = MetricsRegistry()
        assert current_span() is None
        with span("outer", registry=registry) as outer:
            assert current_span() is outer
            assert outer.depth == 0 and outer.parent is None
            with span("inner", registry=registry) as inner:
                assert current_span() is inner
                assert inner.depth == 1 and inner.parent is outer
            assert current_span() is outer
        assert current_span() is None
        assert outer.children == [inner]
        assert inner.children == []

    def test_exception_still_records_and_unwinds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with span("test.boom", registry=registry):
                raise ValueError("boom")
        assert current_span() is None
        assert registry.value(
            "repro_span_calls_total", {"span": "test.boom"}
        ) == 1.0

    def test_default_registry_resolved_at_exit(self):
        # A span opened outside capture_metrics but closed inside it must
        # land in the captured registry — this is what lets benchmarks
        # and pool workers scope span counters to one block.
        with capture_metrics() as captured:
            with span("test.captured"):
                pass
        assert captured.value(
            "repro_span_calls_total", {"span": "test.captured"}
        ) == 1.0


@traced("test.kernel")
def _kernel(static, dynamic, task):
    return task * 2


class TestTraced:
    def test_wraps_and_records(self):
        with capture_metrics() as captured:
            assert _kernel(None, None, 21) == 42
        assert captured.value(
            "repro_span_calls_total", {"span": "test.kernel"}
        ) == 1.0
        assert _kernel.__name__ == "_kernel"

    def test_decorated_kernel_stays_picklable(self):
        # Process backends pickle kernels by module-level name.
        assert pickle.loads(pickle.dumps(_kernel)) is _kernel


class TestPhaseSpans:
    def test_totals_keyed_by_bare_name_spans_by_prefixed(self):
        registry = MetricsRegistry()
        phases = PhaseSpans("fit", registry=registry)
        with phases.span("signatures"):
            pass
        assert set(phases.totals) == {"signatures"}
        assert registry.value(
            "repro_span_calls_total", {"span": "fit.signatures"}
        ) == 1.0

    def test_repeated_phases_accumulate(self):
        phases = PhaseSpans("extend", registry=MetricsRegistry())
        for _ in range(3):
            with phases.span("walk"):
                pass
        calls = phases._registry.value(
            "repro_span_calls_total", {"span": "extend.walk"}
        )
        assert calls == 3.0
        assert phases.totals["walk"] >= 0.0

    def test_preseeded_totals_keep_key_set_and_order(self):
        totals = dict.fromkeys(("signatures", "shortlist", "walk"), 0.0)
        phases = PhaseSpans("extend", totals=totals, registry=MetricsRegistry())
        with phases.span("walk"):
            pass
        assert list(totals) == ["signatures", "shortlist", "walk"]
        assert totals["signatures"] == 0.0

    def test_on_phase_callback_sees_each_interval(self):
        seen = []
        phases = PhaseSpans(
            "x",
            registry=MetricsRegistry(),
            on_phase=lambda name, seconds: seen.append((name, seconds)),
        )
        with phases.span("a"):
            pass
        with phases.span("a"):
            pass
        assert [name for name, _ in seen] == ["a", "a"]
        assert sum(seconds for _, seconds in seen) == pytest.approx(
            phases.totals["a"]
        )
