"""format_phase_timings: the one CLI phase pretty-printer."""

from __future__ import annotations

from repro.obs import format_phase_timings


def test_formats_each_phase_to_millisecond_precision():
    assert (
        format_phase_timings({"signatures": 0.0041239, "walk": 1.5})
        == "signatures=0.004s walk=1.500s"
    )


def test_preserves_insertion_order():
    phases = {"b": 1.0, "a": 2.0}
    assert format_phase_timings(phases) == "b=1.000s a=2.000s"


def test_empty_is_empty_string():
    assert format_phase_timings({}) == ""
