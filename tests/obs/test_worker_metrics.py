"""Worker metrics attribution: pool snapshots merge back to the caller.

Process-pool workers record spans into their own process-local default
registry; :meth:`BackendSession.run_metered` captures one delta per
kernel call and ships it home, where :class:`PersistentPool` merges it
into the configured target.  Serial and thread kernels share the
caller's process, so they reach the caller's default registry directly
and ship no snapshots.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    PersistentPool,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.obs import MetricsRegistry, capture_metrics, metrics, traced

CALLS = {"span": "test.pool_kernel"}


@traced("test.pool_kernel")
def _metered_kernel(static, dynamic, task):
    return task * 2


class TestProcessAttribution:
    def test_snapshots_merge_into_explicit_registry(self):
        registry = MetricsRegistry()
        backend = ProcessBackend(n_jobs=2)
        with PersistentPool(backend, metrics=registry) as pool:
            assert pool.run(_metered_kernel, [1, 2, 3]) == [2, 4, 6]
        assert registry.value("repro_span_calls_total", CALLS) == 3.0
        assert registry.value("repro_span_seconds_total", CALLS) >= 0.0

    def test_metrics_true_targets_default_registry_at_dispatch(self):
        backend = ProcessBackend(n_jobs=2)
        with PersistentPool(backend, metrics=True) as pool:
            # The target resolves per dispatch, so a capture around the
            # run scoops up the worker deltas even though the pool was
            # built before the capture began.
            with capture_metrics() as captured:
                pool.run(_metered_kernel, [1, 2])
        assert captured.value("repro_span_calls_total", CALLS) == 2.0
        assert metrics().get("repro_span_calls_total") is None or (
            captured is not metrics()
        )

    def test_metrics_none_skips_attribution(self):
        backend = ProcessBackend(n_jobs=2)
        with PersistentPool(backend) as pool:
            with capture_metrics() as captured:
                assert pool.run(_metered_kernel, [1, 2]) == [2, 4]
        # Workers still spent the time, but nothing was shipped home.
        assert captured.get("repro_span_calls_total") is None

    def test_deltas_accumulate_across_dispatches(self):
        registry = MetricsRegistry()
        backend = ProcessBackend(n_jobs=1)
        with PersistentPool(backend, metrics=registry) as pool:
            pool.run(_metered_kernel, [1])
            pool.run(_metered_kernel, [2, 3])
        assert registry.value("repro_span_calls_total", CALLS) == 3.0


class TestInProcessAttribution:
    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadBackend(n_jobs=2)],
        ids=["serial", "thread"],
    )
    def test_kernels_record_into_caller_default(self, backend_factory):
        with PersistentPool(backend_factory(), metrics=True) as pool:
            with capture_metrics() as captured:
                assert pool.run(_metered_kernel, [1, 2, 3]) == [2, 4, 6]
        # No snapshot transport: the kernel ran in-process and recorded
        # straight into the captured default registry, exactly once per
        # task (a merge on top would double-count).
        assert captured.value("repro_span_calls_total", CALLS) == 3.0
