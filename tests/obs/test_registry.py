"""MetricsRegistry: instrument semantics, snapshot/merge, Prometheus."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    capture_metrics,
    metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_things_total")
        with pytest.raises(ConfigurationError, match="only increase"):
            counter.inc(-1)
        assert counter.value == 0.0

    def test_same_name_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        ok = registry.counter("repro_requests_total", labels={"status": "ok"})
        err = registry.counter("repro_requests_total", labels={"status": "error"})
        ok.inc(3)
        assert err.value == 0.0
        assert registry.value("repro_requests_total", {"status": "ok"}) == 3.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", labels={"a": "1", "b": "2"})
        b = registry.counter("repro_x_total", labels={"b": "2", "a": "1"})
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_in_flight")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0


class TestHistogram:
    def test_observe_buckets_by_upper_bound_inclusive(self):
        histogram = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.0, 1.5, 3.0, 99.0):
            histogram.observe(value)
        # le-style: value <= bound lands in that bucket; 99 overflows to +Inf.
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(105.0)

    def test_buckets_must_be_strictly_increasing(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            registry.histogram("repro_bad", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            registry.histogram("repro_empty", buckets=())

    def test_quantile_interpolates_within_bucket(self):
        histogram = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(1.0, 2.0)
        )
        for _ in range(10):
            histogram.observe(1.5)  # all mass in the (1, 2] bucket
        # Median rank sits halfway through that bucket's span.
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.quantile(0.0) == pytest.approx(1.0)
        assert histogram.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_empty_is_zero_and_overflow_clamps(self):
        histogram = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(1.0, 2.0)
        )
        assert histogram.quantile(0.95) == 0.0
        histogram.observe(50.0)  # beyond the last finite bound
        assert histogram.quantile(0.99) == pytest.approx(2.0)

    def test_quantile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("repro_latency_seconds")
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            histogram.quantile(1.5)

    def test_quantile_first_bucket_spans_from_zero(self):
        # A coarse positive first bound interpolates over [0, bound] —
        # the true span for non-negative observations — not a point.
        histogram = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(4.0, 8.0)
        )
        for _ in range(4):
            histogram.observe(1.0)
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_non_positive_first_bound_never_overshoots(self):
        # Regression: with a non-positive first bound, interpolating
        # from 0.0 reported values *above* the bucket's upper bound.
        histogram = MetricsRegistry().histogram(
            "repro_delta", buckets=(-1.0, 1.0)
        )
        for _ in range(10):
            histogram.observe(-5.0)  # all mass at or below -1.0
        assert histogram.quantile(0.5) == pytest.approx(-1.0)
        assert histogram.quantile(0.95) <= -1.0

    def test_quantile_rank_exactly_on_bucket_boundary(self):
        histogram = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0):
            histogram.observe(value)
        # rank 3 lands exactly on the (1, 2] bucket's cumulative edge.
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        # rank exactly exhausting a bucket returns its upper bound.
        assert histogram.quantile(2 / 6) == pytest.approx(1.0)

    def test_quantile_all_mass_in_inf_tail_clamps(self):
        histogram = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(1.0, 2.0)
        )
        for _ in range(3):
            histogram.observe(100.0)
        assert histogram.quantile(0.0) == pytest.approx(2.0)
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(1.0) == pytest.approx(2.0)


class TestRegistrySemantics:
    def test_factories_are_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_a_total") is registry.counter("repro_a_total")
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("repro_a_total")

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.histogram("repro_h", buckets=(1.0, 3.0))

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="metric names"):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError, match="label names"):
            registry.counter("repro_ok_total", labels={"bad-key": "x"})

    def test_get_and_value_missing_is_none(self):
        registry = MetricsRegistry()
        assert registry.get("repro_missing") is None
        assert registry.value("repro_missing") is None

    def test_value_reads_histogram_count(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        assert registry.value("repro_h") == 1.0


class TestSnapshotMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_req_total", labels={"op": "predict"}).inc(7)
        registry.gauge("repro_in_flight").set(2)
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_snapshot_is_json_safe(self):
        snapshot = self._populated().snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped == snapshot
        assert {c["name"] for c in snapshot["counters"]} == {"repro_req_total"}
        (hist,) = snapshot["histograms"]
        assert hist["buckets"] == [0.1, 1.0]
        assert hist["bucket_counts"] == [1, 1, 0]
        assert hist["sum"] == pytest.approx(0.55)

    def test_merge_into_empty_reconstructs_source(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_adds_counters_and_histograms_overwrites_gauges(self):
        source = self._populated()
        target = self._populated()
        target.gauge("repro_in_flight").set(9)
        target.merge(source.snapshot())
        assert target.value("repro_req_total", {"op": "predict"}) == 14.0
        assert target.value("repro_in_flight") == 2.0  # overwritten, not 11
        hist = target.get("repro_lat_seconds")
        assert hist.count == 4
        assert hist.sum == pytest.approx(1.1)

    def test_merge_twice_doubles_counters(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        assert target.value("repro_req_total", {"op": "predict"}) == 14.0


class TestPrometheus:
    def test_counter_and_gauge_rendering(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_req_total", help="Total requests.", labels={"op": "predict"}
        ).inc(3)
        registry.gauge("repro_in_flight").set(1.5)
        text = registry.to_prometheus()
        assert "# HELP repro_req_total Total requests." in text
        assert "# TYPE repro_req_total counter" in text
        assert 'repro_req_total{op="predict"} 3' in text
        assert "# TYPE repro_in_flight gauge" in text
        assert "repro_in_flight 1.5" in text
        assert text.endswith("\n")

    def test_histogram_rendering_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 9.0):
            hist.observe(value)
        text = registry.to_prometheus()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 3' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_lat_seconds_count 4" in text
        assert "repro_lat_seconds_sum 10.05" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels={"path": 'a"b\nc'}).inc()
        text = registry.to_prometheus()
        assert 'path="a\\"b\\nc"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestDefaultRegistry:
    def test_metrics_returns_stable_singleton(self):
        assert metrics() is metrics()

    def test_capture_metrics_swaps_and_restores(self):
        before = metrics()
        with capture_metrics() as captured:
            assert metrics() is captured
            assert captured is not before
            metrics().counter("repro_inside_total").inc()
        assert metrics() is before
        assert before.get("repro_inside_total") is None
        assert captured.value("repro_inside_total") == 1.0


def test_default_buckets_are_valid():
    MetricsRegistry().histogram("repro_a", buckets=DEFAULT_LATENCY_BUCKETS_S)
    MetricsRegistry().histogram("repro_b", buckets=DEFAULT_SIZE_BUCKETS)
