"""Structured JSON event logging: opt-in, one object per line."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    MetricsRegistry,
    disable_tracing,
    emit_event,
    enable_tracing,
    span,
    tracing_enabled,
)


@pytest.fixture
def sink():
    stream = io.StringIO()
    enable_tracing(stream)
    yield stream
    disable_tracing()


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestToggle:
    def test_off_by_default_and_emit_is_noop(self):
        assert not tracing_enabled()
        emit_event("ignored", x=1)  # must not raise with no sink

    def test_enable_disable(self, sink):
        assert tracing_enabled()
        disable_tracing()
        assert not tracing_enabled()
        emit_event("dropped")
        assert sink.getvalue() == ""


class TestEmit:
    def test_one_json_object_per_line(self, sink):
        emit_event("alpha", value=1)
        emit_event("beta", value=2)
        events = _lines(sink)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert all("ts" in e for e in events)
        assert events[0]["value"] == 1

    def test_exotic_values_fall_back_to_str(self, sink):
        emit_event("weird", payload={1, 2}.__class__)  # a type object
        (event,) = _lines(sink)
        assert isinstance(event["payload"], str)


class TestSpanEvents:
    def test_span_emits_when_enabled(self, sink):
        with span("test.traced_span", registry=MetricsRegistry(), rows=5):
            pass
        (event,) = _lines(sink)
        assert event["event"] == "span"
        assert event["name"] == "test.traced_span"
        assert event["depth"] == 0
        assert event["error"] is None
        assert event["rows"] == 5
        assert event["wall_s"] >= 0.0

    def test_span_records_error_type(self, sink):
        with pytest.raises(RuntimeError):
            with span("test.failing", registry=MetricsRegistry()):
                raise RuntimeError("nope")
        (event,) = _lines(sink)
        assert event["error"] == "RuntimeError"

    def test_span_silent_when_disabled(self):
        stream = io.StringIO()
        enable_tracing(stream)
        disable_tracing()
        with span("test.silent", registry=MetricsRegistry()):
            pass
        assert stream.getvalue() == ""
