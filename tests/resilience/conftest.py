"""Shared fixtures for the resilience/chaos suite."""

from __future__ import annotations

import pytest

from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.resilience import active_faults, clear_faults


@pytest.fixture(autouse=True)
def _no_fault_plan_leaks():
    """Every test starts and ends with no fault plan armed.

    A leaked plan would silently wrap every later pool dispatch in the
    process — fail loudly instead.
    """
    assert active_faults() is None, "a previous test leaked a fault plan"
    yield
    leaked = active_faults() is not None
    clear_faults()
    assert not leaked, "this test leaked a fault plan"


@pytest.fixture(scope="module")
def served_artifact():
    """A small fitted artifact plus its training matrix.

    Module-scoped: chaos tests build many short-lived servers over the
    same model, and the fit is the expensive part.
    """
    data = RuleBasedGenerator(
        n_clusters=6, n_attributes=8, domain_size=60, seed=11
    ).generate(240)
    estimator = MHKModes(
        n_clusters=6, lsh={"bands": 6, "rows": 2, "seed": 3}
    ).fit(data.X)
    return estimator.fitted_model(), data.X
