"""AdmissionQueue: coalescing, backpressure, deadlines, shutdown."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ServerClosedError,
)
from repro.obs import MetricsRegistry
from repro.resilience import AdmissionQueue


def _first_column(X: np.ndarray) -> np.ndarray:
    """Toy 'predict': each row's label is its first cell — per-row, so
    any concatenate/split scheme that preserves rows returns exactly
    the submitter's own column back."""
    return X[:, 0].copy()


class _GatedExecute:
    """An execute hook the test can hold closed, then release.

    Holding the gate keeps one wave in flight, which is how the tests
    deterministically build up queue depth behind it.
    """

    def __init__(self, fail_after_first: type[BaseException] | None = None):
        self.release = threading.Event()
        self.entered = threading.Event()
        self.calls: list[np.ndarray] = []
        self._fail_after_first = fail_after_first

    def __call__(self, X: np.ndarray) -> np.ndarray:
        self.calls.append(np.array(X, copy=True))
        self.entered.set()
        assert self.release.wait(timeout=10), "test never released the gate"
        if self._fail_after_first is not None and len(self.calls) == 2:
            raise self._fail_after_first("wave failed")
        return _first_column(X)


def _matrix(fill: int, rows: int = 2) -> np.ndarray:
    return np.full((rows, 3), fill, dtype=np.int64)


def _submit_in_thread(queue, X):
    """Run ``queue.submit`` in a thread; returns (thread, outcome box)."""
    box: dict = {}

    def run():
        try:
            box["labels"] = queue.submit(X)
        except BaseException as exc:  # noqa: BLE001 - outcome under test
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


def _wait_for_depth(queue, depth: int, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while queue.depth < depth:
        assert time.monotonic() < deadline, (
            f"queue never reached depth {depth} (at {queue.depth})"
        )
        time.sleep(0.002)


class TestHappyPath:
    def test_single_request_round_trips(self):
        queue = AdmissionQueue(
            _first_column, max_queue_depth=4, max_in_flight=1, max_wave_rows=64
        )
        try:
            labels = queue.submit(_matrix(7))
            assert labels.tolist() == [7, 7]
        finally:
            queue.close()

    def test_concurrent_requests_coalesce_into_one_wave(self):
        execute = _GatedExecute()
        queue = AdmissionQueue(
            execute, max_queue_depth=16, max_in_flight=1, max_wave_rows=64
        )
        try:
            # Wave 1 (a single request) holds the lone dispatcher...
            blocker_thread, blocker = _submit_in_thread(queue, _matrix(99))
            assert execute.entered.wait(5)
            # ...while three more requests pile up behind it.
            waiters = [_submit_in_thread(queue, _matrix(fill)) for fill in (1, 2, 3)]
            _wait_for_depth(queue, 3)
            execute.release.set()
            blocker_thread.join(timeout=10)
            for thread, _ in waiters:
                thread.join(timeout=10)
            # All three coalesced into a single second wave...
            assert len(execute.calls) == 2
            assert execute.calls[1].shape == (6, 3)
            # ...and the split handed each submitter its own rows back.
            assert blocker["labels"].tolist() == [99, 99]
            for (_, box), fill in zip(waiters, (1, 2, 3)):
                assert box["labels"].tolist() == [fill, fill]
        finally:
            execute.release.set()
            queue.close()

    def test_wave_rows_cap_limits_coalescing(self):
        execute = _GatedExecute()
        queue = AdmissionQueue(
            execute, max_queue_depth=16, max_in_flight=1, max_wave_rows=4
        )
        try:
            blocker_thread, _ = _submit_in_thread(queue, _matrix(9))
            assert execute.entered.wait(5)
            waiters = [_submit_in_thread(queue, _matrix(fill)) for fill in (1, 2, 3)]
            _wait_for_depth(queue, 3)
            execute.release.set()
            blocker_thread.join(timeout=10)
            for thread, _ in waiters:
                thread.join(timeout=10)
            # 3 × 2-row requests under a 4-row cap → two waves, not one.
            assert len(execute.calls) == 3
            assert max(call.shape[0] for call in execute.calls[1:]) <= 4
        finally:
            execute.release.set()
            queue.close()


class TestBackpressure:
    def test_full_queue_rejects_immediately_with_retry_hint(self):
        execute = _GatedExecute()
        queue = AdmissionQueue(
            execute, max_queue_depth=2, max_in_flight=1, max_wave_rows=64
        )
        try:
            blocker_thread, _ = _submit_in_thread(queue, _matrix(9))
            assert execute.entered.wait(5)
            waiters = [_submit_in_thread(queue, _matrix(fill)) for fill in (1, 2)]
            _wait_for_depth(queue, 2)
            started = time.monotonic()
            with pytest.raises(OverloadedError) as excinfo:
                queue.submit(_matrix(3))
            assert time.monotonic() - started < 1.0  # reject, don't hang
            assert 0.05 <= excinfo.value.retry_after_s <= 30.0
            execute.release.set()
            blocker_thread.join(timeout=10)
            for thread, box in waiters:
                thread.join(timeout=10)
                assert "labels" in box
        finally:
            execute.release.set()
            queue.close()

    def test_retry_after_estimate_is_clamped(self):
        queue = AdmissionQueue(
            _first_column, max_queue_depth=1, max_in_flight=1, max_wave_rows=8
        )
        try:
            assert 0.05 <= queue.retry_after_s() <= 30.0
        finally:
            queue.close()

    def test_retry_after_decays_toward_seed_once_drained(self):
        # Regression: the wave-latency EWMA only moves when waves
        # complete, so after a slow burst the hint used to stay pinned
        # at the congested estimate no matter how long the server sat
        # idle.  With the injectable clock we fake a burst of 20s waves,
        # then let simulated idle time pass and assert the hint shrinks
        # back toward the 0.1s seed.
        now = {"t": 0.0}

        def execute(X):
            now["t"] += 20.0  # every wave "takes" 20 simulated seconds
            return _first_column(X)

        queue = AdmissionQueue(
            execute,
            max_queue_depth=4,
            max_in_flight=1,
            max_wave_rows=8,
            clock=lambda: now["t"],
        )
        try:
            for _ in range(5):
                queue.submit(_matrix(1))
            deadline = time.monotonic() + 5.0
            while queue._busy:  # let the last dispatcher wave retire
                assert time.monotonic() < deadline
                time.sleep(0.002)
            congested = queue.retry_after_s()
            assert congested > 1.0  # the burst pushed the hint up
            hints = []
            for _ in range(4):
                now["t"] += 30.0
                hints.append(queue.retry_after_s())
            previous = congested
            for hint in hints:
                assert hint < previous  # monotone shrink while idle
                previous = hint
            assert hints[-1] == pytest.approx(0.1, abs=0.02)
        finally:
            queue.close()


class TestDeadlines:
    def test_deadline_expires_while_wave_is_stuck(self):
        execute = _GatedExecute()
        queue = AdmissionQueue(
            execute, max_queue_depth=8, max_in_flight=1, max_wave_rows=64
        )
        try:
            blocker_thread, blocker = _submit_in_thread(queue, _matrix(9))
            assert execute.entered.wait(5)
            with pytest.raises(DeadlineExceededError):
                queue.submit(_matrix(1), deadline_s=0.05)
            execute.release.set()
            blocker_thread.join(timeout=10)
            assert blocker["labels"].tolist() == [9, 9]
            # The expired request was abandoned: the dispatcher answers
            # it without ever running a wave for it.
            time.sleep(0.05)
            assert len(execute.calls) == 1
        finally:
            execute.release.set()
            queue.close()

    def test_configured_deadline_applies_without_an_override(self):
        execute = _GatedExecute()
        queue = AdmissionQueue(
            execute,
            max_queue_depth=8,
            max_in_flight=1,
            max_wave_rows=64,
            deadline_ms=50,
        )
        try:
            blocker_thread, _ = _submit_in_thread(queue, _matrix(9))
            assert execute.entered.wait(5)
            with pytest.raises(DeadlineExceededError, match="50ms"):
                queue.submit(_matrix(1))
            execute.release.set()
            blocker_thread.join(timeout=10)
        finally:
            execute.release.set()
            queue.close()


class TestFailureFanOut:
    def test_wave_error_reaches_every_member(self):
        execute = _GatedExecute(fail_after_first=RuntimeError)
        queue = AdmissionQueue(
            execute, max_queue_depth=8, max_in_flight=1, max_wave_rows=64
        )
        try:
            blocker_thread, blocker = _submit_in_thread(queue, _matrix(9))
            assert execute.entered.wait(5)
            waiters = [_submit_in_thread(queue, _matrix(fill)) for fill in (1, 2)]
            _wait_for_depth(queue, 2)
            execute.release.set()
            blocker_thread.join(timeout=10)
            assert blocker["labels"].tolist() == [9, 9]  # wave 1 was fine
            for thread, box in waiters:
                thread.join(timeout=10)
                assert isinstance(box["error"], RuntimeError)
            # A failed wave does not poison the queue.
            assert queue.submit(_matrix(5)).tolist() == [5, 5]
        finally:
            execute.release.set()
            queue.close()


class TestShutdown:
    def test_closed_queue_refuses_new_work(self):
        queue = AdmissionQueue(
            _first_column, max_queue_depth=4, max_in_flight=1, max_wave_rows=8
        )
        queue.close()
        assert queue.closed
        with pytest.raises(ServerClosedError, match="shutting down"):
            queue.submit(_matrix(1))

    def test_drain_answers_whatever_is_queued(self):
        execute = _GatedExecute()
        queue = AdmissionQueue(
            execute, max_queue_depth=8, max_in_flight=1, max_wave_rows=64
        )
        blocker_thread, blocker = _submit_in_thread(queue, _matrix(9))
        assert execute.entered.wait(5)
        waiter_thread, waiter = _submit_in_thread(queue, _matrix(4))
        _wait_for_depth(queue, 1)
        execute.release.set()
        queue.close(drain=True, timeout=10)
        blocker_thread.join(timeout=10)
        waiter_thread.join(timeout=10)
        assert blocker["labels"].tolist() == [9, 9]
        assert waiter["labels"].tolist() == [4, 4]

    def test_no_drain_rejects_queued_requests(self):
        execute = _GatedExecute()
        queue = AdmissionQueue(
            execute, max_queue_depth=8, max_in_flight=1, max_wave_rows=64
        )
        blocker_thread, blocker = _submit_in_thread(queue, _matrix(9))
        assert execute.entered.wait(5)
        waiter_thread, waiter = _submit_in_thread(queue, _matrix(4))
        _wait_for_depth(queue, 1)
        closer = threading.Thread(
            target=lambda: queue.close(drain=False), daemon=True
        )
        closer.start()
        # The queued request is rejected even while a wave is stuck.
        waiter_thread.join(timeout=10)
        assert isinstance(waiter["error"], ServerClosedError)
        execute.release.set()
        blocker_thread.join(timeout=10)
        closer.join(timeout=10)
        # The in-flight wave still completed for its submitter.
        assert blocker["labels"].tolist() == [9, 9]

    def test_close_is_idempotent(self):
        queue = AdmissionQueue(
            _first_column, max_queue_depth=4, max_in_flight=2, max_wave_rows=8
        )
        queue.close()
        queue.close()
        assert queue.closed


class TestMetrics:
    def test_instruments_registered_eagerly_and_recorded(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(
            _first_column,
            max_queue_depth=1,
            max_in_flight=1,
            max_wave_rows=8,
            registry=registry,
        )
        try:
            # Eager registration: every family scrapes at zero before
            # any traffic.
            for reason in ("queue_full", "deadline", "closed"):
                counter = registry.counter(
                    "repro_queue_rejections_total", labels={"reason": reason}
                )
                assert counter.value == 0.0
            queue.submit(_matrix(3))
            assert registry.counter("repro_waves_total").value == 1.0
        finally:
            queue.close()
        with pytest.raises(ServerClosedError):
            queue.submit(_matrix(1))
        assert (
            registry.counter(
                "repro_queue_rejections_total", labels={"reason": "closed"}
            ).value
            == 1.0
        )
