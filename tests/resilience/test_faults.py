"""Fault injection: plans, the armed state, and the kernel wrapper."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.resilience import (
    FaultPlan,
    InjectedPoolFault,
    active_faults,
    clear_faults,
    faulted_kernel,
    inject_faults,
    install_faults,
)


class TestFaultPlan:
    def test_defaults_are_a_no_op_plan(self):
        plan = FaultPlan()
        assert plan.kill_on_chunks == ()
        assert plan.drop_on_chunks == ()
        assert plan.delay_s == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_on_chunks": [2]},        # list, not tuple
            {"kill_on_chunks": (0,)},       # chunks are 1-based
            {"drop_on_chunks": (-3,)},
            {"drop_on_chunks": ("2",)},
            {"delay_s": -0.5},
        ],
    )
    def test_bad_plans_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_injected_fault_is_not_a_repro_error(self):
        # The pool must treat it like infrastructure failure, which the
        # serving error paths never catch as a caller mistake.
        assert not issubclass(InjectedPoolFault, ReproError)


class TestInstallClear:
    def test_install_arms_and_clear_disarms(self):
        assert active_faults() is None
        state = install_faults(FaultPlan(delay_s=0.0))
        assert active_faults() is state
        clear_faults()
        assert active_faults() is None

    def test_plans_do_not_nest(self):
        install_faults(FaultPlan())
        try:
            with pytest.raises(ConfigurationError, match="already installed"):
                install_faults(FaultPlan())
        finally:
            clear_faults()

    def test_clear_is_idempotent(self):
        clear_faults()
        clear_faults()
        assert active_faults() is None

    def test_context_manager_disarms_on_error(self):
        with pytest.raises(RuntimeError, match="test body failed"):
            with inject_faults(FaultPlan()):
                raise RuntimeError("test body failed")
        assert active_faults() is None


def _record(static, dynamic, task):
    return (static, dynamic, task)


class TestFaultState:
    def test_counter_counts_every_kernel_call(self):
        with inject_faults(FaultPlan()) as state:
            assert state.chunks_seen == 0
            for expected in (1, 2, 3):
                state.on_chunk()
                assert state.chunks_seen == expected

    def test_drop_fires_on_exactly_the_scheduled_chunks(self):
        with inject_faults(FaultPlan(drop_on_chunks=(2, 4))) as state:
            state.on_chunk()  # chunk 1: clean
            with pytest.raises(InjectedPoolFault, match="chunk 2"):
                state.on_chunk()
            state.on_chunk()  # chunk 3: clean again
            with pytest.raises(InjectedPoolFault, match="chunk 4"):
                state.on_chunk()
            assert state.chunks_seen == 4


class TestFaultedKernel:
    def test_passes_through_to_the_real_kernel(self):
        with inject_faults(FaultPlan()) as state:
            result = faulted_kernel("S", "D", (_record, "task-1"))
        assert result == ("S", "D", "task-1")
        assert state.chunks_seen == 1

    def test_armed_drop_raises_instead_of_calling_through(self):
        with inject_faults(FaultPlan(drop_on_chunks=(1,))):
            with pytest.raises(InjectedPoolFault):
                faulted_kernel(None, None, (_record, "never-runs"))

    def test_without_a_plan_it_is_a_plain_dispatch(self):
        assert active_faults() is None
        assert faulted_kernel("S", None, (_record, 7)) == ("S", None, 7)
