"""Graceful shutdown: ``repro serve`` under SIGTERM, as a subprocess."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.api import ResilienceSpec, ServeSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import save_model

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


@pytest.fixture(scope="module")
def saved_model(tmp_path_factory):
    data = RuleBasedGenerator(
        n_clusters=5, n_attributes=8, domain_size=60, seed=13
    ).generate(200)
    estimator = MHKModes(
        n_clusters=5, lsh={"bands": 6, "rows": 2, "seed": 1}
    ).fit(data.X)
    artifact = estimator.fitted_model()
    path = save_model(
        artifact,
        tmp_path_factory.mktemp("model") / "served",
        serve=ServeSpec(
            backend="thread",
            n_jobs=2,
            resilience=ResilienceSpec(deadline_ms=2000),
        ),
    )
    return path, artifact, data.X


class TestHTTPShutdown:
    def test_sigterm_drains_and_exits_cleanly(self, saved_model):
        path, artifact, X = saved_model
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(path), "--http", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_serve_env(),
        )
        try:
            ready = process.stdout.readline()
            assert "http://127.0.0.1:" in ready, ready
            port = int(ready.rsplit(":", 1)[1])
            base = f"http://127.0.0.1:{port}"
            deadline = time.monotonic() + 30
            while True:
                try:
                    health = json.load(urllib.request.urlopen(f"{base}/health"))
                    break
                except OSError:  # pragma: no cover - startup race
                    assert time.monotonic() < deadline, "server never came up"
                    time.sleep(0.1)
            assert health["serving"]["resilience"]["deadline_ms"] == 2000

            # One real request proves the stack is live pre-shutdown.
            body = json.dumps({"items": X[:5].tolist()}).encode("utf-8")
            response = json.load(
                urllib.request.urlopen(
                    urllib.request.Request(f"{base}/predict", data=body)
                )
            )
            assert response["labels"] == artifact.predict(X[:5]).tolist()

            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait(timeout=10)
        stderr = process.stderr.read()
        assert returncode == 0, stderr
        assert "shutting down: draining in-flight requests" in stderr


class TestNDJSONShutdown:
    def test_sigterm_mid_stream_exits_cleanly(self, saved_model):
        path, artifact, X = saved_model
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(path)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_serve_env(),
        )
        try:
            process.stdin.write(
                json.dumps({"items": X[:3].tolist(), "id": 0}) + "\n"
            )
            process.stdin.flush()
            answer = json.loads(process.stdout.readline())
            assert answer["labels"] == artifact.predict(X[:3]).tolist()

            # Leave stdin open: the server is mid-stream, blocked on the
            # next line, exactly where SIGTERM has to interrupt it.
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait(timeout=10)
        stderr = process.stderr.read()
        assert returncode == 0, stderr
        assert "shutting down: draining in-flight requests" in stderr


class TestInProcessDrain:
    def test_close_drains_queued_requests_before_teardown(self, saved_model):
        import threading

        from repro.serve import ModelServer

        _, artifact, X = saved_model
        spec = ServeSpec(
            backend="thread",
            n_jobs=2,
            resilience=ResilienceSpec(max_in_flight=1),
        )
        server = ModelServer(artifact, spec)
        boxes = []

        def submit():
            box = {}
            boxes.append(box)
            try:
                box["labels"] = server.predict(X[:4])
            except BaseException as exc:  # noqa: BLE001
                box["error"] = exc

        threads = [
            threading.Thread(target=submit, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        server.close(drain=True, timeout=30)
        for thread in threads:
            thread.join(timeout=30)
        expected = artifact.predict(X[:4]).tolist()
        for box in boxes:
            # Every request admitted before close was answered; none
            # hung, and anything the close raced out got the structured
            # shutdown error rather than silence.
            if "labels" in box:
                assert box["labels"].tolist() == expected
            else:
                from repro.exceptions import ServerClosedError

                assert isinstance(box["error"], ServerClosedError)
        with pytest.raises(Exception, match="closed|shutting down"):
            server.predict(X[:4])
