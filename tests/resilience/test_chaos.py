"""Chaos suite: injected worker faults against the real serving stack.

The load-bearing assertion everywhere: a fault schedule may slow a
request down or turn it into a *structured* error, but it may never
change a label.  Kill faults (real ``SIGKILL`` mid-chunk) only run on
the process backend; drop faults simulate the same lost-result failure
on serial/thread backends, which is what lets the hypothesis sweep run
whole schedules in milliseconds.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

# The autouse no-leak fixture is idempotent across hypothesis examples
# (each example arms and disarms its own plan), so the function-scoped
# fixture health check does not apply.
_CHAOS_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)

from repro.api import ResilienceSpec, ServeSpec
from repro.engine import PersistentPool, SerialBackend, ThreadBackend
from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    PoolBrokenError,
)
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, RetryPolicy, inject_faults
from repro.serve import ModelServer, error_descriptor

#: A retry policy chaos tests share: real retries, negligible sleeps.
FAST_RETRIES = RetryPolicy(
    max_retries=2, backoff_ms=1.0, backoff_max_ms=2.0, jitter=0.0
)


def _double(static, dynamic, task):
    return task * 2


class TestKillMidBatch:
    """The acceptance criterion: SIGKILL a worker mid-batch, recover."""

    def test_predict_recovers_bit_identical_with_one_restart(
        self, served_artifact
    ):
        model, X = served_artifact
        expected = model.predict(X[:120])
        spec = ServeSpec(
            backend="process",
            n_jobs=2,
            chunk_items=16,
            max_batch=512,
            resilience=ResilienceSpec(
                seed=0, backoff_ms=1.0, backoff_max_ms=2.0, jitter=0.0
            ),
        )
        # Arm before the server exists: fork workers inherit the plan
        # (and its shared chunk counter) at pool-creation time.
        with inject_faults(FaultPlan(kill_on_chunks=(2,))) as state:
            with ModelServer(model, spec) as server:
                labels = server.predict(X[:120])
                assert np.array_equal(labels, expected)
                assert server._pool.restarts == 1
                assert (
                    server.metrics.counter("repro_pool_restarts_total").value
                    == 1.0
                )
                # The killed attempt plus the clean retry both counted.
                assert state.chunks_seen > 2
                # Recovery is durable, not one-shot.
                again = server.predict(X[120:180])
                assert np.array_equal(again, model.predict(X[120:180]))
                assert server._pool.restarts == 1


class TestDeadlines:
    def test_deadline_expiry_does_not_poison_the_pool(self, served_artifact):
        model, X = served_artifact
        spec = ServeSpec(
            backend="thread",
            n_jobs=2,
            resilience=ResilienceSpec(deadline_ms=100),
        )
        with ModelServer(model, spec) as server:
            with inject_faults(FaultPlan(delay_s=0.5)):
                with pytest.raises(DeadlineExceededError):
                    server.predict(X[:8])
            # The abandoned wave still occupies the pool's worker
            # threads until its injected sleeps finish; wait it out so
            # the recovery request is measured on a quiet pool.
            deadline = time.monotonic() + 10
            while server._queue._busy:
                assert time.monotonic() < deadline, "stale wave never drained"
                time.sleep(0.01)
            # The slow wave was discarded; a fresh request gets a
            # fresh, fast wave.
            labels = server.predict(X[:8])
            assert np.array_equal(labels, model.predict(X[:8]))
            rejections = server.metrics.counter(
                "repro_queue_rejections_total", labels={"reason": "deadline"}
            )
            assert rejections.value == 1.0


class TestOverload:
    def test_full_queue_rejects_structured_and_immediate(self, served_artifact):
        model, X = served_artifact
        spec = ServeSpec(
            backend="thread",
            n_jobs=2,
            resilience=ResilienceSpec(max_queue_depth=1, max_in_flight=1),
        )
        with ModelServer(model, spec) as server:
            with inject_faults(FaultPlan(delay_s=0.3)):
                boxes = []

                def submit():
                    box = {}
                    boxes.append(box)
                    try:
                        box["labels"] = server.predict(X[:4])
                    except BaseException as exc:  # noqa: BLE001
                        box["error"] = exc

                threads = [
                    threading.Thread(target=submit, daemon=True)
                    for _ in range(2)
                ]
                threads[0].start()  # goes in flight
                deadline = time.monotonic() + 5
                while server._queue._busy == 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.002)
                threads[1].start()  # fills the one queue slot
                deadline = time.monotonic() + 5
                while server._queue.depth < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.002)
                started = time.monotonic()
                with pytest.raises(OverloadedError) as excinfo:
                    server.predict(X[:4])
                assert time.monotonic() - started < 1.0
                status, error = error_descriptor(excinfo.value)
                assert status == 429
                assert error["code"] == "overloaded"
                assert error["retry_after_s"] >= 0.05
                for thread in threads:
                    thread.join(timeout=30)
                # Queued requests still answered correctly (the delay
                # fault slows chunks; it never corrupts them).
                expected = model.predict(X[:4])
                for box in boxes:
                    assert np.array_equal(box["labels"], expected)
            counter = server.metrics.counter(
                "repro_queue_rejections_total", labels={"reason": "queue_full"}
            )
            assert counter.value == 1.0


class TestDegrade:
    def test_exhausted_retries_degrade_to_serial_and_still_answer(
        self, served_artifact
    ):
        model, X = served_artifact
        spec = ServeSpec(
            backend="thread",
            n_jobs=2,
            resilience=ResilienceSpec(
                max_retries=1, backoff_ms=0.0, backoff_max_ms=0.0, jitter=0.0
            ),
        )
        # Drop every chunk the pool dispatches: both attempts fail, the
        # serial fallback (which the plan does not wrap) answers.
        with ModelServer(model, spec) as server:
            with inject_faults(FaultPlan(drop_on_chunks=tuple(range(1, 64)))):
                labels = server.predict(X[:24])
            assert np.array_equal(labels, model.predict(X[:24]))
            assert (
                server.metrics.counter("repro_degraded_requests_total").value
                == 1.0
            )
            assert server._pool.restarts == 1  # one respawn before giving up

    def test_degrade_error_surfaces_as_pool_broken(self, served_artifact):
        model, X = served_artifact
        spec = ServeSpec(
            backend="thread",
            n_jobs=2,
            resilience=ResilienceSpec(
                max_retries=1,
                backoff_ms=0.0,
                backoff_max_ms=0.0,
                jitter=0.0,
                degrade="error",
            ),
        )
        with ModelServer(model, spec) as server:
            with inject_faults(FaultPlan(drop_on_chunks=tuple(range(1, 64)))):
                with pytest.raises(PoolBrokenError) as excinfo:
                    server.predict(X[:24])
            status, error = error_descriptor(excinfo.value)
            assert status == 500
            assert error["code"] == "pool_broken"
            # The broken dispatch did not wedge the server: with the
            # plan cleared, the respawned pool serves normally.
            labels = server.predict(X[:24])
            assert np.array_equal(labels, model.predict(X[:24]))


class TestFaultScheduleProperty:
    """Any drop schedule → correct answer or structured error, never both
    wrong and silent."""

    @settings(max_examples=30, **_CHAOS_SETTINGS)
    @given(
        drops=st.sets(st.integers(min_value=1, max_value=12), max_size=4),
        degrade=st.sampled_from(["serial", "error"]),
    )
    def test_pool_never_returns_a_wrong_answer(self, drops, degrade):
        plan = FaultPlan(drop_on_chunks=tuple(sorted(drops)))
        policy = RetryPolicy(
            max_retries=2, backoff_ms=0.0, backoff_max_ms=0.0, jitter=0.0
        )
        registry = MetricsRegistry()
        with inject_faults(plan):
            with PersistentPool(
                SerialBackend(),
                metrics=registry,
                retry_policy=policy,
                degrade=degrade,
            ) as pool:
                try:
                    result = pool.run(_double, [1, 2, 3])
                except PoolBrokenError as exc:
                    assert degrade == "error"
                    status, error = error_descriptor(exc)
                    assert status == 500 and error["code"] == "pool_broken"
                else:
                    # Serial degrade guarantees an answer; either way a
                    # returned answer must be the right one.
                    assert result == [2, 4, 6]

    @settings(max_examples=10, **_CHAOS_SETTINGS)
    @given(drops=st.sets(st.integers(min_value=1, max_value=8), max_size=2))
    def test_thread_pool_agrees_with_serial_under_faults(self, drops):
        plan = FaultPlan(drop_on_chunks=tuple(sorted(drops)))
        policy = RetryPolicy(
            max_retries=3, backoff_ms=0.0, backoff_max_ms=0.0, jitter=0.0
        )
        with inject_faults(plan):
            with PersistentPool(
                ThreadBackend(n_jobs=2), retry_policy=policy
            ) as pool:
                assert pool.run(_double, [5, 6]) == [10, 12]
