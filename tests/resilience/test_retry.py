"""RetryPolicy: the capped-backoff value object and its retry loop."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience import RetryPolicy, compute_backoff_s, retry_call


class TestComputeBackoff:
    def test_doubles_from_base_and_saturates_at_cap(self):
        delays = [compute_backoff_s(a, 50, 1000) for a in range(1, 7)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 1.0]

    def test_cap_below_base_is_the_cap_everywhere(self):
        # The policy constructor rejects this shape; the raw helper
        # just clamps, which is what the clamp-after-jitter rule needs.
        assert compute_backoff_s(1, 500, 100) == pytest.approx(0.1)

    def test_attempts_are_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            compute_backoff_s(0, 50, 1000)


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.backoff_ms == 50.0

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_retries": -1}, "max_retries"),
            ({"max_retries": 1.5}, "max_retries"),
            ({"backoff_ms": -1.0}, "backoff_ms"),
            ({"backoff_max_ms": -1.0}, "backoff_max_ms"),
            ({"backoff_ms": 500.0, "backoff_max_ms": 100.0}, "cannot undercut"),
            ({"jitter": 1.5}, "jitter"),
            ({"jitter": -0.1}, "jitter"),
        ],
    )
    def test_bad_fields_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            RetryPolicy(**kwargs)

    def test_seed_does_not_affect_equality(self):
        assert RetryPolicy(seed=1) == RetryPolicy(seed=2)


class TestSchedule:
    def test_zero_jitter_replays_the_exact_doubling(self):
        policy = RetryPolicy(backoff_ms=50, backoff_max_ms=1000, jitter=0.0)
        schedule = policy.schedule()
        assert [next(schedule) for _ in range(6)] == [
            0.05, 0.1, 0.2, 0.4, 0.8, 1.0,
        ]

    def test_seeded_schedules_are_reproducible(self):
        policy = RetryPolicy(jitter=0.5, seed=123)
        first = [next(policy.schedule()) for _ in range(1)]
        a = policy.schedule()
        b = policy.schedule()
        draws_a = [next(a) for _ in range(8)]
        draws_b = [next(b) for _ in range(8)]
        assert draws_a == draws_b
        assert first[0] == draws_a[0]

    def test_jittered_delays_never_exceed_the_cap(self):
        policy = RetryPolicy(
            backoff_ms=900, backoff_max_ms=1000, jitter=1.0, seed=7
        )
        schedule = policy.schedule()
        for _ in range(32):
            assert next(schedule) <= 1.0


class TestRetryCall:
    def test_first_try_success_never_sleeps(self):
        sleeps = []
        result = retry_call(
            lambda: "ok",
            RetryPolicy(jitter=0.0),
            retry_on=(RuntimeError,),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert sleeps == []

    def test_retries_then_succeeds_with_backoff_and_callback(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError(f"boom {attempts['n']}")
            return attempts["n"]

        sleeps, observed = [], []
        result = retry_call(
            flaky,
            RetryPolicy(max_retries=4, backoff_ms=50, jitter=0.0),
            retry_on=(RuntimeError,),
            on_retry=lambda a, e, d: observed.append((a, str(e), d)),
            sleep=sleeps.append,
        )
        assert result == 3
        assert sleeps == [0.05, 0.1]
        assert observed == [(1, "boom 1", 0.05), (2, "boom 2", 0.1)]

    def test_exhaustion_reraises_the_last_error(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise RuntimeError(f"fail {calls['n']}")

        with pytest.raises(RuntimeError, match="fail 3"):
            retry_call(
                always_fails,
                RetryPolicy(max_retries=2, jitter=0.0),
                retry_on=(RuntimeError,),
                sleep=lambda _s: None,
            )
        assert calls["n"] == 3  # first attempt + 2 retries

    def test_unmatched_exceptions_propagate_immediately(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise ValueError("not retryable")

        with pytest.raises(ValueError, match="not retryable"):
            retry_call(
                wrong_kind,
                RetryPolicy(max_retries=5, jitter=0.0),
                retry_on=(RuntimeError,),
                sleep=lambda _s: None,
            )
        assert calls["n"] == 1

    def test_zero_retries_means_one_attempt(self):
        with pytest.raises(RuntimeError):
            retry_call(
                lambda: (_ for _ in ()).throw(RuntimeError("once")),
                RetryPolicy(max_retries=0),
                retry_on=(RuntimeError,),
                sleep=lambda _s: None,
            )
