"""ModelServer unit behaviour: construction, serving, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ServeSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import load_serve_spec, save_model
from repro.engine import live_pool_count
from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmodes import KModes
from repro.serve import ModelServer


@pytest.fixture(scope="module")
def fitted():
    data = RuleBasedGenerator(
        n_clusters=8, n_attributes=12, domain_size=200, seed=5
    ).generate(240)
    estimator = MHKModes(
        n_clusters=8, lsh={"bands": 8, "rows": 2, "seed": 0}
    ).fit(data.X)
    return estimator, data


@pytest.fixture(scope="module")
def artifact(fitted):
    estimator, _ = fitted
    return estimator.fitted_model()


class TestConstruction:
    def test_requires_a_cluster_model(self, fitted):
        estimator, _ = fitted
        with pytest.raises(ConfigurationError, match="ClusterModel"):
            ModelServer(estimator)

    def test_spec_dict_round_trip(self, artifact):
        with ModelServer(artifact, {"backend": "thread", "n_jobs": 2}) as server:
            assert server.spec == ServeSpec(backend="thread", n_jobs=2)

    def test_rejects_non_spec(self, artifact):
        with pytest.raises(ConfigurationError, match="ServeSpec"):
            ModelServer(artifact, spec="thread")

    def test_index_is_frozen_for_serving(self, artifact):
        with ModelServer(artifact) as server:
            index = server._estimator.index_
            assert index.read_only
            with pytest.raises(ConfigurationError, match="frozen"):
                index.set_assignments(np.zeros(index.n_items, dtype=np.int64))

    def test_from_path_picks_up_persisted_serve_spec(self, artifact, tmp_path):
        saved = save_model(
            artifact, tmp_path / "model", serve=ServeSpec(backend="thread", n_jobs=2)
        )
        assert load_serve_spec(saved) == ServeSpec(backend="thread", n_jobs=2)
        with ModelServer.from_path(saved) as server:
            assert server.spec.backend == "thread"

    def test_from_path_defaults_without_persisted_spec(self, artifact, tmp_path):
        saved = save_model(artifact, tmp_path / "bare")
        assert load_serve_spec(saved) is None
        with ModelServer.from_path(saved) as server:
            assert server.spec == ServeSpec()

    def test_from_path_explicit_spec_wins(self, artifact, tmp_path):
        saved = save_model(
            artifact, tmp_path / "model", serve=ServeSpec(backend="thread")
        )
        with ModelServer.from_path(saved, spec=ServeSpec()) as server:
            assert server.spec == ServeSpec()


class TestServing:
    def test_labels_match_cluster_model_predict(self, artifact, fitted):
        _, data = fitted
        reference = artifact.predict(data.X)
        with ModelServer(artifact) as server:
            assert np.array_equal(server.predict(data.X), reference)

    def test_max_batch_is_enforced(self, artifact, fitted):
        _, data = fitted
        with ModelServer(artifact, ServeSpec(chunk_items=8, max_batch=16)) as server:
            with pytest.raises(DataValidationError, match="max_batch"):
                server.predict(data.X)
            # the rejected request did not disturb the server
            assert np.array_equal(
                server.predict(data.X[:16]), artifact.predict(data.X[:16])
            )
            assert server.requests_served_ == 1

    def test_counters_accumulate(self, artifact, fitted):
        _, data = fitted
        with ModelServer(artifact) as server:
            server.predict(data.X[:10])
            server.predict(data.X[:7])
            server.predict(np.empty((0, data.X.shape[1]), dtype=np.int64))
            assert server.requests_served_ == 3
            assert server.items_served_ == 17

    def test_distance_serving_matches_assignment(self, artifact, fitted):
        estimator, data = fitted
        with ModelServer(artifact) as server:
            labels, distances = server.predict_with_distance(data.X[:40])
        assert np.array_equal(labels, artifact.predict(data.X[:40]))
        expected = np.count_nonzero(
            data.X[:40] != np.asarray(artifact.centroids)[labels], axis=1
        )
        assert np.array_equal(distances, expected.astype(np.float64))

    def test_distance_serving_empty_batch(self, artifact):
        with ModelServer(artifact) as server:
            labels, distances = server.predict_with_distance(
                np.empty((0, server.model.n_attributes), dtype=np.int64)
            )
        assert labels.shape == (0,)
        assert distances.shape == (0,)

    def test_distance_serving_requires_block_kernel(self, fitted):
        _, data = fitted
        baseline = KModes(n_clusters=4, seed=0).fit(data.X).fitted_model()
        with ModelServer(baseline) as server:
            # the exhaustive baseline still serves plain labels …
            assert np.array_equal(
                server.predict(data.X[:5]), baseline.predict(data.X[:5])
            )
            # … but has no vectorised distance kernel
            with pytest.raises(ConfigurationError, match="_block_distances"):
                server.predict_with_distance(data.X[:5])

    def test_repr_mentions_backend(self, artifact):
        with ModelServer(artifact, ServeSpec(backend="thread")) as server:
            assert "thread" in repr(server)


class TestLifecycle:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_no_pool_leak_after_close(self, artifact, fitted, backend):
        _, data = fitted
        baseline = live_pool_count()
        spec = ServeSpec(backend=backend, n_jobs=2, chunk_items=64, max_batch=512)
        with ModelServer(artifact, spec) as server:
            server.predict(data.X)
            if backend != "serial":
                assert live_pool_count() == baseline + 1
        assert live_pool_count() == baseline

    def test_one_worker_session_per_server(self, artifact, fitted):
        _, data = fitted
        with ModelServer(artifact, ServeSpec(backend="thread", n_jobs=2)) as server:
            for _ in range(4):
                server.predict(data.X[:32])
            assert server._backend.sessions_opened == 1

    def test_closed_server_rejects_requests(self, artifact, fitted):
        _, data = fitted
        server = ModelServer(artifact)
        server.close()
        server.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            server.predict(data.X[:2])
