"""Concurrency stress: many caller threads, one ModelServer.

The serving contract under concurrency:

* N threads firing interleaved batches at one server each get exactly
  the labels their own batch deserves — no cross-request interleaving,
  on every backend (the process backend serialises its shared request
  buffer behind a lock; threads and serial dispatch concurrently
  against the frozen index);
* a request that fails (validation error, kernel exception) leaves the
  pool usable for the next request;
* ``close()`` tears the pool down exactly once — the module-level
  pool counter returns to its baseline, and the backend records a
  single session for the server's whole lifetime.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import ServeSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.engine import live_pool_count
from repro.exceptions import DataValidationError
from repro.serve import ModelServer

N_THREADS = 8
BATCHES_PER_THREAD = 6


def _explode(static, dynamic, task):
    """Module-level kernel (process pools must pickle it) that fails."""
    raise RuntimeError("worker blew up")


@pytest.fixture(scope="module")
def workload():
    data = RuleBasedGenerator(
        n_clusters=10, n_attributes=14, domain_size=300, seed=9
    ).generate(400)
    estimator = MHKModes(
        n_clusters=10, lsh={"bands": 8, "rows": 2, "seed": 1}
    ).fit(data.X)
    artifact = estimator.fitted_model()
    reference = artifact.predict(data.X)
    return artifact, data.X, reference


def _hammer(server, X, reference, rng_seed: int) -> list[str]:
    """One caller thread: distinct random batches, checked against the
    single-threaded reference.  Returns a list of mismatch messages."""
    rng = np.random.default_rng(rng_seed)
    errors = []
    for _ in range(BATCHES_PER_THREAD):
        size = int(rng.integers(1, 64))
        rows = rng.choice(len(X), size=size, replace=False)
        got = server.predict(X[rows])
        if not np.array_equal(got, reference[rows]):
            errors.append(f"thread seed {rng_seed}: batch of {size} mismatched")
        # interleave empty batches too — a legal, zero-label request
        empty = server.predict(np.empty((0, X.shape[1]), dtype=np.int64))
        if empty.shape != (0,):
            errors.append(f"thread seed {rng_seed}: empty batch answered {empty!r}")
    return errors


class TestConcurrentBatches:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_hammering_threads_get_their_own_results(self, workload, backend):
        artifact, X, reference = workload
        baseline_pools = live_pool_count()
        spec = ServeSpec(backend=backend, n_jobs=2, chunk_items=16, max_batch=256)
        with ModelServer(artifact, spec) as server:
            with ThreadPoolExecutor(max_workers=N_THREADS) as callers:
                futures = [
                    callers.submit(_hammer, server, X, reference, seed)
                    for seed in range(N_THREADS)
                ]
                errors = [err for future in futures for err in future.result()]
            assert errors == []
            # every batch (incl. the empty ones) was accounted exactly once
            assert server.requests_served_ == N_THREADS * BATCHES_PER_THREAD * 2
            # serial serving runs in-process (no pool); parallel backends
            # open exactly one worker session for the server's lifetime
            assert server._backend.sessions_opened == (
                0 if backend == "serial" else 1
            )
        assert live_pool_count() == baseline_pools


class TestFailureIsolation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_survives_failing_requests_between_good_ones(
        self, workload, backend
    ):
        artifact, X, reference = workload
        spec = ServeSpec(backend=backend, n_jobs=2, chunk_items=32, max_batch=128)
        with ModelServer(artifact, spec) as server:
            for round_ in range(3):
                with pytest.raises(DataValidationError):
                    server.predict(X[:2].astype(np.float64))  # wrong dtype
                with pytest.raises(DataValidationError):
                    server.predict(X[:2, :5])  # wrong width
                with pytest.raises(DataValidationError, match="max_batch"):
                    server.predict(X[:200])  # oversized
                got = server.predict(X[:50])
                assert np.array_equal(got, reference[:50]), f"round {round_}"

    def test_worker_exception_does_not_kill_the_server(self, workload):
        # Drive a genuine *in-worker* failure through the server's own
        # pool, then verify ordinary serving continues on that pool.
        artifact, X, reference = workload
        spec = ServeSpec(backend="process", n_jobs=2, chunk_items=32, max_batch=128)
        with ModelServer(artifact, spec) as server:
            with pytest.raises(RuntimeError, match="worker blew up"):
                server._pool.run(_explode, [0, 1])
            got = server.predict(X[:64])
            assert np.array_equal(got, reference[:64])


class TestConcurrentClose:
    def test_racing_closes_release_exactly_one_pool(self, workload):
        artifact, _, _ = workload
        baseline = live_pool_count()
        server = ModelServer(artifact, ServeSpec(backend="thread", n_jobs=2))
        assert live_pool_count() == baseline + 1
        barrier = threading.Barrier(4)

        def _close():
            barrier.wait()
            server.close()

        threads = [threading.Thread(target=_close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert live_pool_count() == baseline
