"""``repro serve`` end to end: subprocess round-trips + service plumbing.

The subprocess tests are the serve-smoke contract the CI job runs: a
model is saved to disk, ``repro serve`` starts as a real subprocess,
100 requests stream through it, and every label must agree with
in-process ``ClusterModel.predict``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.api import ServeSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import save_model
from repro.exceptions import DataValidationError
from repro.serve import (
    ModelServer,
    handle_request,
    make_http_server,
    serve_ndjson,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    data = RuleBasedGenerator(
        n_clusters=8, n_attributes=10, domain_size=150, seed=21
    ).generate(300)
    estimator = MHKModes(
        n_clusters=8, lsh={"bands": 8, "rows": 2, "seed": 2}
    ).fit(data.X)
    artifact = estimator.fitted_model()
    path = save_model(
        artifact,
        tmp_path_factory.mktemp("model") / "served",
        serve=ServeSpec(chunk_items=64, max_batch=512),
    )
    return path, artifact, data.X


def _serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


class TestNDJSONSubprocess:
    def test_hundred_requests_agree_with_in_process_predict(self, served):
        path, artifact, X = served
        rng = np.random.default_rng(0)
        requests, expected = [], []
        for request_id in range(100):
            rows = rng.choice(len(X), size=int(rng.integers(1, 16)), replace=False)
            requests.append(
                json.dumps({"id": request_id, "items": X[rows].tolist()})
            )
            expected.append(artifact.predict(X[rows]).tolist())
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", str(path)],
            input="\n".join(requests) + "\n",
            capture_output=True,
            text=True,
            env=_serve_env(),
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        responses = [
            json.loads(line) for line in completed.stdout.splitlines() if line
        ]
        assert len(responses) == 100
        for request_id, response in enumerate(responses):
            assert response["id"] == request_id
            assert response["labels"] == expected[request_id], request_id
            assert response["count"] == len(expected[request_id])
        assert "served 100 request(s)" in completed.stderr

    def test_bad_lines_answer_in_band_and_stream_continues(self, served):
        path, artifact, X = served
        lines = [
            "this is not json",
            json.dumps({"no_items": True, "id": 1}),
            json.dumps({"items": X[:3].tolist(), "id": 2}),
            json.dumps([1, 2, 3]),
            json.dumps({"items": [], "id": 4}),
        ]
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", str(path)],
            input="\n".join(lines) + "\n",
            capture_output=True,
            text=True,
            env=_serve_env(),
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        responses = [json.loads(line) for line in completed.stdout.splitlines()]
        assert len(responses) == 5
        assert responses[0]["error"]["code"] == "invalid_json"
        assert responses[1]["id"] == 1
        assert responses[1]["error"]["code"] == "invalid_request"
        assert "'items' matrix" in responses[1]["error"]["message"]
        assert responses[2]["labels"] == artifact.predict(X[:3]).tolist()
        assert responses[3]["error"]["code"] == "invalid_request"
        assert "JSON object" in responses[3]["error"]["message"]
        assert responses[4] == {"id": 4, "labels": [], "count": 0}


class TestHTTPSubprocess:
    def test_http_round_trip(self, served):
        path, artifact, X = served
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(path),
                "--http", "0", "--backend", "thread", "--jobs", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_serve_env(),
        )
        try:
            ready = process.stdout.readline()
            assert "http://127.0.0.1:" in ready, ready
            port = int(ready.rsplit(":", 1)[1])
            base = f"http://127.0.0.1:{port}"
            deadline = time.monotonic() + 30
            while True:
                try:
                    health = json.load(urllib.request.urlopen(f"{base}/health"))
                    break
                except OSError:  # pragma: no cover - startup race
                    assert time.monotonic() < deadline, "server never came up"
                    time.sleep(0.1)
            assert health["status"] == "ok"

            body = json.dumps({"items": X[:20].tolist()}).encode("utf-8")
            request = urllib.request.Request(f"{base}/predict", data=body)
            response = json.load(urllib.request.urlopen(request))
            assert response["labels"] == artifact.predict(X[:20]).tolist()

            bad = urllib.request.Request(f"{base}/predict", data=b"not json")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad)
            assert excinfo.value.code == 400
        finally:
            process.terminate()
            process.wait(timeout=30)


class TestServicePlumbing:
    """In-process coverage of the request/response layer."""

    @pytest.fixture()
    def server(self, served):
        _, artifact, _ = served
        with ModelServer(artifact) as server:
            yield server

    def test_ping(self, server):
        assert handle_request(server, {"ping": True})["ok"] is True

    def test_distance_request(self, served, server):
        _, artifact, X = served
        response = handle_request(
            server, {"items": X[:4].tolist(), "distance": True}
        )
        labels, distances = server.predict_with_distance(X[:4])
        assert response["labels"] == labels.tolist()
        assert response["distances"] == distances.tolist()

    def test_non_object_request_raises(self, server):
        with pytest.raises(DataValidationError, match="JSON object"):
            handle_request(server, [1, 2])

    def test_oversized_ndjson_line_bounced_before_parsing(self, served):
        import io

        from repro.serve.service import request_byte_limit

        _, artifact, X = served
        with ModelServer(artifact, ServeSpec(max_batch=1)) as small:
            limit = request_byte_limit(small)
            huge = '{"items": [' + "9" * (limit + 10) + "]}"
            good = json.dumps({"items": X[:1].tolist(), "id": 1})
            stdout = io.StringIO()
            assert serve_ndjson(small, io.StringIO(huge + "\n" + good + "\n"), stdout) == 2
            first, second = [json.loads(l) for l in stdout.getvalue().splitlines()]
            assert first["error"]["code"] == "payload_too_large"
            assert "byte limit" in first["error"]["message"]
            assert second["labels"] == artifact.predict(X[:1]).tolist()

    def test_oversized_http_body_gets_413(self, served):
        import threading

        from repro.serve.service import request_byte_limit

        _, artifact, _ = served
        with ModelServer(artifact, ServeSpec(max_batch=1)) as small:
            httpd = make_http_server(small)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = httpd.server_address[:2]
                body = b"x" * (request_byte_limit(small) + 1)
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        urllib.request.Request(
                            f"http://{host}:{port}/predict", data=body
                        )
                    )
                assert excinfo.value.code == 413
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=10)

    def test_serve_ndjson_in_process(self, served, server):
        import io

        _, artifact, X = served
        stdin = io.StringIO(
            "\n".join(
                [
                    json.dumps({"items": X[:4].tolist(), "id": 0}),
                    "",  # blank lines are skipped, not answered
                    "garbage",
                    json.dumps({"items": X[:2].tolist(), "id": 2, "distance": True}),
                    json.dumps({"no_items": 1, "id": 3}),
                ]
            )
            + "\n"
        )
        stdout = io.StringIO()
        assert serve_ndjson(server, stdin, stdout) == 4
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert responses[0]["labels"] == artifact.predict(X[:4]).tolist()
        assert responses[1]["error"]["code"] == "invalid_json"
        assert len(responses[2]["distances"]) == 2
        assert responses[3]["id"] == 3
        assert "items" in responses[3]["error"]["message"]

    def test_http_in_process_round_trip(self, served, server):
        import threading

        _, artifact, X = served
        httpd = make_http_server(server)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            base = f"http://{host}:{port}"
            health = json.load(urllib.request.urlopen(f"{base}/health"))
            assert health["status"] == "ok"
            body = json.dumps({"items": X[:6].tolist()}).encode("utf-8")
            request = urllib.request.Request(f"{base}/predict", data=body)
            response = json.load(urllib.request.urlopen(request))
            assert response["labels"] == artifact.predict(X[:6]).tolist()
            bad = json.dumps({"items": [[1, 2]]}).encode("utf-8")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    urllib.request.Request(f"{base}/predict", data=bad)
                )
            assert excinfo.value.code == 400
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)

    def test_http_unknown_paths_404(self, served, server):
        import http.client

        httpd = make_http_server(server)
        import threading

        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            for method, request_path in (("GET", "/nope"), ("POST", "/nope")):
                connection = http.client.HTTPConnection(host, port, timeout=10)
                connection.request(method, request_path, body=b"{}")
                assert connection.getresponse().status == 404
                connection.close()
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)
