"""Serving metrics surface: registry, /metrics, /health, stats op.

The subprocess test at the bottom is the PR's acceptance contract (and
the CI serve-smoke artifact source): a real ``repro serve --http``
subprocess answers 100 predict requests, then ``GET /metrics`` must
show them in the Prometheus counters and histograms.  The scraped
snapshot is written to ``benchmarks/results/serve_metrics.json`` so CI
uploads it next to ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.api import ServeSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import save_model
from repro.exceptions import ConfigurationError, DataValidationError
from repro.serve import ModelServer, handle_request, make_http_server

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    data = RuleBasedGenerator(
        n_clusters=6, n_attributes=10, domain_size=120, seed=11
    ).generate(240)
    estimator = MHKModes(
        n_clusters=6, lsh={"bands": 8, "rows": 2, "seed": 3}
    ).fit(data.X)
    artifact = estimator.fitted_model()
    path = save_model(
        artifact,
        tmp_path_factory.mktemp("model") / "metered",
        serve=ServeSpec(chunk_items=64, max_batch=512),
    )
    return path, artifact, data.X


class TestRequestInstrumentation:
    def test_counters_and_histograms_after_requests(self, served):
        _, artifact, X = served
        with ModelServer(artifact) as server:
            for _ in range(3):
                server.predict(X[:10])
            registry = server.metrics
            assert registry.value(
                "repro_requests_total", {"op": "predict", "status": "ok"}
            ) == 3.0
            assert registry.value(
                "repro_requests_total", {"op": "predict", "status": "error"}
            ) == 0.0
            latency = registry.get(
                "repro_request_latency_seconds", {"op": "predict"}
            )
            assert latency.count == 3
            rows = registry.get("repro_request_batch_rows", {"op": "predict"})
            assert rows.count == 3 and rows.sum == 30.0

    def test_error_requests_count_as_errors(self, served):
        _, artifact, _ = served
        with ModelServer(artifact) as server:
            with pytest.raises(DataValidationError):
                server.predict(np.zeros((1, 3), dtype=np.int64))  # wrong width
            registry = server.metrics
            assert registry.value(
                "repro_requests_total", {"op": "predict", "status": "error"}
            ) == 1.0
            # Failed requests record no latency sample...
            latency = registry.get(
                "repro_request_latency_seconds", {"op": "predict"}
            )
            assert latency.count == 0
            # ...and the in-flight gauge still unwinds to zero.
            assert registry.value("repro_requests_in_flight") == 0.0

    def test_instrument_schema_registered_before_first_request(self, served):
        _, artifact, _ = served
        with ModelServer(artifact) as server:
            text = server.metrics_text()
            assert 'repro_requests_total{op="predict",status="ok"} 0' in text
            assert 'repro_request_latency_seconds_count{op="predict"} 0' in text
            assert "repro_requests_in_flight 0" in text

    def test_disabled_metrics_has_no_registry(self, served):
        _, artifact, X = served
        with ModelServer(artifact, ServeSpec(emit_metrics=False)) as server:
            assert server.metrics is None
            server.predict(X[:4])  # still serves fine
            assert server.metrics_snapshot() is None
            with pytest.raises(ConfigurationError, match="disabled"):
                server.metrics_text()

    def test_two_servers_keep_separate_registries(self, served):
        _, artifact, X = served
        with ModelServer(artifact) as a, ModelServer(artifact) as b:
            a.predict(X[:4])
            assert a.metrics.value(
                "repro_requests_total", {"op": "predict", "status": "ok"}
            ) == 1.0
            assert b.metrics.value(
                "repro_requests_total", {"op": "predict", "status": "ok"}
            ) == 0.0


class TestHealthAndStats:
    def test_health_carries_model_and_serving_metadata(self, served):
        _, artifact, X = served
        with ModelServer(artifact) as server:
            health = server.health()
            assert health["status"] == "ok"
            assert health["model"]["algorithm"] == artifact.algorithm
            assert health["model"]["n_clusters"] == artifact.n_clusters
            assert health["serving"]["metrics_enabled"] is True
            assert health["latency_s"] is None  # no requests yet
            server.predict(X[:8])
            health = server.health()
            assert health["requests_served"] == 1
            assert health["items_served"] == 8
            latency = health["latency_s"]
            assert set(latency) == {"p50", "p95", "p99"}
            assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_health_without_metrics_omits_latency(self, served):
        _, artifact, _ = served
        with ModelServer(artifact, ServeSpec(emit_metrics=False)) as server:
            health = server.health()
            assert health["serving"]["metrics_enabled"] is False
            assert "latency_s" not in health

    def test_stats_op_over_ndjson_plumbing(self, served):
        _, artifact, X = served
        with ModelServer(artifact) as server:
            handle_request(server, {"items": X[:5].tolist()})
            response = handle_request(server, {"op": "stats", "id": 42})
            assert response["id"] == 42
            assert response["requests_served"] == 1
            assert response["items_served"] == 5
            names = {
                c["name"] for c in response["metrics"]["counters"]
            }
            assert "repro_requests_total" in names

    def test_unknown_op_rejected(self, served):
        _, artifact, _ = served
        with ModelServer(artifact) as server:
            with pytest.raises(DataValidationError, match="stats"):
                handle_request(server, {"op": "nonsense", "items": []})

    def test_snapshot_includes_process_span_counters(self, served):
        _, artifact, X = served
        with ModelServer(
            artifact, ServeSpec(backend="thread", n_jobs=2)
        ) as server:
            server.predict(X[:16])
            snapshot = server.metrics_snapshot()
            spans = {
                c["labels"].get("span")
                for c in snapshot["counters"]
                if c["name"] == "repro_span_calls_total"
            }
            assert "serve.predict_chunk" in spans


class TestMetricsHTTP:
    @pytest.fixture()
    def httpd(self, served):
        _, artifact, _ = served
        with ModelServer(artifact) as server:
            httpd = make_http_server(server)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            host, port = httpd.server_address[:2]
            try:
                yield server, f"http://{host}:{port}"
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=10)

    def test_get_metrics_renders_prometheus_text(self, served, httpd):
        _, artifact, X = served
        server, base = httpd
        body = json.dumps({"items": X[:7].tolist()}).encode("utf-8")
        urllib.request.urlopen(urllib.request.Request(f"{base}/predict", data=body))
        response = urllib.request.urlopen(f"{base}/metrics")
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode("utf-8")
        assert 'repro_requests_total{op="predict",status="ok"} 1' in text
        assert 'repro_request_latency_seconds_count{op="predict"} 1' in text
        assert 'repro_request_batch_rows_sum{op="predict"} 7' in text

    def test_get_metrics_404_when_disabled(self, served):
        _, artifact, _ = served
        with ModelServer(artifact, ServeSpec(emit_metrics=False)) as server:
            httpd = make_http_server(server)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = httpd.server_address[:2]
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"http://{host}:{port}/metrics")
                assert excinfo.value.code == 404
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=10)


class TestMetricsSubprocessAcceptance:
    """The PR acceptance: scrape /metrics off a real serve subprocess."""

    def test_hundred_requests_visible_in_scraped_metrics(self, served):
        path, artifact, X = served
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(path),
                "--http", "0", "--backend", "thread", "--jobs", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = process.stdout.readline()
            assert "http://127.0.0.1:" in ready, ready
            port = int(ready.rsplit(":", 1)[1])
            base = f"http://127.0.0.1:{port}"
            deadline = time.monotonic() + 30
            while True:
                try:
                    urllib.request.urlopen(f"{base}/health")
                    break
                except OSError:  # pragma: no cover - startup race
                    assert time.monotonic() < deadline, "server never came up"
                    time.sleep(0.1)

            rng = np.random.default_rng(5)
            for _ in range(100):
                rows = rng.choice(len(X), size=int(rng.integers(1, 16)), replace=False)
                body = json.dumps({"items": X[rows].tolist()}).encode("utf-8")
                urllib.request.urlopen(
                    urllib.request.Request(f"{base}/predict", data=body)
                )

            text = (
                urllib.request.urlopen(f"{base}/metrics").read().decode("utf-8")
            )
            assert 'repro_requests_total{op="predict",status="ok"} 100' in text
            assert 'repro_request_latency_seconds_count{op="predict"} 100' in text
            assert 'repro_request_batch_rows_count{op="predict"} 100' in text
            assert "repro_requests_in_flight 0" in text
            assert 'repro_span_calls_total{span="serve.predict_chunk"}' in text

            health = json.load(urllib.request.urlopen(f"{base}/health"))
            assert health["requests_served"] == 100
            assert health["latency_s"]["p50"] >= 0.0

            # Persist the scraped view for the CI artifact upload.
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / "serve_metrics.json").write_text(
                json.dumps(
                    {
                        "requests": 100,
                        "health": health,
                        "prometheus_text": text,
                    },
                    indent=2,
                )
                + "\n"
            )
        finally:
            process.terminate()
            process.wait(timeout=30)
