"""Streaming ingest through the serving layer (the serve-smoke contract).

``ServeSpec(allow_extend=True)`` turns a ModelServer into a streaming
endpoint: ``{"op": "extend"}`` requests are labelled through the same
pooled predict path and then absorbed into the (insertable, unfrozen)
index so later requests shortlist against them.  The subprocess test
is the CI serve-smoke assertion: a real ``repro serve --allow-extend``
process answers an extend round-trip over NDJSON.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import ServeSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import save_model
from repro.engine.pool import live_pool_count
from repro.exceptions import ConfigurationError, DataValidationError
from repro.serve import ModelServer, handle_request

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def streamable(tmp_path_factory):
    data = RuleBasedGenerator(
        n_clusters=8, n_attributes=10, domain_size=150, seed=33
    ).generate(360)
    estimator = MHKModes(
        n_clusters=8, lsh={"bands": 10, "rows": 2, "seed": 4}, domain_size=150
    ).fit(data.X[:300])
    artifact = estimator.fitted_model()
    path = save_model(
        artifact, tmp_path_factory.mktemp("model") / "streamed"
    )
    return path, artifact, data.X


class TestModelServerExtend:
    def test_extend_grows_index_and_feeds_later_shortlists(self, streamable):
        _, artifact, X = streamable
        spec = ServeSpec(backend="thread", n_jobs=2, allow_extend=True)
        with ModelServer(artifact, spec) as server:
            before = server._estimator._index.n_items
            labels = server.extend(X[300:340])
            assert server._estimator._index.n_items == before + 40
            assert server.items_extended_ == 40
            # the same rows, re-asked, now collide with themselves and
            # must land on the same clusters
            assert np.array_equal(server.predict(X[300:340]), labels)
        assert live_pool_count() == 0

    def test_first_extend_labels_match_read_only_predict(self, streamable):
        """Assignment-before-insert equals plain predict on the artifact."""
        _, artifact, X = streamable
        expected = artifact.predict(X[300:330])
        with ModelServer(
            artifact, ServeSpec(allow_extend=True)
        ) as server:
            assert np.array_equal(server.extend(X[300:330]), expected)

    def test_read_only_server_rejects_extend(self, streamable):
        _, artifact, X = streamable
        with ModelServer(artifact) as server:
            with pytest.raises(ConfigurationError):
                server.extend(X[:3])

    def test_spec_rejects_process_streaming(self):
        with pytest.raises(ConfigurationError):
            ServeSpec(backend="process", allow_extend=True)

    def test_extend_op_over_handle_request(self, streamable):
        _, artifact, X = streamable
        with ModelServer(
            artifact, ServeSpec(allow_extend=True)
        ) as server:
            response = handle_request(
                server, {"op": "extend", "items": X[300:310].tolist(), "id": 9}
            )
            assert response["id"] == 9
            assert response["extended"] == 10
            assert response["count"] == 10
            assert len(response["labels"]) == 10
            with pytest.raises(DataValidationError):
                handle_request(
                    server,
                    {"op": "extend", "items": X[:2].tolist(), "distance": True},
                )
            with pytest.raises(DataValidationError):
                handle_request(server, {"op": "nope", "items": X[:2].tolist()})

    def test_empty_extend_is_a_legal_noop(self, streamable):
        _, artifact, _ = streamable
        with ModelServer(
            artifact, ServeSpec(allow_extend=True)
        ) as server:
            before = server._estimator._index.n_items
            labels = server.extend(np.empty((0, 10), dtype=np.int64))
            assert labels.shape == (0,)
            assert server._estimator._index.n_items == before


class TestExtendSubprocessSmoke:
    def test_ndjson_extend_round_trip(self, streamable):
        """The CI serve-smoke assertion: extend over a real subprocess."""
        path, artifact, X = streamable
        expected_first = artifact.predict(X[300:320]).tolist()
        requests = [
            json.dumps(
                {"id": 0, "op": "extend", "items": X[300:320].tolist()}
            ),
            # the freshly streamed rows must now answer like themselves
            json.dumps({"id": 1, "items": X[300:320].tolist()}),
            json.dumps({"id": 2, "ping": True}),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", str(path), "--allow-extend"],
            input="\n".join(requests) + "\n",
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        responses = [
            json.loads(line) for line in completed.stdout.splitlines() if line
        ]
        assert len(responses) == 3
        assert responses[0]["extended"] == 20
        assert responses[0]["labels"] == expected_first
        assert responses[1]["labels"] == responses[0]["labels"]
        assert responses[2]["ok"] is True


class TestStreamingServerConstruction:
    def test_rejects_models_without_an_index(self):
        from repro.kmodes import KModes

        rng = np.random.default_rng(0)
        X = rng.integers(0, 20, (60, 6))
        artifact = KModes(n_clusters=4, seed=0).fit(X).fitted_model()
        assert artifact.band_keys is None
        with pytest.raises(ConfigurationError):
            ModelServer(artifact, ServeSpec(allow_extend=True))
