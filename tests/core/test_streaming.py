"""Unit tests for the streaming extension (repro.core.streaming)."""

import numpy as np
import pytest

from repro.core.streaming import ClusterModeTracker, StreamingMHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.metrics.purity import cluster_purity


@pytest.fixture(scope="module")
def stream_data():
    """A planted dataset split into a bootstrap batch and a stream."""
    data = RuleBasedGenerator(
        n_clusters=12, n_attributes=20, domain_size=800, seed=31
    ).generate(600)
    return data, 360  # bootstrap on the first 360, stream the rest


class TestClusterModeTracker:
    def test_counts_and_mode(self):
        tracker = ClusterModeTracker(2, 3)
        tracker.add(np.array([1, 2, 3]), 0)
        tracker.add(np.array([1, 2, 9]), 0)
        tracker.add(np.array([7, 7, 7]), 1)
        fallback = np.zeros((2, 3), dtype=np.int64)
        modes = tracker.modes(fallback)
        assert modes[0].tolist() == [1, 2, 3]  # tie on col 2 → smaller code
        assert modes[1].tolist() == [7, 7, 7]

    def test_tie_break_matches_batch_modes(self):
        from repro.kmodes.modes import compute_modes

        rng = np.random.default_rng(0)
        X = rng.integers(0, 5, (40, 6))
        labels = rng.integers(0, 3, 40)
        tracker = ClusterModeTracker.from_assignment(X, labels, 3)
        batch = compute_modes(
            X, labels, 3, previous_modes=np.zeros((3, 6), dtype=X.dtype)
        )
        incremental = tracker.modes(np.zeros((3, 6), dtype=np.int64))
        populated = np.bincount(labels, minlength=3) > 0
        assert np.array_equal(incremental[populated], batch[populated])

    def test_empty_cluster_uses_fallback(self):
        tracker = ClusterModeTracker(2, 2)
        tracker.add(np.array([5, 5]), 0)
        fallback = np.array([[0, 0], [9, 9]])
        assert tracker.modes(fallback)[1].tolist() == [9, 9]

    def test_cluster_sizes(self):
        tracker = ClusterModeTracker(3, 2)
        tracker.add(np.array([1, 1]), 2)
        tracker.add(np.array([1, 1]), 2)
        assert tracker.cluster_sizes.tolist() == [0, 0, 2]

    def test_rejects_bad_cluster(self):
        tracker = ClusterModeTracker(2, 2)
        with pytest.raises(DataValidationError):
            tracker.add(np.array([1, 1]), 5)

    def test_rejects_bad_shape_config(self):
        with pytest.raises(ConfigurationError):
            ClusterModeTracker(0, 2)


class TestStreamingMHKModes:
    def test_requires_bootstrap(self):
        stream = StreamingMHKModes(n_clusters=3, bands=4, rows=1, seed=0)
        with pytest.raises(NotFittedError):
            stream.push(np.array([1, 2, 3]))

    def test_bootstrap_then_stream(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(n_clusters=12, bands=20, rows=2, seed=0)
        stream.bootstrap(data.X[:split])
        labels = stream.extend(data.X[split:])
        assert labels.shape == (data.n_items - split,)
        assert labels.min() >= 0 and labels.max() < 12
        assert stream.n_seen_ == data.n_items

    def test_streamed_purity_close_to_bootstrap(self, stream_data):
        # Streamed items should join the right planted clusters almost
        # as reliably as bootstrap items did.
        data, split = stream_data
        stream = StreamingMHKModes(n_clusters=12, bands=20, rows=2, seed=0)
        stream.bootstrap(data.X[:split])
        streamed_labels = stream.extend(data.X[split:])
        purity = cluster_purity(streamed_labels, data.labels[split:])
        assert purity > 0.8

    def test_streamed_items_become_visible_to_queries(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(n_clusters=12, bands=20, rows=2, seed=0)
        stream.bootstrap(data.X[:split])
        first_label = stream.push(data.X[split])
        # Pushing the identical item again must find the first copy's
        # cluster through the index (self-similar collision).
        second_label = stream.push(data.X[split])
        assert second_label == first_label

    def test_mode_refresh_interval(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(
            n_clusters=12, bands=20, rows=2, seed=0, refresh_interval=10
        )
        stream.bootstrap(data.X[:split])
        before = stream.modes_.copy()
        stream.extend(data.X[split : split + 50])
        # 50 arrivals with interval 10 → several refreshes happened;
        # modes may or may not change, but the machinery must have run.
        assert stream._since_refresh < 10
        assert stream.modes_.shape == before.shape

    def test_cluster_sizes_accumulate(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(n_clusters=12, bands=20, rows=2, seed=0)
        stream.bootstrap(data.X[:split])
        stream.extend(data.X[split:])
        assert stream.cluster_sizes_.sum() == data.n_items

    def test_fallback_error_policy(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(
            n_clusters=12, bands=4, rows=5, seed=0, stream_fallback="error"
        )
        stream.bootstrap(data.X[:split])
        alien = np.full(data.n_attributes, 1, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            stream.push(alien)

    def test_fallback_full_policy_counts(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(
            n_clusters=12, bands=4, rows=5, seed=0, stream_fallback="full"
        )
        stream.bootstrap(data.X[:split])
        alien = np.full(data.n_attributes, 1, dtype=np.int64)
        label = stream.push(alien)
        assert 0 <= label < 12
        assert stream.n_fallbacks_ == 1

    def test_push_validates_shape(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(n_clusters=12, bands=8, rows=1, seed=0)
        stream.bootstrap(data.X[:split])
        with pytest.raises(DataValidationError):
            stream.push(np.array([1, 2]))

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingMHKModes(n_clusters=2, refresh_interval=0)
        with pytest.raises(ConfigurationError):
            StreamingMHKModes(n_clusters=2, stream_fallback="drop")

    def test_index_insert_requires_no_precompute(self, stream_data):
        from repro.lsh.index import ClusteredLSHIndex
        from repro.lsh.minhash import MinHasher
        from repro.lsh.tokens import TokenSets

        ts = TokenSets.from_lists([[1, 2], [3, 4]])
        sigs = MinHasher(8, seed=0).signatures(ts)
        frozen = ClusteredLSHIndex(4, 2, precompute_neighbours=True).build(
            sigs, np.array([0, 1])
        )
        with pytest.raises(ConfigurationError):
            frozen.insert(sigs[0], 0)
        insertable = ClusteredLSHIndex(4, 2, precompute_neighbours=False).build(
            sigs, np.array([0, 1])
        )
        new_id = insertable.insert(sigs[0], 7)
        assert new_id == 2
        assert 7 in insertable.candidate_clusters(0).tolist()


class TestBatchExtendPipeline:
    """Unit-level checks of the batch ingest path (the property suite in
    tests/properties/test_extend_equivalence.py pins full equivalence)."""

    def test_push_then_extend_matches_pure_push(self, stream_data):
        # a partial refresh window left by push() must carry into the
        # extend segmentation
        data, split = stream_data
        ref = StreamingMHKModes(
            n_clusters=12, bands=20, rows=2, seed=0, refresh_interval=7
        ).bootstrap(data.X[:split])
        mixed = StreamingMHKModes(
            n_clusters=12, bands=20, rows=2, seed=0, refresh_interval=7
        ).bootstrap(data.X[:split])
        ref_labels = np.array([ref.push(row) for row in data.X[split:]])
        head = [mixed.push(row) for row in data.X[split : split + 5]]
        tail = mixed.extend(data.X[split + 5 :])
        assert np.array_equal(ref_labels, np.concatenate([head, tail]))
        assert np.array_equal(ref.modes_, mixed.modes_)
        assert ref.n_fallbacks_ == mixed.n_fallbacks_

    def test_extend_records_phase_timings(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(n_clusters=12, bands=20, rows=2, seed=0)
        stream.bootstrap(data.X[:split])
        stream.extend(data.X[split:])
        stats = stream.extend_stats_
        assert set(stats) == {
            "signatures", "shortlist", "walk", "update", "refresh"
        }
        assert all(value >= 0.0 for value in stats.values())

    def test_extend_validates_input(self, stream_data):
        data, split = stream_data
        stream = StreamingMHKModes(n_clusters=12, bands=8, rows=1, seed=0)
        stream.bootstrap(data.X[:split])
        with pytest.raises(DataValidationError):
            stream.extend(data.X[split])  # 1-D
        with pytest.raises(DataValidationError):
            stream.extend(data.X[split:, :3])  # wrong width
        with pytest.raises(DataValidationError):
            stream.extend(data.X[split:].astype(float))  # non-integer

    def test_extend_error_fallback_commits_nothing_of_the_segment(
        self, stream_data
    ):
        data, split = stream_data
        stream = StreamingMHKModes(
            n_clusters=12, bands=4, rows=5, seed=0, stream_fallback="error"
        )
        stream.bootstrap(data.X[:split])
        seen_before = stream.n_seen_
        alien = np.full((3, data.n_attributes), 1, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            stream.extend(alien)
        assert stream.n_seen_ == seen_before

    def test_close_is_idempotent_and_context_managed(self, stream_data):
        from repro.api import StreamSpec
        from repro.engine.pool import live_pool_count

        data, split = stream_data
        with StreamingMHKModes(
            n_clusters=12,
            bands=8,
            rows=1,
            seed=0,
            stream=StreamSpec(backend="thread", n_jobs=2, chunk_items=16),
        ) as stream:
            stream.bootstrap(data.X[:split])
            stream.extend(data.X[split:])
            assert stream._stream_pool is not None
            stream.close()
            stream.close()
            assert stream._stream_pool is None
        assert live_pool_count() == 0

    def test_set_params_releases_the_pool(self, stream_data):
        from repro.api import StreamSpec
        from repro.engine.pool import live_pool_count

        data, split = stream_data
        stream = StreamingMHKModes(
            n_clusters=12,
            bands=8,
            rows=1,
            seed=0,
            stream=StreamSpec(backend="thread", n_jobs=2),
        )
        stream.bootstrap(data.X[:split])
        stream.extend(data.X[split:])
        assert stream._stream_pool is not None
        stream.set_params(stream=StreamSpec())
        assert live_pool_count() == 0
