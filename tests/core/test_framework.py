"""Tests for the generic framework loop via a minimal concrete subclass."""

import numpy as np
import pytest

from repro.api import LSHSpec
from repro.core.framework import BaseLSHAcceleratedClustering
from repro.exceptions import ConfigurationError
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets


class TinyMHKModes(BaseLSHAcceleratedClustering):
    """Smallest possible concrete algorithm: matching distance + modes.

    Kept deliberately independent of repro.core.mh_kmodes so framework
    bugs cannot hide behind the production subclass.
    """

    _default_lsh = LSHSpec(bands=8, rows=1)

    def __init__(self, n_clusters, bands=8, rows=1, seed=None, **kwargs):
        super().__init__(
            n_clusters, lsh=LSHSpec(bands=bands, rows=rows, seed=seed), **kwargs
        )
        self._hasher = MinHasher(bands * rows, seed=0)

    def _algorithm_name(self):
        return "tiny"

    def _validate_X(self, X):
        return np.asarray(X)

    def _initial_centroids(self, X, initial, rng):
        if initial is not None:
            return np.asarray(initial).copy()
        return X[rng.choice(len(X), self.n_clusters, replace=False)].copy()

    def _signatures(self, X):
        return self._hasher.signatures(
            TokenSets.from_categorical_matrix(X, domain_size=int(X.max()) + 1)
        )

    def _exhaustive_assign(self, X, centroids, labels):
        dists = np.count_nonzero(X[:, None, :] != centroids[None, :, :], axis=2)
        best = np.argmin(dists, axis=1)
        moves = int(np.count_nonzero(best != labels))
        return best.astype(np.int64), moves

    def _point_distances(self, X, item, centroids):
        return np.count_nonzero(centroids != X[item][None, :], axis=1)

    def _update_centroids(self, X, labels, previous, rng):
        out = previous.copy()
        for cluster in range(self.n_clusters):
            members = X[labels == cluster]
            if len(members):
                for j in range(X.shape[1]):
                    values, counts = np.unique(members[:, j], return_counts=True)
                    out[cluster, j] = values[np.argmax(counts)]
        return out

    def _compute_cost(self, X, centroids, labels):
        return float(np.count_nonzero(X != centroids[labels]))


@pytest.fixture
def X():
    rng = np.random.default_rng(0)
    protos = rng.integers(0, 40, size=(4, 10))
    X = np.repeat(protos, 15, axis=0)
    noise = rng.random(X.shape) < 0.1
    X[noise] = rng.integers(0, 40, size=noise.sum())
    return X


class TestFrameworkLoop:
    def test_fit_runs_and_converges(self, X):
        model = TinyMHKModes(n_clusters=4, bands=16, rows=1, seed=0).fit(X)
        assert model.labels_.shape == (len(X),)
        assert model.n_iter_ >= 1
        assert model.stats_.setup_s > 0.0

    def test_setup_not_counted_as_iteration(self, X):
        model = TinyMHKModes(n_clusters=4, bands=16, rows=1, seed=0).fit(X)
        assert model.stats_.n_iterations == model.n_iter_

    def test_online_refs_visible_within_pass(self, X):
        # With online updates the shortlist must reflect reassignments
        # made earlier in the same pass; we verify indirectly: the run
        # converges and the index's final refs equal the final labels.
        model = TinyMHKModes(
            n_clusters=4, bands=16, rows=1, seed=0, update_refs="online"
        ).fit(X)
        assert np.array_equal(model.index_.assignments, model.labels_)

    def test_batch_refs_synchronised_after_pass(self, X):
        model = TinyMHKModes(
            n_clusters=4, bands=16, rows=1, seed=0, update_refs="batch"
        ).fit(X)
        assert np.array_equal(model.index_.assignments, model.labels_)

    def test_shortlist_sizes_recorded(self, X):
        model = TinyMHKModes(n_clusters=4, bands=16, rows=1, seed=0).fit(X)
        sizes = model.stats_.shortlist_sizes
        assert len(sizes) == model.n_iter_
        assert all(1.0 <= s <= 4.0 for s in sizes)

    def test_stop_on_max_iter(self, X):
        model = TinyMHKModes(n_clusters=4, bands=16, rows=1, seed=0, max_iter=1).fit(X)
        assert model.n_iter_ == 1

    def test_track_cost_off(self, X):
        model = TinyMHKModes(
            n_clusters=4, bands=16, rows=1, seed=0, track_cost=False
        ).fit(X)
        assert all(np.isnan(c) for c in model.stats_.costs)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            TinyMHKModes(n_clusters=0)
        with pytest.raises(ConfigurationError):
            TinyMHKModes(n_clusters=2, max_iter=0)
        with pytest.raises(ConfigurationError):
            TinyMHKModes(n_clusters=2, update_refs="never")
        with pytest.raises(ConfigurationError):
            TinyMHKModes(n_clusters=2, predict_fallback="nope")

    def test_repr_mentions_parameters(self):
        text = repr(TinyMHKModes(n_clusters=3, bands=16, rows=1, seed=1))
        assert "n_clusters=3" in text
        assert "bands=16" in text

    def test_repr_omits_default_parameters(self):
        # bands=8 / rows=1 are TinyMHKModes defaults, so the repr shows
        # only what was actually tuned.
        text = repr(TinyMHKModes(n_clusters=3, bands=8, rows=1, seed=1))
        assert text == "TinyMHKModes(n_clusters=3, seed=1)"
