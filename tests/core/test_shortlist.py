"""Unit tests for repro.core.shortlist."""

import numpy as np
import pytest

from repro.core.shortlist import ShortlistAccumulator, apply_fallback
from repro.exceptions import ConfigurationError


class TestShortlistAccumulator:
    def test_mean(self):
        acc = ShortlistAccumulator()
        acc.add(2)
        acc.add(4)
        assert acc.mean() == 3.0

    def test_empty_mean_is_nan(self):
        assert np.isnan(ShortlistAccumulator().mean())

    def test_max_tracking(self):
        acc = ShortlistAccumulator()
        for size in (3, 9, 1):
            acc.add(size)
        assert acc.max == 9

    def test_add_many(self):
        acc = ShortlistAccumulator()
        acc.add_many(total=10, count=4, max_size=5)
        assert acc.mean() == 2.5
        assert acc.count == 4
        assert acc.max == 5

    def test_reset(self):
        acc = ShortlistAccumulator()
        acc.add(5)
        acc.reset()
        assert acc.count == 0
        assert np.isnan(acc.mean())


class TestApplyFallback:
    def test_non_empty_passthrough(self):
        shortlist = np.array([3, 1])
        out = apply_fallback(shortlist, n_clusters=10, policy="full")
        assert out is shortlist

    def test_full_fallback_returns_all_clusters(self):
        out = apply_fallback(np.empty(0, dtype=np.int64), 5, "full")
        assert out.tolist() == [0, 1, 2, 3, 4]

    def test_error_policy_raises_on_empty(self):
        with pytest.raises(ConfigurationError):
            apply_fallback(np.empty(0, dtype=np.int64), 5, "error")

    def test_error_policy_passthrough_when_non_empty(self):
        out = apply_fallback(np.array([2]), 5, "error")
        assert out.tolist() == [2]

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown fallback policy"):
            apply_fallback(np.array([1]), 5, "sideways")
