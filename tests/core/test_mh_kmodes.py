"""Unit tests for the MHKModes estimator (Algorithm 2 / §III-B)."""

import numpy as np
import pytest

from repro.core.mh_kmodes import MHKModes
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.kmodes.kmodes import KModes
from repro.metrics.purity import cluster_purity


class TestFitBasics:
    def test_recovers_planted_clusters(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=ds.n_classes, bands=20, rows=2, seed=0).fit(ds.X)
        assert cluster_purity(model.labels_, ds.labels) > 0.85

    def test_fitted_attributes(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=8, bands=10, rows=2, seed=0).fit(ds.X)
        assert model.modes_.shape == (8, ds.n_attributes)
        assert model.centroids_ is model.modes_ or np.array_equal(
            model.centroids_, model.modes_
        )
        assert model.labels_.shape == (ds.n_items,)
        assert model.index_ is not None
        assert model.stats_ is not None
        assert model.stats_.setup_s > 0.0

    def test_deterministic_given_seed(self, small_planted_dataset):
        ds = small_planted_dataset
        a = MHKModes(n_clusters=8, bands=10, rows=2, seed=3).fit(ds.X)
        b = MHKModes(n_clusters=8, bands=10, rows=2, seed=3).fit(ds.X)
        assert np.array_equal(a.labels_, b.labels_)

    def test_fit_predict(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=6, bands=10, rows=2, seed=1)
        labels = model.fit_predict(ds.X)
        assert np.array_equal(labels, model.labels_)

    def test_algorithm_name_in_stats(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=4, bands=20, rows=5, seed=0).fit(ds.X)
        assert model.stats_.algorithm == "MH-K-Modes 20b 5r"


class TestShortlistBehaviour:
    def test_shortlists_much_smaller_than_k(self, medium_planted_dataset):
        ds = medium_planted_dataset
        model = MHKModes(n_clusters=60, bands=20, rows=5, seed=0).fit(ds.X)
        sizes = model.stats_.shortlist_sizes
        assert all(size < 15 for size in sizes)

    def test_more_bands_wider_shortlists(self, medium_planted_dataset):
        # More bands → lower effective threshold → more candidates.
        ds = medium_planted_dataset
        narrow = MHKModes(n_clusters=60, bands=5, rows=5, seed=0).fit(ds.X)
        wide = MHKModes(n_clusters=60, bands=50, rows=5, seed=0).fit(ds.X)
        assert np.nanmean(wide.stats_.shortlist_sizes) >= np.nanmean(
            narrow.stats_.shortlist_sizes
        )

    def test_cost_non_increasing(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=8, bands=20, rows=2, seed=0).fit(ds.X)
        costs = model.stats_.costs
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_converges_with_zero_final_moves(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=8, bands=20, rows=2, seed=0).fit(ds.X)
        if model.converged_:
            assert model.stats_.moves_per_iteration[-1] == 0

    def test_batch_update_refs_mode(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(
            n_clusters=8, bands=20, rows=2, seed=0, update_refs="batch"
        ).fit(ds.X)
        assert cluster_purity(model.labels_, ds.labels) > 0.7

    def test_no_precompute_matches_precompute(self, small_planted_dataset):
        ds = small_planted_dataset
        init = ds.X[:8].copy()
        fast = MHKModes(
            n_clusters=8, bands=10, rows=2, seed=0, precompute_neighbours=True
        ).fit(ds.X, initial_centroids=init)
        slow = MHKModes(
            n_clusters=8, bands=10, rows=2, seed=0, precompute_neighbours=False
        ).fit(ds.X, initial_centroids=init)
        assert np.array_equal(fast.labels_, slow.labels_)


class TestFixedInitialisationProtocol:
    def test_same_init_same_hashes_same_result(self, small_planted_dataset):
        ds = small_planted_dataset
        init = ds.X[:8].copy()
        a = MHKModes(n_clusters=8, bands=10, rows=2, seed=5).fit(
            ds.X, initial_centroids=init
        )
        b = MHKModes(n_clusters=8, bands=10, rows=2, seed=5).fit(
            ds.X, initial_centroids=init
        )
        assert np.array_equal(a.labels_, b.labels_)

    def test_rejects_wrong_init_shape(self, small_planted_dataset):
        ds = small_planted_dataset
        with pytest.raises(DataValidationError):
            MHKModes(n_clusters=8, seed=0).fit(ds.X, initial_centroids=ds.X[:3])


class TestPresenceFiltering:
    def test_absent_code_changes_hashing_not_distances(self, binary_presence_dataset):
        ds = binary_presence_dataset
        model = MHKModes(
            n_clusters=8, bands=10, rows=1, seed=0, absent_code=0
        ).fit(ds.X)
        # Distances still use the full vectors: the cost must equal the
        # plain K-Modes cost for the same labels.
        from repro.kmodes.cost import clustering_cost

        assert model.cost_ == clustering_cost(ds.X, model.modes_, model.labels_)

    def test_presence_filtering_groups_by_shared_words(self, binary_presence_dataset):
        ds = binary_presence_dataset
        with_filter = MHKModes(
            n_clusters=8, bands=10, rows=1, seed=0, absent_code=0
        ).fit(ds.X)
        assert cluster_purity(with_filter.labels_, ds.labels) > 0.4

    def test_all_absent_items_cluster_together(self):
        X = np.zeros((10, 6), dtype=np.int64)
        X[:5, 0] = 1  # five items share one word; five are empty
        model = MHKModes(
            n_clusters=2, bands=4, rows=1, seed=0, absent_code=0
        ).fit(X)
        empty_labels = set(model.labels_[5:].tolist())
        assert len(empty_labels) == 1


class TestPredict:
    def test_predict_on_training_items(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=8, bands=20, rows=2, seed=0).fit(ds.X)
        predicted = model.predict(ds.X)
        agreement = np.mean(predicted == model.labels_)
        assert agreement > 0.9

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MHKModes(n_clusters=2, seed=0).predict(np.array([[1, 2]]))

    def test_predict_attribute_check(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=4, bands=10, rows=2, seed=0).fit(ds.X)
        with pytest.raises(DataValidationError):
            model.predict(ds.X[:, :-1])

    def test_predict_fallback_error_policy(self, small_planted_dataset):
        # A constant vector inside the fitted domain shares almost no
        # tokens with any training item, so with rows=5 it collides
        # with nothing and the shortlist comes back empty.
        ds = small_planted_dataset
        model = MHKModes(
            n_clusters=4, bands=4, rows=5, seed=0, predict_fallback="error"
        ).fit(ds.X)
        novel = np.full((1, ds.n_attributes), 499, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            model.predict(novel)

    def test_predict_full_fallback_for_novel_item(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(
            n_clusters=4, bands=4, rows=5, seed=0, predict_fallback="full"
        ).fit(ds.X)
        novel = np.full((1, ds.n_attributes), 499, dtype=np.int64)
        label = model.predict(novel)
        assert 0 <= label[0] < 4

    def test_predict_rejects_codes_outside_fitted_domain(self, small_planted_dataset):
        # The token encoding is frozen at fit time; unseen codes above
        # the fitted domain cannot be hashed consistently and must fail
        # loudly instead of silently mis-hashing.
        ds = small_planted_dataset
        model = MHKModes(n_clusters=4, bands=4, rows=5, seed=0).fit(ds.X)
        too_big = np.full((1, ds.n_attributes), 40_000, dtype=np.int64)
        with pytest.raises(DataValidationError):
            model.predict(too_big)


class TestValidation:
    def test_rejects_float_matrix(self):
        with pytest.raises(DataValidationError):
            MHKModes(n_clusters=2, seed=0).fit(np.array([[0.5, 1.5]]))

    def test_rejects_negative_codes(self):
        with pytest.raises(DataValidationError):
            MHKModes(n_clusters=1, seed=0).fit(np.array([[-3]]))

    def test_rejects_k_above_n(self):
        with pytest.raises(ConfigurationError):
            MHKModes(n_clusters=5, seed=0).fit(np.array([[1], [2]]))

    def test_rejects_bad_bands_rows(self):
        with pytest.raises(ConfigurationError):
            MHKModes(n_clusters=2, bands=0, rows=1)
        with pytest.raises(ConfigurationError):
            MHKModes(n_clusters=2, bands=1, rows=0)

    def test_rejects_bad_update_refs(self):
        with pytest.raises(ConfigurationError):
            MHKModes(n_clusters=2, update_refs="sometimes")

    def test_rejects_bad_fallback(self):
        with pytest.raises(ConfigurationError):
            MHKModes(n_clusters=2, predict_fallback="maybe")

    def test_rejects_bad_init(self):
        with pytest.raises(ConfigurationError):
            MHKModes(n_clusters=2, init="nope")


class TestEdgeCases:
    def test_single_cluster(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=1, bands=4, rows=2, seed=0).fit(ds.X)
        assert np.all(model.labels_ == 0)

    def test_k_equals_n(self):
        X = np.arange(12).reshape(4, 3)
        model = MHKModes(n_clusters=4, bands=8, rows=1, seed=0).fit(X)
        assert len(np.unique(model.labels_)) == 4

    def test_constant_data(self):
        X = np.tile([3, 3, 3], (15, 1))
        model = MHKModes(n_clusters=2, bands=4, rows=2, seed=0).fit(X)
        assert model.cost_ == 0

    def test_single_attribute(self):
        X = np.array([[0], [0], [0], [7], [7], [7]])
        init = np.array([[0], [7]])
        model = MHKModes(n_clusters=2, bands=8, rows=1, seed=0).fit(
            X, initial_centroids=init
        )
        truth = np.array([0, 0, 0, 1, 1, 1])
        assert cluster_purity(model.labels_, truth) == 1.0

    def test_max_iter_one(self, small_planted_dataset):
        ds = small_planted_dataset
        model = MHKModes(n_clusters=8, bands=10, rows=2, seed=0, max_iter=1).fit(ds.X)
        assert model.n_iter_ == 1

    def test_hash_seed_decoupled_from_init_seed(self, small_planted_dataset):
        # Different constructor seeds with identical explicit initial
        # modes should still produce valid (possibly different) runs;
        # the hashing stream is derived from the seed but must not
        # depend on the initialisation draw.
        ds = small_planted_dataset
        init = ds.X[:8].copy()
        a = MHKModes(n_clusters=8, bands=10, rows=2, seed=1).fit(
            ds.X, initial_centroids=init
        )
        b = MHKModes(n_clusters=8, bands=10, rows=2, seed=2).fit(
            ds.X, initial_centroids=init
        )
        for model in (a, b):
            assert cluster_purity(model.labels_, ds.labels) > 0.5
