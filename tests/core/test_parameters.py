"""Unit tests for repro.core.parameters ((b, r) selection, §III-D)."""

import pytest

from repro.core.error_bound import cluster_recall_probability
from repro.core.parameters import (
    ParameterRecommendation,
    probability_table,
    suggest_bands_rows,
)
from repro.exceptions import ConfigurationError


class TestSuggestBandsRows:
    def test_meets_recall_target(self):
        rec = suggest_bands_rows(0.3, cluster_size=10, min_recall=0.95)
        assert rec.cluster_recall >= 0.95
        assert (
            cluster_recall_probability(0.3, rec.bands, rec.rows, 10)
            == rec.cluster_recall
        )

    def test_respects_hash_budget(self):
        rec = suggest_bands_rows(0.3, cluster_size=10, max_hashes=64)
        assert rec.n_hashes <= 64

    def test_lower_similarity_needs_more_hashes(self):
        cheap = suggest_bands_rows(0.6, cluster_size=5, min_recall=0.99)
        costly = suggest_bands_rows(0.05, cluster_size=5, min_recall=0.99)
        assert costly.n_hashes >= cheap.n_hashes

    def test_larger_clusters_make_it_cheaper(self):
        small = suggest_bands_rows(0.2, cluster_size=2, min_recall=0.95)
        large = suggest_bands_rows(0.2, cluster_size=50, min_recall=0.95)
        assert large.n_hashes <= small.n_hashes

    def test_infeasible_raises(self):
        with pytest.raises(ConfigurationError, match="no \\(bands, rows\\)"):
            suggest_bands_rows(
                0.0001, cluster_size=1, min_recall=0.9999, max_hashes=4
            )

    def test_returns_recommendation_type(self):
        rec = suggest_bands_rows(0.5)
        assert isinstance(rec, ParameterRecommendation)
        assert rec.n_hashes == rec.bands * rec.rows
        assert 0.0 < rec.threshold <= 1.0

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            suggest_bands_rows(0.0)
        with pytest.raises(ConfigurationError):
            suggest_bands_rows(0.5, min_recall=1.0)
        with pytest.raises(ConfigurationError):
            suggest_bands_rows(0.5, cluster_size=0)


class TestProbabilityTable:
    def test_table_shape(self):
        table = probability_table(1, [10, 100], [0.1, 0.5])
        assert len(table) == 4
        assert set(table[0]) == {
            "bands",
            "rows",
            "similarity",
            "pair_probability",
            "mh_kmodes_probability",
        }

    def test_matches_direct_computation(self):
        table = probability_table(5, [20], [0.3], cluster_size=10)
        entry = table[0]
        assert entry["pair_probability"] == pytest.approx(
            1 - (1 - 0.3**5) ** 20
        )
        assert entry["mh_kmodes_probability"] == pytest.approx(
            1 - (1 - 0.3**5) ** 200
        )

    def test_recall_never_below_pair_probability(self):
        table = probability_table(2, [10, 50], [0.05, 0.2, 0.6])
        for entry in table:
            assert entry["mh_kmodes_probability"] >= entry["pair_probability"] - 1e-12
