"""Unit tests for repro.core.error_bound — the paper's Tables I/II and §III-C."""

import numpy as np
import pytest

from repro.core.error_bound import (
    candidate_pair_probability,
    cluster_recall_probability,
    error_bound,
    minimum_similarity,
)
from repro.exceptions import ConfigurationError, DataValidationError


class TestPaperTableI:
    """Rows of Table I (r=1, cluster size 10), to the paper's precision."""

    @pytest.mark.parametrize(
        "bands,similarity,pair,recall",
        [
            (10, 0.01, 0.09, 0.61),
            (10, 0.1, 0.65, 1.0),
            (10, 0.2, 0.89, 1.0),
            (10, 0.5, 0.99, 1.0),
            (100, 0.1, 0.99, 1.0),
            (100, 0.5, 1.0, 1.0),
            (100, 0.8, 1.0, 1.0),
            # The paper's 0.52 here compounds its own rounded pair
            # probability (1-(1-0.07)^10 = 0.516); the exact value is
            # 0.551, hence the slightly wider tolerance on this row.
            (800, 0.0001, 0.07, 0.55),
            (800, 0.001, 0.55, 0.99),
            (800, 0.01, 0.99, 1.0),
            (800, 0.1, 1.0, 1.0),
        ],
    )
    def test_row(self, bands, similarity, pair, recall):
        assert candidate_pair_probability(similarity, bands, 1) == pytest.approx(
            pair, abs=0.03
        )
        assert cluster_recall_probability(
            similarity, bands, 1, cluster_size=10
        ) == pytest.approx(recall, abs=0.03)

    def test_known_paper_anomalies_documented(self):
        # The paper prints 0.009 and 0.3 for (b=100, s=0.001) and
        # (b=100, s=0.01); its own formula 1-(1-s^r)^b gives 0.095 and
        # 0.634.  We implement the formula, not the typo.
        assert candidate_pair_probability(0.001, 100, 1) == pytest.approx(
            0.0952, abs=0.001
        )
        assert candidate_pair_probability(0.01, 100, 1) == pytest.approx(
            0.634, abs=0.001
        )


class TestPaperTableII:
    """Rows of Table II (r=5, cluster size 10)."""

    @pytest.mark.parametrize(
        "bands,similarity,pair,recall",
        [
            (10, 0.1, 0.0001, 0.001),
            (10, 0.2, 0.003, 0.03),
            (10, 0.5, 0.27, 0.96),
            (10, 0.8, 0.98, 1.0),
            (100, 0.1, 0.001, 0.01),
            (100, 0.5, 0.95, 1.0),
            (800, 0.1, 0.008, 0.08),
            (800, 0.2, 0.23, 0.93),
            (800, 0.3, 0.86, 1.0),
        ],
    )
    def test_row(self, bands, similarity, pair, recall):
        assert candidate_pair_probability(similarity, bands, 5) == pytest.approx(
            pair, abs=0.02
        )
        assert cluster_recall_probability(
            similarity, bands, 5, cluster_size=10
        ) == pytest.approx(recall, abs=0.02)


class TestFootnoteExample:
    def test_footnote_1(self):
        # "If there is a 10% probability ... 50 such items ... 99%."
        recall = 1.0 - (1.0 - 0.1) ** 50
        assert recall == pytest.approx(0.9948, abs=1e-3)


class TestMinimumSimilarity:
    def test_closed_form(self):
        assert minimum_similarity(100) == pytest.approx(1 / 199)

    def test_single_attribute(self):
        assert minimum_similarity(1) == 1.0

    def test_decreasing_in_attributes(self):
        values = [minimum_similarity(m) for m in (1, 10, 100, 1000)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            minimum_similarity(0)


class TestErrorBound:
    def test_paper_worked_example(self):
        # §III-C: m=100, r=1, b=25, |C|=20 → 0.08.
        assert error_bound(100, bands=25, rows=1, cluster_size=20) == pytest.approx(
            0.08, abs=0.005
        )

    def test_shrinks_with_bands(self):
        assert error_bound(100, 50, 1, 20) < error_bound(100, 25, 1, 20)

    def test_shrinks_with_cluster_size(self):
        assert error_bound(100, 25, 1, 40) < error_bound(100, 25, 1, 20)

    def test_grows_with_rows(self):
        assert error_bound(100, 25, 5, 20) > error_bound(100, 25, 1, 20)

    def test_grows_with_attributes(self):
        assert error_bound(400, 25, 1, 20) > error_bound(100, 25, 1, 20)

    def test_complements_recall(self):
        m, b, r, c = 100, 25, 1, 20
        recall = cluster_recall_probability(minimum_similarity(m), b, r, c)
        assert error_bound(m, b, r, c) == pytest.approx(1.0 - recall)

    def test_bounds_are_probabilities(self):
        for m in (2, 10, 500):
            for b, r in ((1, 1), (20, 5), (800, 1)):
                value = error_bound(m, b, r, 10)
                assert 0.0 <= value <= 1.0

    def test_rejects_bad_cluster_size(self):
        with pytest.raises(ConfigurationError):
            error_bound(100, 25, 1, 0)


class TestInputValidation:
    def test_pair_probability_range_check(self):
        with pytest.raises(DataValidationError):
            candidate_pair_probability(-0.1, 10, 1)
        with pytest.raises(DataValidationError):
            candidate_pair_probability(1.1, 10, 1)

    def test_recall_range_check(self):
        with pytest.raises(DataValidationError):
            cluster_recall_probability(2.0, 10, 1, 10)
        with pytest.raises(ConfigurationError):
            cluster_recall_probability(0.5, 10, 1, -1)

    def test_recall_monotone_in_cluster_size(self):
        values = [
            cluster_recall_probability(0.05, 10, 2, c) for c in (1, 5, 25, 125)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))
