"""Conformance suite for the shared clustered-index surface.

:class:`~repro.lsh.index.ClusteredLSHIndex` and
:class:`~repro.engine.ShardedClusteredLSHIndex` inherit one
assignment/insert/query implementation from
:class:`~repro.lsh.index.BaseClusteredIndex`; this suite runs the same
behavioural contract against every layout (unsharded plus several
shard counts) so the two classes cannot drift apart again.
"""

import numpy as np
import pytest

from repro.engine import ShardedClusteredLSHIndex
from repro.exceptions import ConfigurationError
from repro.lsh.index import BaseClusteredIndex, ClusteredLSHIndex
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets

BANDS, ROWS = 4, 3

FACTORIES = [
    pytest.param(lambda **kw: ClusteredLSHIndex(BANDS, ROWS, **kw), id="unsharded"),
    pytest.param(
        lambda **kw: ShardedClusteredLSHIndex(BANDS, ROWS, n_shards=1, **kw),
        id="sharded-1",
    ),
    pytest.param(
        lambda **kw: ShardedClusteredLSHIndex(BANDS, ROWS, n_shards=3, **kw),
        id="sharded-3",
    ),
    pytest.param(
        lambda **kw: ShardedClusteredLSHIndex(BANDS, ROWS, n_shards=7, **kw),
        id="sharded-7",
    ),
]


@pytest.fixture(scope="module")
def signatures():
    rng = np.random.default_rng(42)
    items = [
        rng.choice(150, size=rng.integers(3, 9), replace=False) for _ in range(80)
    ]
    return MinHasher(n_hashes=BANDS * ROWS, seed=6).signatures(
        TokenSets.from_lists(items)
    )


@pytest.fixture(scope="module")
def assignments():
    return np.random.default_rng(3).integers(0, 9, 80).astype(np.int64)


@pytest.fixture
def reference(signatures, assignments):
    return ClusteredLSHIndex(BANDS, ROWS).build(signatures, assignments)


@pytest.mark.parametrize("factory", FACTORIES)
class TestSharedQuerySurface:
    def test_is_base_subclass(self, factory):
        assert isinstance(factory(), BaseClusteredIndex)

    def test_candidates_match_reference(
        self, factory, signatures, assignments, reference
    ):
        index = factory().build(signatures, assignments)
        for item in range(len(assignments)):
            assert np.array_equal(
                index.candidate_items(item), reference.candidate_items(item)
            )
            assert np.array_equal(
                index.candidate_clusters(item), reference.candidate_clusters(item)
            )

    def test_candidates_sorted_unique(self, factory, signatures, assignments):
        index = factory().build(signatures, assignments)
        for item in range(len(assignments)):
            candidates = index.candidate_items(item)
            assert np.array_equal(candidates, np.unique(candidates))

    def test_neighbour_csr_consistent_with_candidates(
        self, factory, signatures, assignments
    ):
        index = factory().build(signatures, assignments)
        csr = index.neighbour_csr()
        assert csr is not None
        group_of, indptr, indices = csr
        assert len(group_of) == len(assignments)
        assert np.all(np.diff(indptr) >= 0)
        assert indptr[-1] == len(indices)
        for item in range(len(assignments)):
            group = group_of[item]
            span = indices[indptr[group] : indptr[group + 1]]
            assert item in span
            assert np.array_equal(span, index.candidate_items(item))

    def test_batched_signature_shortlists_match_per_item(
        self, factory, signatures, assignments
    ):
        index = factory().build(signatures, assignments)
        rng = np.random.default_rng(11)
        # mix of indexed signatures (non-empty shortlists) and noise
        # signatures that collide with nothing (empty rows)
        noise = MinHasher(n_hashes=BANDS * ROWS, seed=6).signatures(
            TokenSets.from_lists(
                [rng.integers(5_000, 9_000, size=4) for _ in range(10)]
            )
        )
        probes = np.vstack([signatures[:25], noise])
        indptr, clusters = index.shortlists_for_signatures(probes)
        assert len(indptr) == len(probes) + 1
        saw_empty = False
        for row in range(len(probes)):
            expected = index.candidate_clusters_for_signature(probes[row])
            got = clusters[indptr[row] : indptr[row + 1]]
            saw_empty = saw_empty or expected.size == 0
            assert np.array_equal(got, expected)
        assert saw_empty, "probe set should exercise empty shortlists"

    def test_assignment_updates_shared_semantics(
        self, factory, signatures, assignments
    ):
        index = factory().build(signatures, assignments)
        index.update_assignment(0, 77)
        assert index.assignments[0] == 77
        assert 77 in index.candidate_clusters(0)
        view = index.assignments_view()
        view[1] = 78
        assert index.assignments[1] == 78
        copied = index.assignments
        copied[:] = -5
        assert index.assignments[2] == assignments[2]

    def test_from_band_keys_round_trip(self, factory, signatures, assignments):
        built = factory().build(signatures, assignments)
        rebuilt = type(built).from_band_keys(
            BANDS, ROWS, built.band_keys, assignments
        )
        for item in range(len(assignments)):
            assert np.array_equal(
                rebuilt.candidate_items(item), built.candidate_items(item)
            )

    def test_stats_layout_invariant(self, factory, signatures, assignments, reference):
        stats = factory().build(signatures, assignments).stats()
        ref = reference.stats()
        assert stats.n_items == ref.n_items
        assert stats.mean_neighbours == ref.mean_neighbours


@pytest.mark.parametrize("factory", FACTORIES)
class TestInsertSurface:
    def test_insert_rejected_with_precomputed_neighbours(
        self, factory, signatures, assignments
    ):
        index = factory().build(signatures, assignments)
        with pytest.raises(ConfigurationError):
            index.insert(signatures[0], cluster=1)

    def test_streamed_inserts_grow_and_answer_queries(
        self, factory, signatures, assignments
    ):
        index = factory(precompute_neighbours=False).build(signatures, assignments)
        n = len(assignments)
        n_inserts = 300
        for i in range(n_inserts):
            item = index.insert(signatures[i % n], cluster=100 + (i % 5))
            assert item == n + i
        assert index.n_items == n + n_inserts
        assert index.band_keys.shape == (n + n_inserts, BANDS)
        assert len(index.assignments_view()) == n + n_inserts
        # every original item's clone cohort is visible through queries
        for item in range(5):
            candidates = index.candidate_items(item)
            clusters = index.candidate_clusters(item)
            assert n + item in candidates  # clone of item shares all buckets
            assert 100 + (item % 5) in clusters
        # inserted items answer queries about themselves
        for i in range(3):
            assert n + i in index.candidate_items(n + i)

    def test_insert_growth_matches_incremental_reference(
        self, factory, signatures, assignments
    ):
        """Doubling buffers must not change what queries see."""
        grown = factory(precompute_neighbours=False).build(signatures, assignments)
        for i in range(40):
            grown.insert(signatures[(7 * i) % len(assignments)], cluster=50 + i)
        # reference: an index built directly over the final key matrix
        reference = ClusteredLSHIndex.from_band_keys(
            BANDS,
            ROWS,
            np.ascontiguousarray(grown.band_keys),
            grown.assignments,
            precompute_neighbours=False,
        )
        for item in range(grown.n_items):
            assert np.array_equal(
                grown.candidate_items(item), reference.candidate_items(item)
            )

    def test_set_assignments_after_inserts(self, factory, signatures, assignments):
        index = factory(precompute_neighbours=False).build(signatures, assignments)
        index.insert(signatures[0], cluster=9)
        new = np.arange(index.n_items, dtype=np.int64)
        index.set_assignments(new)
        assert np.array_equal(index.assignments, new)
