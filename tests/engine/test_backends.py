"""Unit tests for the execution backends."""

import numpy as np
import pytest

from repro.engine.backends import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.exceptions import ConfigurationError


def _scale_chunk(static, dynamic, span):
    """Module-level kernel (picklable for the process backend)."""
    values = static
    factor = dynamic if dynamic is not None else 1
    start, stop = span
    return values[start:stop] * factor


VALUES = np.arange(20, dtype=np.int64)
SPANS = [(0, 7), (7, 14), (14, 20)]


@pytest.fixture(params=BACKEND_NAMES)
def backend(request):
    return resolve_backend(request.param, n_jobs=2)


class TestRunSemantics:
    def test_results_in_task_order(self, backend):
        chunks = backend.run(_scale_chunk, SPANS, static=VALUES, dynamic=3)
        assert np.array_equal(np.concatenate(chunks), VALUES * 3)

    def test_session_reuse_with_changing_dynamic(self, backend):
        with backend.session(VALUES) as session:
            first = session.run(_scale_chunk, SPANS, dynamic=1)
            second = session.run(_scale_chunk, SPANS, dynamic=2)
        assert np.array_equal(np.concatenate(first), VALUES)
        assert np.array_equal(np.concatenate(second), VALUES * 2)

    def test_empty_task_list(self, backend):
        assert backend.run(_scale_chunk, [], static=VALUES) == []


class TestResolution:
    def test_names_resolve_to_classes(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_instance_passes_through(self):
        backend = ThreadBackend(n_jobs=3)
        assert resolve_backend(backend) is backend

    def test_instance_with_conflicting_n_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend(ThreadBackend(n_jobs=3), n_jobs=5)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("gpu")

    def test_non_positive_n_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(n_jobs=0)

    def test_serial_is_single_worker_and_not_parallel(self):
        serial = resolve_backend("serial")
        assert serial.n_jobs == 1
        assert not serial.is_parallel
        assert resolve_backend("thread").is_parallel

    def test_default_n_jobs_positive(self):
        assert resolve_backend("process").n_jobs >= 1
