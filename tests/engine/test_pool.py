"""PersistentPool: lifetime, transport tracking, failure behaviour."""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.engine import (
    PersistentPool,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    live_pool_count,
)
from repro.engine.shared import SharedArray, live_segment_count
from repro.exceptions import ConfigurationError, PoolBrokenError
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, RetryPolicy, inject_faults

#: Real retries without real sleeps, for the restart tests.
_FAST_RETRIES = RetryPolicy(
    max_retries=2, backoff_ms=0.0, backoff_max_ms=0.0, jitter=0.0
)


def _echo(static, dynamic, task):
    return (static, dynamic, task)


def _double(static, dynamic, task):
    return task * 2


def _boom(static, dynamic, task):
    raise ValueError(f"kernel failed on task {task}")


class TestLifecycle:
    def test_one_session_per_pool(self):
        backend = ThreadBackend(n_jobs=2)
        with PersistentPool(backend) as pool:
            for _ in range(5):
                assert pool.run(_double, [1, 2, 3]) == [2, 4, 6]
        assert backend.sessions_opened == 1

    def test_live_pool_count_balances(self):
        baseline = live_pool_count()
        pool = PersistentPool(SerialBackend())
        assert live_pool_count() == baseline + 1
        pool.close()
        assert live_pool_count() == baseline

    def test_close_is_idempotent(self):
        pool = PersistentPool(SerialBackend())
        opened = live_pool_count()
        pool.close()
        pool.close()  # second close must not double-decrement
        assert live_pool_count() == opened - 1
        assert pool.closed

    def test_closed_pool_rejects_work(self):
        pool = PersistentPool(SerialBackend())
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.run(_double, [1])
        with pytest.raises(ConfigurationError, match="closed"):
            pool.share(np.arange(3))

    def test_static_payload_reaches_every_dispatch(self):
        with PersistentPool(SerialBackend(), static="payload") as pool:
            results = pool.run(_echo, ["a", "b"], dynamic=1)
        assert results == [("payload", 1, "a"), ("payload", 1, "b")]


class TestFailureBehaviour:
    def test_kernel_exception_does_not_poison_the_pool(self):
        for backend in (SerialBackend(), ThreadBackend(n_jobs=2)):
            with PersistentPool(backend) as pool:
                with pytest.raises(ValueError, match="kernel failed"):
                    pool.run(_boom, [1, 2])
                assert pool.run(_double, [4]) == [8]

    def test_process_pool_survives_kernel_exception(self):
        with PersistentPool(ProcessBackend(n_jobs=2)) as pool:
            with pytest.raises(ValueError, match="kernel failed"):
                pool.run(_boom, [1])
            assert pool.run(_double, [3, 4]) == [6, 8]

    def test_adopted_handles_released_when_session_open_fails(self):
        class ExplodingBackend(SerialBackend):
            def _open_session(self, static=None):
                raise RuntimeError("no workers today")

        handle = SharedArray.via_shm(np.arange(8))
        baseline = live_pool_count()
        with pytest.raises(RuntimeError, match="no workers"):
            PersistentPool(ExplodingBackend(), handles=(handle,))
        assert live_pool_count() == baseline
        # the segment was unlinked by the constructor's failure path
        assert handle._shm is None


class TestWorkerDeathRecovery:
    def test_dropped_result_respawns_once_and_retries(self):
        backend = SerialBackend()
        with inject_faults(FaultPlan(drop_on_chunks=(1,))):
            with PersistentPool(backend, retry_policy=_FAST_RETRIES) as pool:
                assert pool.run(_double, [1, 2, 3]) == [2, 4, 6]
                assert pool.restarts == 1
        # A respawn opens a second session, by design.
        assert backend.sessions_opened == 2

    def test_sigkilled_worker_respawns_and_answers(self):
        with inject_faults(FaultPlan(kill_on_chunks=(2,))):
            with PersistentPool(
                ProcessBackend(n_jobs=2), retry_policy=_FAST_RETRIES
            ) as pool:
                assert pool.run(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
                assert pool.restarts == 1
                # The fresh session is durable, not single-shot.
                assert pool.run(_double, [5]) == [10]
                assert pool.restarts == 1

    def test_restart_counter_lands_in_the_registry(self):
        registry = MetricsRegistry()
        with inject_faults(FaultPlan(drop_on_chunks=(1,))):
            with PersistentPool(
                SerialBackend(), metrics=registry, retry_policy=_FAST_RETRIES
            ) as pool:
                pool.run(_double, [1])
        assert registry.counter("repro_pool_restarts_total").value == 1.0
        assert registry.counter("repro_degraded_requests_total").value == 0.0

    def test_exhausted_retries_degrade_to_serial(self):
        registry = MetricsRegistry()
        # Every attempt's first chunk drops: 1 initial try + 2 retries
        # all fail, then the in-process fallback answers anyway.
        with inject_faults(FaultPlan(drop_on_chunks=(1, 2, 3))):
            with PersistentPool(
                SerialBackend(),
                metrics=registry,
                retry_policy=_FAST_RETRIES,
                degrade="serial",
            ) as pool:
                assert pool.run(_double, [7]) == [14]
        assert registry.counter("repro_degraded_requests_total").value == 1.0

    def test_exhausted_retries_with_degrade_error_raise(self):
        with inject_faults(FaultPlan(drop_on_chunks=(1, 2, 3))):
            with PersistentPool(
                SerialBackend(), retry_policy=_FAST_RETRIES, degrade="error"
            ) as pool:
                with pytest.raises(PoolBrokenError, match="3 consecutive"):
                    pool.run(_double, [7])

    def test_unknown_degrade_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="degrade"):
            PersistentPool(SerialBackend(), degrade="explode")

    def test_shared_handles_survive_a_respawn(self):
        # Workers attach shm segments lazily by name, so handles made
        # before a worker death stay valid in the respawned session.
        with inject_faults(FaultPlan(kill_on_chunks=(1,))):
            with PersistentPool(
                ProcessBackend(n_jobs=1), retry_policy=_FAST_RETRIES
            ) as pool:
                handle = pool.share(np.arange(6, dtype=np.int64))
                [seen] = pool.run(_echo, [0], dynamic=handle)
                assert pool.restarts == 1
                assert np.array_equal(seen[1].get(), np.arange(6))


class TestSegmentAccounting:
    def test_share_and_close_balance_the_segment_count(self):
        baseline = live_segment_count()
        pool = PersistentPool(ProcessBackend(n_jobs=1))
        pool.share(np.arange(8, dtype=np.int64))
        pool.share(np.arange(4, dtype=np.int64))
        assert live_segment_count() == baseline + 2
        pool.close()
        assert live_segment_count() == baseline

    def test_gc_finalizer_releases_segments_of_an_unclosed_pool(self):
        # The crash-shaped leak: a pool owner dies without close().
        seg_baseline = live_segment_count()
        pool_baseline = live_pool_count()
        pool = PersistentPool(ProcessBackend(n_jobs=1))
        pool.share(np.arange(16, dtype=np.int64))
        assert live_segment_count() == seg_baseline + 1
        assert live_pool_count() == pool_baseline + 1
        session = pool._session  # keep workers from leaking a warning
        del pool
        gc.collect()
        assert live_segment_count() == seg_baseline
        # The reclaimed pool no longer counts as live either — a GC'd
        # pool must not poison later leak assertions.
        assert live_pool_count() == pool_baseline
        session.close()

    def test_segments_released_even_after_worker_death(self):
        baseline = live_segment_count()
        with inject_faults(FaultPlan(kill_on_chunks=(1,))):
            with PersistentPool(
                ProcessBackend(n_jobs=1), retry_policy=_FAST_RETRIES
            ) as pool:
                handle = pool.share(np.zeros(4, dtype=np.int64))
                pool.run(_echo, [0], dynamic=handle)
                assert pool.restarts == 1
                assert live_segment_count() == baseline + 1
        assert live_segment_count() == baseline


class TestTransport:
    def test_share_releases_segments_at_close(self):
        backend = ProcessBackend(n_jobs=1)
        pool = PersistentPool(backend)
        handle = pool.share(np.arange(16, dtype=np.int64))
        assert handle.is_shm or handle._array is not None
        [seen] = pool.run(_echo, [0], dynamic=handle)
        assert np.array_equal(seen[1].get(), np.arange(16))
        pool.close()
        assert handle._shm is None  # unlinked

    def test_shared_buffer_writes_visible_to_process_workers(self):
        # The serving request-buffer pattern: one segment, many writes.
        backend = ProcessBackend(n_jobs=1)
        with PersistentPool(backend) as pool:
            handle = pool.share(np.zeros(4, dtype=np.int64))
            view = handle.get()
            for fill in (7, 9):
                view[:] = fill
                [(_, seen, _)] = pool.run(_echo, [0], dynamic=handle)
                assert np.array_equal(seen.get(), np.full(4, fill))
