"""PersistentPool: lifetime, transport tracking, failure behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    PersistentPool,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    live_pool_count,
)
from repro.engine.shared import SharedArray
from repro.exceptions import ConfigurationError


def _echo(static, dynamic, task):
    return (static, dynamic, task)


def _double(static, dynamic, task):
    return task * 2


def _boom(static, dynamic, task):
    raise ValueError(f"kernel failed on task {task}")


class TestLifecycle:
    def test_one_session_per_pool(self):
        backend = ThreadBackend(n_jobs=2)
        with PersistentPool(backend) as pool:
            for _ in range(5):
                assert pool.run(_double, [1, 2, 3]) == [2, 4, 6]
        assert backend.sessions_opened == 1

    def test_live_pool_count_balances(self):
        baseline = live_pool_count()
        pool = PersistentPool(SerialBackend())
        assert live_pool_count() == baseline + 1
        pool.close()
        assert live_pool_count() == baseline

    def test_close_is_idempotent(self):
        pool = PersistentPool(SerialBackend())
        opened = live_pool_count()
        pool.close()
        pool.close()  # second close must not double-decrement
        assert live_pool_count() == opened - 1
        assert pool.closed

    def test_closed_pool_rejects_work(self):
        pool = PersistentPool(SerialBackend())
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.run(_double, [1])
        with pytest.raises(ConfigurationError, match="closed"):
            pool.share(np.arange(3))

    def test_static_payload_reaches_every_dispatch(self):
        with PersistentPool(SerialBackend(), static="payload") as pool:
            results = pool.run(_echo, ["a", "b"], dynamic=1)
        assert results == [("payload", 1, "a"), ("payload", 1, "b")]


class TestFailureBehaviour:
    def test_kernel_exception_does_not_poison_the_pool(self):
        for backend in (SerialBackend(), ThreadBackend(n_jobs=2)):
            with PersistentPool(backend) as pool:
                with pytest.raises(ValueError, match="kernel failed"):
                    pool.run(_boom, [1, 2])
                assert pool.run(_double, [4]) == [8]

    def test_process_pool_survives_kernel_exception(self):
        with PersistentPool(ProcessBackend(n_jobs=2)) as pool:
            with pytest.raises(ValueError, match="kernel failed"):
                pool.run(_boom, [1])
            assert pool.run(_double, [3, 4]) == [6, 8]

    def test_adopted_handles_released_when_session_open_fails(self):
        class ExplodingBackend(SerialBackend):
            def _open_session(self, static=None):
                raise RuntimeError("no workers today")

        handle = SharedArray.via_shm(np.arange(8))
        baseline = live_pool_count()
        with pytest.raises(RuntimeError, match="no workers"):
            PersistentPool(ExplodingBackend(), handles=(handle,))
        assert live_pool_count() == baseline
        # the segment was unlinked by the constructor's failure path
        assert handle._shm is None


class TestTransport:
    def test_share_releases_segments_at_close(self):
        backend = ProcessBackend(n_jobs=1)
        pool = PersistentPool(backend)
        handle = pool.share(np.arange(16, dtype=np.int64))
        assert handle.is_shm or handle._array is not None
        [seen] = pool.run(_echo, [0], dynamic=handle)
        assert np.array_equal(seen[1].get(), np.arange(16))
        pool.close()
        assert handle._shm is None  # unlinked

    def test_shared_buffer_writes_visible_to_process_workers(self):
        # The serving request-buffer pattern: one segment, many writes.
        backend = ProcessBackend(n_jobs=1)
        with PersistentPool(backend) as pool:
            handle = pool.share(np.zeros(4, dtype=np.int64))
            view = handle.get()
            for fill in (7, 9):
                view[:] = fill
                [(_, seen, _)] = pool.run(_echo, [0], dynamic=handle)
                assert np.array_equal(seen.get(), np.full(4, fill))
