"""The engine's fit-lifetime session contract.

One fit = one backend session (one worker pool), with the item matrix
and every post-open array reaching process workers through zero-copy
or shared-memory transport — never through per-task pickles.
"""

import pickle

import numpy as np
import pytest

from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.engine import (
    ProcessBackend,
    SerialBackend,
    SharedArray,
    ThreadBackend,
    resolve_array,
)


@pytest.fixture(scope="module")
def workload():
    data = RuleBasedGenerator(
        n_clusters=8, n_attributes=12, domain_size=300, seed=5
    ).generate(160)
    initial = data.X[
        np.random.default_rng(1).choice(len(data.X), 8, replace=False)
    ].copy()
    return data.X, initial


def _fit(X, initial, backend, **overrides):
    model = MHKModes(
        n_clusters=8,
        bands=8,
        rows=2,
        seed=0,
        max_iter=10,
        update_refs="batch",
        backend=backend,
        **overrides,
    )
    model.fit(X, initial_centroids=initial)
    return model


class TestOnePoolPerFit:
    @pytest.mark.parametrize(
        "backend_factory",
        [
            lambda: ThreadBackend(n_jobs=2),
            lambda: ProcessBackend(n_jobs=2),
        ],
        ids=["thread", "process"],
    )
    def test_single_session_spans_all_phases(self, workload, backend_factory):
        X, initial = workload
        backend = backend_factory()
        assert backend.sessions_opened == 0
        _fit(X, initial, backend)
        # exhaustive + signatures + index build + every iteration pass
        # all ran on ONE pool
        assert backend.sessions_opened == 1

    def test_each_fit_opens_its_own_session(self, workload):
        X, initial = workload
        backend = ThreadBackend(n_jobs=2)
        _fit(X, initial, backend)
        _fit(X, initial, backend)
        assert backend.sessions_opened == 2

    def test_session_open_phase_recorded(self, workload):
        X, initial = workload
        model = _fit(X, initial, ThreadBackend(n_jobs=2))
        assert "session_open" in model.stats_.phase_s
        assert model.stats_.phase_s["session_open"] >= 0.0
        serial = _fit(X, initial, "serial")
        assert serial.stats_.phase_s["session_open"] == 0.0


class TestSerialBatchVectorised:
    def test_vectorised_serial_batch_matches_per_item_pass(self, workload):
        X, initial = workload
        fast = _fit(X, initial, "serial")
        reference = MHKModes(
            n_clusters=8, bands=8, rows=2, seed=0, max_iter=10, update_refs="batch"
        )
        reference._force_per_item_pass = True
        reference.fit(X, initial_centroids=initial)
        assert np.array_equal(fast.labels_, reference.labels_)
        assert np.array_equal(fast.centroids_, reference.centroids_)
        assert fast.n_iter_ == reference.n_iter_
        assert (
            fast.stats_.shortlist_sizes == reference.stats_.shortlist_sizes
        )


class TestSharedMemoryTransport:
    def test_wrap_is_zero_copy(self):
        array = np.arange(12.0)
        handle = SharedArray.wrap(array)
        assert not handle.is_shm
        assert handle.get() is not None
        assert np.shares_memory(handle.get(), array)
        handle.release()  # no-op

    def test_shm_round_trip_and_small_pickle(self):
        array = np.arange(200_000, dtype=np.float64).reshape(1000, 200)
        handle = SharedArray.via_shm(array)
        try:
            if not handle.is_shm:
                pytest.skip("shared memory unavailable on this platform")
            assert np.array_equal(handle.get(), array)
            payload = pickle.dumps(handle)
            # the 1.6 MB matrix travels as a descriptor, not as bytes
            assert len(payload) < 1024
            clone = pickle.loads(payload)
            assert np.array_equal(clone.get(), array)
        finally:
            handle.release()

    def test_resolve_array_passthrough(self):
        array = np.arange(5)
        assert resolve_array(array) is array
        assert np.array_equal(resolve_array(SharedArray.wrap(array)), array)

    def test_process_backend_shares_via_shm(self):
        backend = ProcessBackend(n_jobs=1)
        handle = backend.share_array(np.zeros(64))
        try:
            assert handle.is_shm or True  # platform without shm degrades to wrap
        finally:
            handle.release()
        assert not SerialBackend().share_array(np.zeros(4)).is_shm
        assert not ThreadBackend(n_jobs=1).share_array(np.zeros(4)).is_shm


class TestSpawnContext:
    """The acceptance contract for platforms without fork."""

    def test_spawn_backend_matches_serial_and_uses_shared_memory(self, workload):
        X, initial = workload
        backend = ProcessBackend(n_jobs=2, start_method="spawn")
        assert not backend.inherits_static
        # the engine must route the item matrix through shared memory —
        # share_array is the only transport spawn sessions get
        probe = backend.share_array(np.ascontiguousarray(X))
        try:
            if not probe.is_shm:
                pytest.skip("shared memory unavailable on this platform")
        finally:
            probe.release()
        reference = _fit(X, initial, "serial")
        spawned = _fit(X, initial, backend)
        assert backend.sessions_opened == 1
        assert np.array_equal(spawned.labels_, reference.labels_)
        assert np.array_equal(spawned.centroids_, reference.centroids_)
