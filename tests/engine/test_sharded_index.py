"""Sharded index tests: shard-count invariance against the global index."""

import numpy as np
import pytest

from repro.engine import ShardedClusteredLSHIndex, resolve_backend
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.lsh.index import ClusteredLSHIndex
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets


@pytest.fixture
def signatures(rng):
    items = [rng.choice(200, size=rng.integers(3, 10), replace=False) for _ in range(60)]
    return MinHasher(n_hashes=12, seed=9).signatures(TokenSets.from_lists(items))


@pytest.fixture
def assignments(rng):
    return rng.integers(0, 7, 60).astype(np.int64)


SHARD_COUNTS = (1, 2, 3, 7, 60)


class TestShardInvariance:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_candidate_items_match_global_index(
        self, signatures, assignments, n_shards
    ):
        reference = ClusteredLSHIndex(bands=4, rows=3).build(signatures, assignments)
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=n_shards).build(
            signatures, assignments
        )
        for item in range(len(assignments)):
            assert np.array_equal(
                sharded.candidate_items(item), reference.candidate_items(item)
            )
            assert np.array_equal(
                sharded.candidate_clusters(item), reference.candidate_clusters(item)
            )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_novel_signature_shortlists_match(self, signatures, assignments, n_shards):
        reference = ClusteredLSHIndex(bands=4, rows=3).build(signatures, assignments)
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=n_shards).build(
            signatures, assignments
        )
        for probe in signatures[:10]:
            assert np.array_equal(
                sharded.candidate_clusters_for_signature(probe),
                reference.candidate_clusters_for_signature(probe),
            )

    def test_parallel_build_equals_serial_build(self, signatures, assignments):
        serial = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=3).build(
            signatures, assignments
        )
        threaded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=3).build(
            signatures, assignments, backend=resolve_backend("thread", 2)
        )
        for item in range(len(assignments)):
            assert np.array_equal(
                serial.candidate_items(item), threaded.candidate_items(item)
            )

    def test_neighbour_groups_cover_every_item(self, signatures, assignments):
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=4).build(
            signatures, assignments
        )
        groups = sharded.neighbour_groups()
        assert groups is not None
        group_of, group_neighbours = groups
        assert len(group_of) == len(assignments)
        for item in range(len(assignments)):
            assert item in group_neighbours[group_of[item]]


class TestAssignments:
    def test_reference_update_visible_in_shortlist(self, signatures, assignments):
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=3).build(
            signatures, assignments
        )
        sharded.update_assignment(0, 6)
        assert sharded.assignments[0] == 6
        assert 6 in sharded.candidate_clusters(0)

    def test_assignments_view_is_live(self, signatures, assignments):
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=2).build(
            signatures, assignments
        )
        view = sharded.assignments_view()
        view[3] = 5
        assert sharded.assignments[3] == 5

    def test_set_assignments_shape_checked(self, signatures, assignments):
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=2).build(
            signatures, assignments
        )
        with pytest.raises(DataValidationError):
            sharded.set_assignments(np.zeros(3, dtype=np.int64))


class TestInsert:
    def test_insert_spreads_items_and_answers_queries(self, signatures, assignments):
        sharded = ShardedClusteredLSHIndex(
            bands=4, rows=3, n_shards=3, precompute_neighbours=False
        ).build(signatures, assignments)
        item = sharded.insert(signatures[0], cluster=5)
        assert item == len(assignments)
        assert sharded.n_items == len(assignments) + 1
        # the clone shares every bucket with item 0, so both see cluster 5
        assert 5 in sharded.candidate_clusters(0)
        assert item in sharded.candidate_items(0)

    def test_insert_requires_no_precompute(self, signatures, assignments):
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=2).build(
            signatures, assignments
        )
        with pytest.raises(ConfigurationError):
            sharded.insert(signatures[0], cluster=1)


class TestValidation:
    def test_unbuilt_queries_rejected(self):
        with pytest.raises(NotFittedError):
            ShardedClusteredLSHIndex(bands=4, rows=3).candidate_items(0)

    def test_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=0)

    def test_mismatched_assignments(self, signatures):
        with pytest.raises(DataValidationError):
            ShardedClusteredLSHIndex(bands=4, rows=3).build(
                signatures, np.zeros(3, dtype=np.int64)
            )

    def test_from_band_keys_round_trip(self, signatures, assignments):
        built = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=3).build(
            signatures, assignments
        )
        rebuilt = ShardedClusteredLSHIndex.from_band_keys(
            4, 3, built.band_keys, assignments, n_shards=2
        )
        for item in range(len(assignments)):
            assert np.array_equal(
                rebuilt.candidate_items(item), built.candidate_items(item)
            )

    def test_stats_aggregate(self, signatures, assignments):
        sharded = ShardedClusteredLSHIndex(bands=4, rows=3, n_shards=3).build(
            signatures, assignments
        )
        stats = sharded.stats()
        assert stats.n_items == len(assignments)
        assert stats.mean_bucket_size > 0
        assert int(sharded.shard_sizes().sum()) == len(assignments)
