"""Unit tests for the engine's chunk iterators."""

import pytest

from repro.engine.chunking import chunk_ranges, iter_blocks
from repro.exceptions import ConfigurationError


class TestChunkRanges:
    def test_covers_every_item_once_in_order(self):
        spans = chunk_ranges(103, 7)
        items = [i for start, stop in spans for i in range(start, stop)]
        assert items == list(range(103))

    def test_balanced_within_one(self):
        sizes = [stop - start for start, stop in chunk_ranges(103, 7)]
        assert max(sizes) - min(sizes) <= 1
        assert len(sizes) == 7

    def test_no_empty_spans_when_items_scarce(self):
        spans = chunk_ranges(3, 8)
        assert spans == [(0, 1), (1, 2), (2, 3)]

    def test_zero_items(self):
        assert chunk_ranges(0, 4) == []

    def test_single_chunk(self):
        assert chunk_ranges(10, 1) == [(0, 10)]

    @pytest.mark.parametrize("n_items,n_chunks", [(-1, 2), (5, 0), (5, -3)])
    def test_invalid_arguments(self, n_items, n_chunks):
        with pytest.raises(ConfigurationError):
            chunk_ranges(n_items, n_chunks)


class TestIterBlocks:
    def test_partitions_span(self):
        blocks = list(iter_blocks(3, 17, 5))
        assert blocks == [(3, 8), (8, 13), (13, 17)]

    def test_block_larger_than_span(self):
        assert list(iter_blocks(0, 4, 100)) == [(0, 4)]

    def test_empty_span(self):
        assert list(iter_blocks(5, 5, 3)) == []

    def test_invalid_block(self):
        with pytest.raises(ConfigurationError):
            list(iter_blocks(0, 10, 0))
