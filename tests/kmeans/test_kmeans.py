"""Unit tests for the KMeans baseline."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.kmeans.kmeans import KMeans, _squared_distances
from repro.metrics.external import adjusted_rand_index


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    centres = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    labels = rng.integers(0, 3, 120)
    X = centres[labels] + rng.normal(0, 0.3, (120, 2))
    return X, labels


class TestSquaredDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((10, 4))
        C = rng.standard_normal((3, 4))
        naive = ((X[:, None, :] - C[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(_squared_distances(X, C), naive)

    def test_non_negative(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((50, 8)) * 1e-8  # cancellation-prone
        assert _squared_distances(X, X).min() >= 0.0


class TestFit:
    def test_recovers_blobs(self, blobs):
        X, truth = blobs
        model = KMeans(n_clusters=3, seed=0).fit(X)
        assert adjusted_rand_index(model.labels_, truth) > 0.95

    def test_sse_non_increasing(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=3, seed=1).fit(X)
        costs = model.stats_.costs
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_deterministic(self, blobs):
        X, _ = blobs
        a = KMeans(n_clusters=3, seed=2).fit(X)
        b = KMeans(n_clusters=3, seed=2).fit(X)
        assert np.array_equal(a.labels_, b.labels_)

    def test_kmeanspp_init(self, blobs):
        X, truth = blobs
        model = KMeans(n_clusters=3, init="kmeans++", seed=3).fit(X)
        assert adjusted_rand_index(model.labels_, truth) > 0.95

    def test_explicit_initial_centroids(self, blobs):
        X, _ = blobs
        init = X[:3].copy()
        model = KMeans(n_clusters=3, seed=4).fit(X, initial_centroids=init)
        assert model.converged_

    def test_empty_cluster_keeps_previous_centroid(self):
        X = np.array([[0.0], [0.1], [0.2]])
        init = np.array([[0.1], [99.0]])
        model = KMeans(n_clusters=2, seed=0).fit(X, initial_centroids=init)
        assert model.centroids_[1, 0] == pytest.approx(99.0)

    def test_predict(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=3, seed=5).fit(X)
        assert np.array_equal(model.predict(X), model.labels_)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(np.zeros((1, 2)))

    def test_fit_predict(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=3, seed=6)
        assert np.array_equal(model.fit_predict(X), model.labels_)


class TestValidation:
    def test_rejects_nan(self):
        with pytest.raises(DataValidationError):
            KMeans(n_clusters=1, seed=0).fit(np.array([[np.nan, 1.0]]))

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError):
            KMeans(n_clusters=1, seed=0).fit(np.array([[np.inf, 1.0]]))

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            KMeans(n_clusters=1, seed=0).fit(np.empty((0, 2)))

    def test_rejects_k_above_n(self):
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=5, seed=0).fit(np.zeros((2, 2)))

    def test_rejects_bad_init_name(self):
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=2, init="furthest")

    def test_predict_feature_mismatch(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=2, seed=0).fit(X)
        with pytest.raises(DataValidationError):
            model.predict(np.zeros((1, 5)))


class TestEdgeCases:
    def test_identical_points(self):
        X = np.tile([1.0, 2.0], (10, 1))
        model = KMeans(n_clusters=2, seed=0).fit(X)
        assert model.cost_ == pytest.approx(0.0)

    def test_k_equals_n(self):
        X = np.arange(6, dtype=np.float64).reshape(3, 2)
        model = KMeans(n_clusters=3, seed=0).fit(X)
        assert model.cost_ == pytest.approx(0.0)

    def test_kmeanspp_with_duplicates(self):
        # D² sampling must not crash when all remaining mass is zero.
        X = np.vstack([np.tile([0.0, 0.0], (5, 1)), [[1.0, 1.0]]])
        model = KMeans(n_clusters=3, init="kmeans++", seed=0).fit(X)
        assert model.labels_ is not None
