"""Unit tests for LSHKMeans (the further-work numeric extension)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmeans.kmeans import KMeans
from repro.kmeans.mh_kmeans import LSHKMeans
from repro.metrics.external import adjusted_rand_index


@pytest.fixture
def blobs():
    rng = np.random.default_rng(7)
    centres = rng.normal(0, 10, (12, 6))
    labels = rng.integers(0, 12, 360)
    return centres[labels] + rng.normal(0, 0.4, (360, 6)), labels


class TestFit:
    def test_recovers_blobs_pstable(self, blobs):
        X, truth = blobs
        model = LSHKMeans(
            n_clusters=12, bands=16, rows=4, family="pstable", width=4.0, seed=0
        ).fit(X)
        assert adjusted_rand_index(model.labels_, truth) > 0.8

    def test_recovers_blobs_simhash(self, blobs):
        X, truth = blobs
        model = LSHKMeans(
            n_clusters=12, bands=16, rows=4, family="simhash", seed=0
        ).fit(X)
        assert adjusted_rand_index(model.labels_, truth) > 0.6

    def test_quality_close_to_exact_kmeans(self, blobs):
        X, truth = blobs
        init = X[np.random.default_rng(1).choice(len(X), 12, replace=False)]
        exact = KMeans(n_clusters=12, seed=0).fit(X, initial_centroids=init)
        fast = LSHKMeans(
            n_clusters=12, bands=16, rows=4, family="pstable", width=4.0, seed=0
        ).fit(X, initial_centroids=init)
        exact_ari = adjusted_rand_index(exact.labels_, truth)
        fast_ari = adjusted_rand_index(fast.labels_, truth)
        assert fast_ari > 0.8 * exact_ari

    def test_shortlists_smaller_than_k(self, blobs):
        X, _ = blobs
        model = LSHKMeans(
            n_clusters=12, bands=16, rows=4, family="pstable", width=4.0, seed=0
        ).fit(X)
        assert np.nanmean(model.stats_.shortlist_sizes) < 12

    def test_sse_non_increasing(self, blobs):
        X, _ = blobs
        model = LSHKMeans(n_clusters=12, bands=16, rows=4, seed=0).fit(X)
        costs = model.stats_.costs
        assert all(a >= b - 1e-6 for a, b in zip(costs, costs[1:]))

    def test_deterministic(self, blobs):
        X, _ = blobs
        a = LSHKMeans(n_clusters=12, bands=8, rows=2, seed=2).fit(X)
        b = LSHKMeans(n_clusters=12, bands=8, rows=2, seed=2).fit(X)
        assert np.array_equal(a.labels_, b.labels_)

    def test_predict_on_training_data(self, blobs):
        X, _ = blobs
        model = LSHKMeans(n_clusters=12, bands=16, rows=4, seed=0).fit(X)
        predicted = model.predict(X)
        assert np.mean(predicted == model.labels_) > 0.9

    def test_algorithm_name(self, blobs):
        X, _ = blobs
        model = LSHKMeans(n_clusters=12, bands=8, rows=2, family="simhash", seed=0).fit(X)
        assert model.stats_.algorithm == "LSH-K-Means(simhash) 8b 2r"


class TestValidation:
    def test_rejects_unknown_family(self):
        with pytest.raises(ConfigurationError):
            LSHKMeans(n_clusters=2, family="euclid")

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError):
            LSHKMeans(n_clusters=1, seed=0).fit(np.array([[np.nan, 0.0]]))

    def test_rejects_k_above_n(self):
        with pytest.raises(ConfigurationError):
            LSHKMeans(n_clusters=9, seed=0).fit(np.zeros((2, 2)))

    def test_rejects_bad_initial_shape(self, blobs):
        X, _ = blobs
        with pytest.raises(DataValidationError):
            LSHKMeans(n_clusters=12, seed=0).fit(X, initial_centroids=np.zeros((3, 6)))
