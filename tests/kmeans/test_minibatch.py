"""Unit tests for MiniBatchKMeans (Sculley baseline)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.kmeans.minibatch import MiniBatchKMeans
from repro.metrics.external import adjusted_rand_index


@pytest.fixture
def blobs():
    rng = np.random.default_rng(3)
    centres = np.array([[0.0, 0.0], [8.0, 8.0]])
    labels = rng.integers(0, 2, 200)
    return centres[labels] + rng.normal(0, 0.4, (200, 2)), labels


class TestFit:
    def test_recovers_well_separated_blobs(self, blobs):
        X, truth = blobs
        model = MiniBatchKMeans(n_clusters=2, batch_size=50, max_iter=80, seed=0).fit(X)
        assert adjusted_rand_index(model.labels_, truth) > 0.95

    def test_deterministic(self, blobs):
        X, _ = blobs
        a = MiniBatchKMeans(n_clusters=2, seed=1).fit(X)
        b = MiniBatchKMeans(n_clusters=2, seed=1).fit(X)
        assert np.array_equal(a.labels_, b.labels_)

    def test_early_stop_on_tolerance(self, blobs):
        X, _ = blobs
        model = MiniBatchKMeans(
            n_clusters=2, batch_size=100, max_iter=500, tol=1e-4, seed=2
        ).fit(X)
        assert model.n_iter_ < 500
        assert model.converged_

    def test_no_early_stop_when_tol_zero(self, blobs):
        X, _ = blobs
        model = MiniBatchKMeans(
            n_clusters=2, batch_size=20, max_iter=15, tol=0.0, seed=3
        ).fit(X)
        assert model.n_iter_ == 15
        assert not model.converged_

    def test_batch_larger_than_dataset_is_clamped(self):
        X = np.random.default_rng(0).standard_normal((10, 2))
        model = MiniBatchKMeans(n_clusters=2, batch_size=1000, max_iter=5, seed=0).fit(X)
        assert model.labels_.shape == (10,)

    def test_cost_populated_after_fit(self, blobs):
        X, _ = blobs
        model = MiniBatchKMeans(n_clusters=2, seed=4).fit(X)
        assert np.isfinite(model.cost_)

    def test_explicit_initial_centroids(self, blobs):
        X, _ = blobs
        init = X[:2].copy()
        model = MiniBatchKMeans(n_clusters=2, seed=5).fit(X, initial_centroids=init)
        assert model.centroids_.shape == (2, 2)

    def test_predict(self, blobs):
        X, _ = blobs
        model = MiniBatchKMeans(n_clusters=2, seed=6).fit(X)
        predicted = model.predict(X)
        assert np.array_equal(predicted, model.labels_)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MiniBatchKMeans(n_clusters=2).predict(np.zeros((1, 2)))


class TestValidation:
    def test_constructor_checks(self):
        with pytest.raises(ConfigurationError):
            MiniBatchKMeans(n_clusters=0)
        with pytest.raises(ConfigurationError):
            MiniBatchKMeans(n_clusters=2, batch_size=0)
        with pytest.raises(ConfigurationError):
            MiniBatchKMeans(n_clusters=2, max_iter=0)
        with pytest.raises(ConfigurationError):
            MiniBatchKMeans(n_clusters=2, tol=-1.0)

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError):
            MiniBatchKMeans(n_clusters=1, seed=0).fit(np.array([[np.nan]]))

    def test_rejects_k_above_n(self):
        with pytest.raises(ConfigurationError):
            MiniBatchKMeans(n_clusters=5, seed=0).fit(np.zeros((2, 2)))

    def test_rejects_bad_initial_shape(self, blobs):
        X, _ = blobs
        with pytest.raises(DataValidationError):
            MiniBatchKMeans(n_clusters=2, seed=0).fit(
                X, initial_centroids=np.zeros((3, 2))
            )
