"""Unit tests for Timer / StageTimer."""

import time

from repro.instrumentation.timer import StageTimer, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed_s >= 0.009

    def test_lap_without_context(self):
        timer = Timer()
        assert timer.lap() == 0.0  # auto-restarts on first call
        time.sleep(0.005)
        assert timer.lap() >= 0.004

    def test_restart(self):
        timer = Timer()
        timer.restart()
        time.sleep(0.005)
        first = timer.lap()
        timer.restart()
        assert timer.lap() < first


class TestStageTimer:
    def test_accumulates(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("work"):
                time.sleep(0.002)
        assert timer.counts["work"] == 3
        assert timer.total("work") >= 0.005

    def test_mean(self):
        timer = StageTimer()
        with timer.stage("a"):
            time.sleep(0.002)
        assert timer.mean("a") == timer.total("a")

    def test_unknown_stage_defaults(self):
        timer = StageTimer()
        assert timer.total("never") == 0.0
        assert timer.mean("never") == 0.0

    def test_separate_stages(self):
        timer = StageTimer()
        with timer.stage("x"):
            pass
        with timer.stage("y"):
            pass
        assert set(timer.totals) == {"x", "y"}
