"""Unit tests for RunStats / IterationStats."""

import numpy as np

from repro.instrumentation.stats import IterationStats, RunStats


class TestRecord:
    def test_iteration_numbering(self):
        stats = RunStats(algorithm="x")
        first = stats.record(duration_s=0.5, moves=10)
        second = stats.record(duration_s=0.4, moves=5)
        assert first.iteration == 1
        assert second.iteration == 2

    def test_defaults(self):
        stats = RunStats()
        record = stats.record(duration_s=1.0, moves=3)
        assert np.isnan(record.cost)
        assert np.isnan(record.mean_shortlist)
        assert record.n_empty_clusters == 0

    def test_immutable_records(self):
        record = IterationStats(1, 0.1, 2, 3.0, 4.0)
        try:
            record.moves = 99
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestAggregates:
    def build(self):
        stats = RunStats(algorithm="MH", setup_s=2.0)
        stats.record(duration_s=1.0, moves=100, cost=50.0, mean_shortlist=3.0)
        stats.record(duration_s=0.5, moves=10, cost=40.0, mean_shortlist=2.0)
        stats.record(duration_s=0.5, moves=0, cost=40.0, mean_shortlist=2.0)
        stats.converged = True
        return stats

    def test_series(self):
        stats = self.build()
        assert stats.iteration_times == [1.0, 0.5, 0.5]
        assert stats.moves_per_iteration == [100, 10, 0]
        assert stats.shortlist_sizes == [3.0, 2.0, 2.0]
        assert stats.costs == [50.0, 40.0, 40.0]

    def test_totals(self):
        stats = self.build()
        assert stats.total_time_s == 4.0  # setup + iterations
        assert stats.mean_iteration_s == (2.0 / 3)
        assert stats.total_moves == 110
        assert stats.n_iterations == 3

    def test_empty_run(self):
        stats = RunStats()
        assert stats.total_time_s == 0.0
        assert stats.mean_iteration_s == 0.0
        assert stats.total_moves == 0

    def test_to_rows(self):
        rows = self.build().to_rows()
        assert len(rows) == 3
        assert rows[0]["algorithm"] == "MH"
        assert rows[2]["moves"] == 0

    def test_summary(self):
        summary = self.build().summary()
        assert summary["algorithm"] == "MH"
        assert summary["n_iterations"] == 3
        assert summary["converged"] is True
        assert summary["setup_s"] == 2.0
