"""Unit tests for repro.lsh.tokens."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.lsh.hashing import MERSENNE_PRIME_31
from repro.lsh.tokens import TokenSets, encode_categorical_tokens


class TestEncodeCategoricalTokens:
    def test_offsets_separate_columns(self):
        X = np.array([[3, 3], [3, 3]])
        tokens = encode_categorical_tokens(X, domain_size=10)
        # Same value in different columns must encode differently.
        assert tokens[0, 0] != tokens[0, 1]
        assert tokens[0, 0] == 3
        assert tokens[0, 1] == 13

    def test_inferred_domain(self):
        X = np.array([[0, 7], [2, 1]])
        tokens = encode_categorical_tokens(X)
        assert tokens[0, 1] == 8 + 7  # domain inferred as 8

    def test_explicit_domain_validated(self):
        with pytest.raises(DataValidationError):
            encode_categorical_tokens(np.array([[5]]), domain_size=5)

    def test_rejects_negative_codes(self):
        with pytest.raises(DataValidationError):
            encode_categorical_tokens(np.array([[-1, 0]]))

    def test_rejects_non_integer(self):
        with pytest.raises(DataValidationError):
            encode_categorical_tokens(np.array([[0.5, 1.0]]))

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            encode_categorical_tokens(np.array([1, 2, 3]))

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            encode_categorical_tokens(np.empty((0, 3), dtype=np.int64))

    def test_rejects_token_overflow(self):
        X = np.array([[0, 1]])
        with pytest.raises(DataValidationError):
            encode_categorical_tokens(X, domain_size=MERSENNE_PRIME_31)

    def test_tokens_unique_across_cells(self):
        X = np.arange(12).reshape(3, 4) % 5
        tokens = encode_categorical_tokens(X, domain_size=5)
        # Every (column, value) pair maps to a distinct token.
        pairs = {(j, X[i, j]) for i in range(3) for j in range(4)}
        assert len(np.unique(tokens)) == len(pairs)


class TestTokenSetsConstruction:
    def test_from_lists_roundtrip(self):
        rows = [[1, 2, 3], [], [7]]
        ts = TokenSets.from_lists(rows)
        assert len(ts) == 3
        assert ts[0].tolist() == [1, 2, 3]
        assert ts[1].tolist() == []
        assert ts[2].tolist() == [7]

    def test_lengths(self):
        ts = TokenSets.from_lists([[1], [2, 3], []])
        assert ts.lengths.tolist() == [1, 2, 0]

    def test_negative_index(self):
        ts = TokenSets.from_lists([[1], [2, 3]])
        assert ts[-1].tolist() == [2, 3]

    def test_out_of_range_index(self):
        ts = TokenSets.from_lists([[1]])
        with pytest.raises(IndexError):
            ts[1]
        with pytest.raises(IndexError):
            ts[-2]

    def test_iteration(self):
        rows = [[1, 2], [3]]
        ts = TokenSets.from_lists(rows)
        assert [row.tolist() for row in ts] == rows

    def test_row_set(self):
        ts = TokenSets.from_lists([[5, 5, 2]])
        assert ts.row_set(0) == {5, 2}

    def test_n_tokens(self):
        ts = TokenSets.from_lists([[1, 2], [3], []])
        assert ts.n_tokens == 3

    def test_max_token(self):
        assert TokenSets.from_lists([[1, 99], [2]]).max_token() == 99
        assert TokenSets.from_lists([[], []]).max_token() == -1

    def test_empty_collection(self):
        ts = TokenSets.from_lists([])
        assert len(ts) == 0
        assert ts.n_tokens == 0

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(DataValidationError):
            TokenSets(np.array([1]), np.array([1, 1]))

    def test_rejects_indptr_end_mismatch(self):
        with pytest.raises(DataValidationError):
            TokenSets(np.array([1, 2]), np.array([0, 1]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(DataValidationError):
            TokenSets(np.array([1, 2]), np.array([0, 2, 1, 2]))

    def test_rejects_negative_tokens(self):
        with pytest.raises(DataValidationError):
            TokenSets(np.array([-1]), np.array([0, 1]))


class TestTokenSetsFromMatrices:
    def test_from_categorical_matrix_dense(self):
        X = np.array([[0, 1], [2, 3]])
        ts = TokenSets.from_categorical_matrix(X, domain_size=4)
        assert len(ts) == 2
        assert ts[0].tolist() == [0, 4 + 1]
        assert ts[1].tolist() == [2, 4 + 3]

    def test_from_categorical_matrix_absent_filtering(self):
        # Value 0 marks "not present"; only present cells become tokens.
        X = np.array([[0, 1, 1], [1, 0, 0]])
        ts = TokenSets.from_categorical_matrix(X, domain_size=2, absent_code=0)
        assert ts.lengths.tolist() == [2, 1]
        assert ts[1].tolist() == [1]  # column 0, value 1

    def test_absent_filtering_can_empty_a_row(self):
        X = np.array([[0, 0], [1, 1]])
        ts = TokenSets.from_categorical_matrix(X, domain_size=2, absent_code=0)
        assert ts.lengths.tolist() == [0, 2]

    def test_from_binary_matrix(self):
        B = np.array([[1, 0, 1], [0, 0, 0]])
        ts = TokenSets.from_binary_matrix(B)
        assert ts[0].tolist() == [0, 2]
        assert ts[1].tolist() == []

    def test_from_binary_matrix_rejects_1d(self):
        with pytest.raises(DataValidationError):
            TokenSets.from_binary_matrix(np.array([1, 0]))

    def test_from_csr(self):
        sparse = pytest.importorskip("scipy.sparse")
        mat = sparse.csr_matrix(np.array([[1, 0], [1, 1]]))
        ts = TokenSets.from_csr(mat)
        assert ts[0].tolist() == [0]
        assert sorted(ts[1].tolist()) == [0, 1]

    def test_binary_matches_categorical_with_filter(self):
        rng = np.random.default_rng(3)
        B = (rng.random((20, 15)) < 0.3).astype(np.int64)
        from_binary = TokenSets.from_binary_matrix(B)
        # With domain 2 and absent_code 0, the present token for column
        # j is j*2 + 1 — the same sets up to an affine relabelling.
        from_cat = TokenSets.from_categorical_matrix(B, domain_size=2, absent_code=0)
        for i in range(20):
            assert np.array_equal(from_cat[i], from_binary[i] * 2 + 1)
