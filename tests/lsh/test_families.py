"""Unit tests for the LSH family registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lsh.families import (
    LSHFamily,
    available_families,
    get_family,
    register_family,
)
from repro.lsh.minhash import MinHasher
from repro.lsh.pstable import PStableHasher
from repro.lsh.simhash import SimHasher


class TestRegistry:
    def test_builtins_registered(self):
        names = available_families()
        assert {"minhash", "simhash", "pstable"} <= set(names)

    def test_get_minhash(self):
        family = get_family("minhash", n_hashes=16, seed=1)
        assert isinstance(family, MinHasher)
        assert family.n_hashes == 16

    def test_get_simhash(self):
        assert isinstance(get_family("simhash", n_hashes=8, seed=0), SimHasher)

    def test_get_pstable(self):
        assert isinstance(get_family("pstable", n_hashes=8, seed=0), PStableHasher)

    def test_lookup_case_insensitive(self):
        assert isinstance(get_family("MinHash", n_hashes=4, seed=0), MinHasher)

    def test_unknown_family_raises(self):
        with pytest.raises(ConfigurationError, match="unknown LSH family"):
            get_family("no-such-family", n_hashes=4)

    def test_reregistering_same_factory_is_noop(self):
        register_family("minhash", MinHasher)  # must not raise

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_family("minhash", SimHasher)

    def test_custom_family_registration(self):
        class Constant:
            def __init__(self, n_hashes: int = 1, seed: int = 0):
                self.n_hashes = n_hashes

            def signatures(self, data):
                return np.zeros((len(data), self.n_hashes), dtype=np.int64)

        register_family("constant-test", Constant)
        family = get_family("constant-test", n_hashes=3)
        assert family.signatures([1, 2]).shape == (2, 3)


class TestProtocol:
    def test_builtin_families_satisfy_protocol(self):
        for name in ("minhash", "simhash", "pstable"):
            family = get_family(name, n_hashes=4, seed=0)
            assert isinstance(family, LSHFamily)
