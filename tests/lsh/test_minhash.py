"""Unit tests for repro.lsh.minhash (Algorithm 1)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.hashing import MERSENNE_PRIME_31
from repro.lsh.minhash import EMPTY_SLOT, MinHasher
from repro.lsh.tokens import TokenSets, encode_categorical_tokens
from repro.metrics.jaccard import jaccard_similarity


class TestSignature:
    def test_shape_and_dtype(self):
        sig = MinHasher(32, seed=0).signature(np.array([1, 2, 3]))
        assert sig.shape == (32,)
        assert sig.dtype == np.int64

    def test_deterministic(self):
        tokens = np.array([5, 10, 15])
        assert np.array_equal(
            MinHasher(16, seed=1).signature(tokens),
            MinHasher(16, seed=1).signature(tokens),
        )

    def test_order_invariant(self):
        mh = MinHasher(16, seed=2)
        assert np.array_equal(
            mh.signature(np.array([1, 2, 3])), mh.signature(np.array([3, 1, 2]))
        )

    def test_duplicate_invariant(self):
        mh = MinHasher(16, seed=2)
        assert np.array_equal(
            mh.signature(np.array([1, 2])), mh.signature(np.array([1, 2, 2, 1]))
        )

    def test_identical_sets_identical_signatures(self):
        mh = MinHasher(64, seed=3)
        a = mh.signature(np.array([9, 8, 7]))
        b = mh.signature(np.array([7, 8, 9]))
        assert np.array_equal(a, b)

    def test_empty_tokens_get_sentinel(self):
        sig = MinHasher(8, seed=0).signature(np.array([], dtype=np.int64))
        assert np.all(sig == EMPTY_SLOT)

    def test_sentinel_never_collides_with_real_hash(self):
        mh = MinHasher(64, seed=4)
        sig = mh.signature(np.arange(100))
        assert sig.max() < EMPTY_SLOT

    def test_signature_is_min_over_token_hashes(self):
        mh = MinHasher(8, seed=5)
        tokens = np.array([10, 20, 30])
        per_token = np.stack([mh.signature(np.array([t])) for t in tokens])
        assert np.array_equal(mh.signature(tokens), per_token.min(axis=0))

    def test_rejects_2d(self):
        with pytest.raises(DataValidationError):
            MinHasher(4, seed=0).signature(np.zeros((2, 2), dtype=np.int64))

    def test_rejects_out_of_domain_tokens(self):
        with pytest.raises(DataValidationError):
            MinHasher(4, seed=0).signature(np.array([MERSENNE_PRIME_31]))

    def test_rejects_nonpositive_hash_count(self):
        with pytest.raises(ConfigurationError):
            MinHasher(0, seed=0)


class TestBatchedSignatures:
    def test_matches_single_item_path(self):
        rows = [[1, 2, 3], [4], [], [100, 200]]
        ts = TokenSets.from_lists(rows)
        mh = MinHasher(24, seed=7)
        batch = mh.signatures(ts)
        for i, row in enumerate(rows):
            expected = mh.signature(np.array(row, dtype=np.int64))
            assert np.array_equal(batch[i], expected), f"row {i}"

    def test_empty_collection(self):
        out = MinHasher(8, seed=0).signatures(TokenSets.from_lists([]))
        assert out.shape == (0, 8)

    def test_all_empty_rows(self):
        out = MinHasher(8, seed=0).signatures(TokenSets.from_lists([[], []]))
        assert np.all(out == EMPTY_SLOT)

    def test_matrix_path_matches_ragged(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 50, (30, 6))
        tokens = encode_categorical_tokens(X, domain_size=50)
        mh = MinHasher(16, seed=9)
        ragged = mh.signatures(TokenSets.from_categorical_matrix(X, domain_size=50))
        dense = mh.signatures_matrix(tokens)
        assert np.array_equal(ragged, dense)

    def test_matrix_path_rejects_zero_columns(self):
        with pytest.raises(DataValidationError):
            MinHasher(4, seed=0).signatures_matrix(np.empty((3, 0), dtype=np.int64))

    def test_matrix_path_rejects_1d(self):
        with pytest.raises(DataValidationError):
            MinHasher(4, seed=0).signatures_matrix(np.array([1, 2]))

    def test_batch_rejects_out_of_domain(self):
        ts = TokenSets.from_lists([[MERSENNE_PRIME_31]])
        with pytest.raises(DataValidationError):
            MinHasher(4, seed=0).signatures(ts)


class TestJaccardEstimation:
    def test_collision_rate_approximates_jaccard(self):
        # The defining MinHash property, checked at 3 similarity levels.
        rng = np.random.default_rng(1)
        mh = MinHasher(2048, seed=11)
        for overlap in (0.2, 0.5, 0.8):
            size = 300
            shared = rng.choice(10_000, size=int(size * overlap), replace=False)
            only_a = rng.choice(np.arange(10_000, 20_000), size - len(shared), False)
            only_b = rng.choice(np.arange(20_000, 30_000), size - len(shared), False)
            a = np.concatenate([shared, only_a])
            b = np.concatenate([shared, only_b])
            true = jaccard_similarity(a.tolist(), b.tolist())
            estimate = MinHasher.estimate_jaccard(mh.signature(a), mh.signature(b))
            assert abs(estimate - true) < 0.05, f"overlap={overlap}"

    def test_identical_sets_estimate_one(self):
        mh = MinHasher(32, seed=0)
        sig = mh.signature(np.array([1, 2, 3]))
        assert MinHasher.estimate_jaccard(sig, sig) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        mh = MinHasher(512, seed=0)
        a = mh.signature(np.arange(0, 300))
        b = mh.signature(np.arange(10_000, 10_300))
        assert MinHasher.estimate_jaccard(a, b) < 0.05

    def test_empty_sets_estimate_one(self):
        # Jaccard(∅, ∅) = 1 by the library's sentinel convention.
        mh = MinHasher(16, seed=0)
        empty = np.array([], dtype=np.int64)
        assert MinHasher.estimate_jaccard(
            mh.signature(empty), mh.signature(empty)
        ) == 1.0

    def test_empty_vs_nonempty_estimate_zero(self):
        mh = MinHasher(16, seed=0)
        a = mh.signature(np.array([], dtype=np.int64))
        b = mh.signature(np.array([1, 2, 3]))
        assert MinHasher.estimate_jaccard(a, b) == 0.0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(DataValidationError):
            MinHasher.estimate_jaccard(np.zeros(4), np.zeros(5))

    def test_rejects_empty_signatures(self):
        with pytest.raises(DataValidationError):
            MinHasher.estimate_jaccard(np.zeros(0), np.zeros(0))
