"""Unit tests for repro.lsh.hashing."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lsh.hashing import (
    MERSENNE_PRIME_31,
    UniversalHashFamily,
    splitmix64,
    stable_string_hash,
)


class TestUniversalHashFamily:
    def test_output_shape(self):
        family = UniversalHashFamily(8, seed=0)
        out = family.hash_values(np.arange(5))
        assert out.shape == (8, 5)

    def test_values_within_modulus(self):
        family = UniversalHashFamily(16, seed=1)
        out = family.hash_values(np.arange(1000))
        assert out.min() >= 0
        assert out.max() < MERSENNE_PRIME_31

    def test_deterministic_given_seed(self):
        x = np.arange(100)
        a = UniversalHashFamily(4, seed=42).hash_values(x)
        b = UniversalHashFamily(4, seed=42).hash_values(x)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        x = np.arange(100)
        a = UniversalHashFamily(4, seed=1).hash_values(x)
        b = UniversalHashFamily(4, seed=2).hash_values(x)
        assert not np.array_equal(a, b)

    def test_mersenne_reduction_matches_modulo(self):
        family = UniversalHashFamily(8, seed=3)
        rng = np.random.default_rng(0)
        x = rng.integers(0, MERSENNE_PRIME_31, size=2_000)
        expected = (
            family._a[:, None] * x[None, :] + family._b[:, None]
        ) % MERSENNE_PRIME_31
        assert np.array_equal(family.hash_values(x), expected)

    def test_hash_with_matches_hash_values(self):
        family = UniversalHashFamily(6, seed=5)
        x = np.arange(50)
        full = family.hash_values(x)
        for i in range(6):
            assert np.array_equal(family.hash_with(i, x), full[i])

    def test_nonzero_a_coefficients(self):
        family = UniversalHashFamily(512, seed=9)
        a, _ = family.coefficients
        assert np.all(a > 0)

    def test_small_prime_fallback(self):
        family = UniversalHashFamily(4, seed=0, prime=97)
        out = family.hash_values(np.arange(50))
        assert out.max() < 97

    def test_len(self):
        assert len(UniversalHashFamily(7, seed=0)) == 7

    def test_rejects_nonpositive_n_hashes(self):
        with pytest.raises(ConfigurationError):
            UniversalHashFamily(0, seed=0)

    def test_rejects_bad_prime(self):
        with pytest.raises(ConfigurationError):
            UniversalHashFamily(4, seed=0, prime=1)

    def test_rejects_2d_input(self):
        family = UniversalHashFamily(4, seed=0)
        with pytest.raises(ValueError):
            family.hash_values(np.zeros((2, 2), dtype=np.int64))

    def test_coefficients_are_copies(self):
        family = UniversalHashFamily(4, seed=0)
        a, _ = family.coefficients
        a[:] = 0
        assert np.all(family.coefficients[0] > 0)


class TestStableStringHash:
    def test_deterministic(self):
        assert stable_string_hash("zoo-1") == stable_string_hash("zoo-1")

    def test_within_range(self):
        for word in ("a", "zoo-0", "zoo-1", "überstraße", ""):
            assert 0 <= stable_string_hash(word) < MERSENNE_PRIME_31

    def test_distinct_for_similar_strings(self):
        assert stable_string_hash("zoo-0") != stable_string_hash("zoo-1")

    def test_custom_prime(self):
        assert 0 <= stable_string_hash("x", prime=101) < 101

    def test_distribution_roughly_uniform(self):
        values = np.array(
            [stable_string_hash(f"word{i}") for i in range(4_000)], dtype=np.float64
        )
        normalised = values / MERSENNE_PRIME_31
        assert abs(normalised.mean() - 0.5) < 0.03
        # Quartiles should each hold about a quarter of the values.
        counts, _ = np.histogram(normalised, bins=4, range=(0, 1))
        assert counts.min() > 0.2 * len(values) / 4 * 3


class TestSplitmix64:
    def test_deterministic(self):
        x = np.arange(10, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_avalanche_on_single_bit(self):
        a = splitmix64(np.array([0], dtype=np.uint64))[0]
        b = splitmix64(np.array([1], dtype=np.uint64))[0]
        flipped = bin(int(a) ^ int(b)).count("1")
        assert 16 <= flipped <= 48  # roughly half of 64 bits

    def test_no_collisions_on_small_range(self):
        out = splitmix64(np.arange(100_000, dtype=np.uint64))
        assert len(np.unique(out)) == 100_000

    def test_does_not_mutate_input(self):
        x = np.arange(5, dtype=np.uint64)
        splitmix64(x)
        assert np.array_equal(x, np.arange(5, dtype=np.uint64))
