"""Unit tests for repro.lsh.bands."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.bands import (
    band_probability,
    compute_band_keys,
    threshold_similarity,
    validate_bands_rows,
)


class TestComputeBandKeys:
    def test_shape(self):
        sigs = np.arange(24).reshape(2, 12)
        keys = compute_band_keys(sigs, bands=4, rows=3)
        assert keys.shape == (2, 4)
        assert keys.dtype == np.uint64

    def test_identical_bands_collide(self):
        a = np.array([[1, 2, 3, 4]])
        b = np.array([[1, 2, 9, 9]])
        keys_a = compute_band_keys(a, bands=2, rows=2)
        keys_b = compute_band_keys(b, bands=2, rows=2)
        assert keys_a[0, 0] == keys_b[0, 0]  # first band equal
        assert keys_a[0, 1] != keys_b[0, 1]  # second band differs

    def test_band_spaces_do_not_overlap(self):
        # Same row values in different band positions must not produce
        # the same key ("no overlapping between bands" in the paper).
        sig = np.array([[7, 7]])
        keys = compute_band_keys(sig, bands=2, rows=1)
        assert keys[0, 0] != keys[0, 1]

    def test_deterministic(self):
        sigs = np.arange(40).reshape(4, 10)
        assert np.array_equal(
            compute_band_keys(sigs, 5, 2), compute_band_keys(sigs, 5, 2)
        )

    def test_row_order_within_band_matters(self):
        a = compute_band_keys(np.array([[1, 2]]), bands=1, rows=2)
        b = compute_band_keys(np.array([[2, 1]]), bands=1, rows=2)
        assert a[0, 0] != b[0, 0]

    def test_rejects_width_mismatch(self):
        with pytest.raises(DataValidationError):
            compute_band_keys(np.zeros((2, 10), dtype=np.int64), bands=3, rows=3)

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            compute_band_keys(np.zeros(10, dtype=np.int64), bands=5, rows=2)

    def test_single_band_single_row(self):
        keys = compute_band_keys(np.array([[3], [3], [4]]), bands=1, rows=1)
        assert keys[0, 0] == keys[1, 0]
        assert keys[0, 0] != keys[2, 0]


class TestBandProbability:
    def test_matches_closed_form(self):
        s, b, r = 0.3, 20, 5
        assert band_probability(s, b, r) == pytest.approx(1 - (1 - s**r) ** b)

    def test_monotone_in_similarity(self):
        probs = [band_probability(s, 20, 5) for s in np.linspace(0, 1, 11)]
        assert all(x <= y + 1e-12 for x, y in zip(probs, probs[1:]))

    def test_monotone_in_bands(self):
        assert band_probability(0.3, 50, 5) > band_probability(0.3, 20, 5)

    def test_antitone_in_rows(self):
        assert band_probability(0.3, 20, 2) > band_probability(0.3, 20, 5)

    def test_extremes(self):
        assert band_probability(0.0, 10, 2) == 0.0
        assert band_probability(1.0, 10, 2) == 1.0

    def test_rejects_out_of_range_similarity(self):
        with pytest.raises(DataValidationError):
            band_probability(1.5, 10, 2)
        with pytest.raises(DataValidationError):
            band_probability(-0.1, 10, 2)

    def test_paper_table1_row(self):
        # Table I: bands=10, s=0.1, r=1 → 0.65.
        assert band_probability(0.1, 10, 1) == pytest.approx(0.65, abs=0.005)


class TestThresholdSimilarity:
    def test_closed_form(self):
        assert threshold_similarity(20, 5) == pytest.approx((1 / 20) ** (1 / 5))

    def test_half_probability_at_threshold(self):
        # The threshold is where the S-curve crosses ~50 %.
        for b, r in ((20, 5), (50, 5), (10, 2)):
            s = threshold_similarity(b, r)
            assert 0.35 < band_probability(s, b, r) < 0.75

    def test_single_band_single_row(self):
        assert threshold_similarity(1, 1) == 1.0

    def test_more_bands_lower_threshold(self):
        assert threshold_similarity(100, 5) < threshold_similarity(10, 5)


class TestValidation:
    @pytest.mark.parametrize("bands,rows", [(0, 1), (1, 0), (-1, 2), (2, -5)])
    def test_rejects_nonpositive(self, bands, rows):
        with pytest.raises(ConfigurationError):
            validate_bands_rows(bands, rows)

    def test_accepts_positive(self):
        validate_bands_rows(1, 1)  # must not raise
