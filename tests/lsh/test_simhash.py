"""Unit tests for repro.lsh.simhash."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.simhash import SimHasher


class TestSignatures:
    def test_bits_only(self):
        rng = np.random.default_rng(0)
        sigs = SimHasher(32, seed=1).signatures(rng.standard_normal((10, 5)))
        assert sigs.shape == (10, 32)
        assert set(np.unique(sigs)) <= {0, 1}

    def test_deterministic(self):
        X = np.random.default_rng(0).standard_normal((5, 4))
        a = SimHasher(16, seed=7).signatures(X)
        b = SimHasher(16, seed=7).signatures(X)
        assert np.array_equal(a, b)

    def test_scale_invariant(self):
        # SimHash depends only on direction, not magnitude.
        X = np.random.default_rng(1).standard_normal((6, 8))
        hasher = SimHasher(32, seed=2)
        assert np.array_equal(hasher.signatures(X), hasher.signatures(X * 100.0))

    def test_opposite_vectors_disagree_everywhere(self):
        hasher = SimHasher(64, seed=3)
        x = np.random.default_rng(2).standard_normal(10)
        a = hasher.signature(x)
        b = hasher.signature(-x)
        # Hyperplanes through the origin always separate x from -x.
        assert np.all(a != b)

    def test_feature_count_locked_after_first_use(self):
        hasher = SimHasher(8, seed=0)
        hasher.signatures(np.zeros((2, 3)))
        with pytest.raises(DataValidationError):
            hasher.signatures(np.zeros((2, 4)))

    def test_explicit_feature_count(self):
        hasher = SimHasher(8, seed=0, n_features=5)
        with pytest.raises(DataValidationError):
            hasher.signatures(np.zeros((1, 4)))

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            SimHasher(8, seed=0).signatures(np.zeros(4))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            SimHasher(0, seed=0)
        with pytest.raises(ConfigurationError):
            SimHasher(4, seed=0, n_features=0)


class TestCosineEstimation:
    def test_estimates_cosine_similarity(self):
        rng = np.random.default_rng(5)
        hasher = SimHasher(4096, seed=6)
        for target in (0.9, 0.5, 0.0):
            x = rng.standard_normal(50)
            x /= np.linalg.norm(x)
            noise = rng.standard_normal(50)
            noise -= (noise @ x) * x
            noise /= np.linalg.norm(noise)
            y = target * x + np.sqrt(1 - target**2) * noise
            estimate = SimHasher.estimate_cosine(
                hasher.signature(x), hasher.signature(y)
            )
            assert abs(estimate - target) < 0.08, f"target={target}"

    def test_identical_vectors_estimate_one(self):
        hasher = SimHasher(128, seed=0)
        sig = hasher.signature(np.arange(1, 6, dtype=np.float64))
        assert SimHasher.estimate_cosine(sig, sig) == pytest.approx(1.0)

    def test_rejects_mismatched(self):
        with pytest.raises(DataValidationError):
            SimHasher.estimate_cosine(np.zeros(4), np.zeros(5))
