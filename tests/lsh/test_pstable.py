"""Unit tests for repro.lsh.pstable."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.pstable import PStableHasher


class TestSignatures:
    def test_shape_and_dtype(self):
        X = np.random.default_rng(0).standard_normal((7, 4))
        sigs = PStableHasher(16, seed=1, width=4.0).signatures(X)
        assert sigs.shape == (7, 16)
        assert sigs.dtype == np.int64

    def test_deterministic(self):
        X = np.random.default_rng(0).standard_normal((4, 3))
        a = PStableHasher(8, seed=5).signatures(X)
        b = PStableHasher(8, seed=5).signatures(X)
        assert np.array_equal(a, b)

    def test_identical_points_identical_cells(self):
        hasher = PStableHasher(16, seed=2)
        x = np.array([1.0, -2.0, 3.0])
        assert np.array_equal(hasher.signature(x), hasher.signature(x.copy()))

    def test_close_points_agree_more_than_far_points(self):
        rng = np.random.default_rng(3)
        hasher = PStableHasher(512, seed=4, width=4.0)
        x = rng.standard_normal(20)
        close = x + rng.normal(0, 0.05, 20)
        far = x + rng.normal(0, 10.0, 20)
        sig_x = hasher.signature(x)
        agree_close = np.mean(sig_x == hasher.signature(close))
        agree_far = np.mean(sig_x == hasher.signature(far))
        assert agree_close > 0.9
        assert agree_far < agree_close - 0.3

    def test_wider_cells_more_collisions(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(10)
        y = x + rng.normal(0, 1.0, 10)
        narrow = PStableHasher(512, seed=7, width=0.5)
        wide = PStableHasher(512, seed=7, width=20.0)
        agree_narrow = np.mean(narrow.signature(x) == narrow.signature(y))
        agree_wide = np.mean(wide.signature(x) == wide.signature(y))
        assert agree_wide > agree_narrow

    def test_feature_count_locked(self):
        hasher = PStableHasher(8, seed=0)
        hasher.signatures(np.zeros((2, 3)))
        with pytest.raises(DataValidationError):
            hasher.signatures(np.zeros((2, 5)))

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            PStableHasher(8, seed=0, width=0.0)
        with pytest.raises(ConfigurationError):
            PStableHasher(8, seed=0, width=-1.0)

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            PStableHasher(8, seed=0).signatures(np.zeros(3))

    def test_rejects_nonpositive_hashes(self):
        with pytest.raises(ConfigurationError):
            PStableHasher(0, seed=0)
