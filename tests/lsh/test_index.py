"""Unit tests for repro.lsh.index (Algorithm 2's data structure)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.lsh.index import ClusteredLSHIndex
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets


def build_index(bands=8, rows=2, precompute=True):
    """Index over 3 near-duplicate pairs + 1 outlier, clusters 0..3."""
    rows_tokens = [
        [1, 2, 3, 4],
        [1, 2, 3, 5],      # near-duplicate of item 0
        [100, 200, 300],
        [100, 200, 301],   # near-duplicate of item 2
        [9_000, 9_001],    # outlier
    ]
    ts = TokenSets.from_lists(rows_tokens)
    sigs = MinHasher(bands * rows, seed=3).signatures(ts)
    index = ClusteredLSHIndex(bands, rows, precompute_neighbours=precompute)
    index.build(sigs, np.array([0, 1, 2, 3, 4]))
    return index


class TestBuild:
    def test_requires_build_before_query(self):
        index = ClusteredLSHIndex(4, 2)
        with pytest.raises(NotFittedError):
            index.candidate_clusters(0)
        with pytest.raises(NotFittedError):
            index.stats()

    def test_rejects_mismatched_assignments(self):
        sigs = np.zeros((3, 8), dtype=np.int64)
        with pytest.raises(DataValidationError):
            ClusteredLSHIndex(4, 2).build(sigs, np.array([0, 1]))

    def test_rejects_zero_items(self):
        with pytest.raises(DataValidationError):
            ClusteredLSHIndex(4, 2).build(
                np.zeros((0, 8), dtype=np.int64), np.zeros(0, dtype=np.int64)
            )

    def test_rejects_2d_assignments(self):
        sigs = np.zeros((3, 8), dtype=np.int64)
        with pytest.raises(DataValidationError):
            ClusteredLSHIndex(4, 2).build(sigs, np.zeros((3, 1), dtype=np.int64))

    def test_rejects_bad_band_config(self):
        with pytest.raises(ConfigurationError):
            ClusteredLSHIndex(0, 2)

    def test_n_items(self):
        assert build_index().n_items == 5

    def test_build_returns_self(self):
        sigs = np.zeros((2, 8), dtype=np.int64)
        index = ClusteredLSHIndex(4, 2)
        assert index.build(sigs, np.array([0, 1])) is index


class TestQueries:
    def test_item_is_own_candidate(self):
        index = build_index()
        for i in range(5):
            assert i in index.candidate_items(i).tolist()

    def test_own_cluster_always_in_shortlist(self):
        index = build_index()
        for i in range(5):
            assert i in index.candidate_clusters(i).tolist()

    def test_near_duplicates_are_candidates(self):
        index = build_index()
        assert 1 in index.candidate_items(0).tolist()
        assert 3 in index.candidate_items(2).tolist()

    def test_outlier_isolated(self):
        index = build_index()
        assert index.candidate_items(4).tolist() == [4]

    def test_shortlist_reflects_assignments(self):
        index = build_index()
        clusters = index.candidate_clusters(0)
        assert set(clusters.tolist()) == {0, 1}

    def test_precompute_matches_on_the_fly(self):
        fast = build_index(precompute=True)
        slow = build_index(precompute=False)
        for i in range(5):
            assert np.array_equal(fast.candidate_items(i), slow.candidate_items(i))

    def test_neighbour_groups_only_when_precomputed(self):
        assert build_index(precompute=True).neighbour_groups() is not None
        assert build_index(precompute=False).neighbour_groups() is None

    def test_identical_signatures_share_group(self):
        ts = TokenSets.from_lists([[1, 2], [1, 2], [50, 60]])
        sigs = MinHasher(8, seed=0).signatures(ts)
        index = ClusteredLSHIndex(4, 2).build(sigs, np.arange(3))
        groups = index.neighbour_groups()
        assert groups is not None
        group_of, _ = groups
        assert group_of[0] == group_of[1]
        assert group_of[0] != group_of[2]

    def test_candidates_sorted_unique(self):
        index = build_index()
        for i in range(5):
            c = index.candidate_items(i)
            assert np.array_equal(c, np.unique(c))


class TestNovelSignatureQueries:
    def test_known_signature_finds_cluster(self):
        ts = TokenSets.from_lists([[1, 2, 3, 4], [1, 2, 3, 5]])
        mh = MinHasher(16, seed=3)
        sigs = mh.signatures(ts)
        index = ClusteredLSHIndex(8, 2).build(sigs, np.array([7, 7]))
        novel = mh.signature(np.array([1, 2, 3, 4]))  # identical to item 0
        assert index.candidate_clusters_for_signature(novel).tolist() == [7]

    def test_unrelated_signature_returns_empty(self):
        index = build_index()
        mh = MinHasher(16, seed=3)
        novel = mh.signature(np.array([777_777, 888_888]))
        assert index.candidate_clusters_for_signature(novel).size == 0


class TestAssignmentUpdates:
    def test_update_assignment_changes_shortlist(self):
        index = build_index()
        index.update_assignment(1, 9)
        assert 9 in index.candidate_clusters(0).tolist()

    def test_set_assignments_bulk(self):
        index = build_index()
        index.set_assignments(np.array([5, 5, 5, 5, 5]))
        assert index.candidate_clusters(0).tolist() == [5]

    def test_set_assignments_shape_checked(self):
        index = build_index()
        with pytest.raises(DataValidationError):
            index.set_assignments(np.array([1, 2]))

    def test_assignments_property_is_copy(self):
        index = build_index()
        copy = index.assignments
        copy[:] = 99
        assert not np.array_equal(index.assignments, copy)

    def test_assignments_view_is_live(self):
        index = build_index()
        view = index.assignments_view()
        view[0] = 42
        assert index.assignments[0] == 42
        assert 42 in index.candidate_clusters(1).tolist()

    def test_set_assignments_copies_input(self):
        index = build_index()
        arr = np.array([0, 0, 0, 0, 0])
        index.set_assignments(arr)
        arr[0] = 77
        assert index.assignments[0] == 0


class TestStats:
    def test_stats_fields(self):
        stats = build_index().stats()
        assert stats.n_items == 5
        assert stats.bands == 8
        assert stats.rows == 2
        assert stats.n_buckets > 0
        assert stats.max_bucket_size >= 1
        assert stats.mean_bucket_size > 0
        assert stats.mean_neighbours >= 1.0

    def test_mean_neighbours_nan_without_precompute(self):
        stats = build_index(precompute=False).stats()
        assert np.isnan(stats.mean_neighbours)

    def test_bucket_count_bounded_by_bands_times_items(self):
        index = build_index()
        stats = index.stats()
        assert stats.n_buckets <= 8 * 5


class TestInsertBatch:
    """insert_batch == insert row by row, on both table layouts."""

    @staticmethod
    def _signatures(n, width, seed=11):
        rng = np.random.default_rng(seed)
        ts = TokenSets.from_lists(
            [rng.integers(0, 50, size=rng.integers(1, 6)).tolist() for _ in range(n)]
        )
        return MinHasher(width, seed=5).signatures(ts)

    def _fresh_pair(self, sharded):
        from repro.engine.sharded_index import ShardedClusteredLSHIndex

        sigs = self._signatures(12, 16)
        assignments = np.arange(12) % 4
        if sharded:
            make = lambda: ShardedClusteredLSHIndex(
                8, 2, n_shards=3, precompute_neighbours=False
            ).build(sigs, assignments)
        else:
            make = lambda: ClusteredLSHIndex(
                8, 2, precompute_neighbours=False
            ).build(sigs, assignments)
        return make(), make()

    @pytest.mark.parametrize("sharded", [False, True])
    def test_matches_sequential_insert(self, sharded):
        batched, sequential = self._fresh_pair(sharded)
        new_sigs = self._signatures(9, 16, seed=77)
        clusters = np.array([3, 1, 0, 2, 2, 1, 0, 3, 1])
        ids = batched.insert_batch(new_sigs, clusters)
        expected = [sequential.insert(s, int(c)) for s, c in zip(new_sigs, clusters)]
        assert ids.tolist() == expected
        assert batched.n_items == sequential.n_items == 21
        assert np.array_equal(batched.assignments, sequential.assignments)
        assert np.array_equal(batched.band_keys, sequential.band_keys)
        for item in range(21):
            assert np.array_equal(
                batched.candidate_items(item), sequential.candidate_items(item)
            )
        probe = self._signatures(5, 16, seed=99)
        for sig in probe:
            assert np.array_equal(
                batched.candidate_clusters_for_signature(sig),
                sequential.candidate_clusters_for_signature(sig),
            )

    @pytest.mark.parametrize("sharded", [False, True])
    def test_precomputed_band_keys_are_equivalent(self, sharded):
        from repro.lsh.bands import compute_band_keys

        with_keys, without = self._fresh_pair(sharded)
        new_sigs = self._signatures(6, 16, seed=42)
        clusters = np.array([0, 1, 2, 3, 0, 1])
        keys = compute_band_keys(new_sigs, 8, 2)
        with_keys.insert_batch(new_sigs, clusters, band_keys=keys)
        without.insert_batch(new_sigs, clusters)
        assert np.array_equal(with_keys.band_keys, without.band_keys)
        assert np.array_equal(with_keys.assignments, without.assignments)

    def test_empty_batch_is_a_noop(self):
        index, _ = self._fresh_pair(False)
        ids = index.insert_batch(
            np.empty((0, 16), dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert ids.shape == (0,)
        assert index.n_items == 12

    def test_rejects_precomputed_neighbours(self):
        index = build_index(precompute=True)
        sigs = self._signatures(2, 16)
        with pytest.raises(ConfigurationError):
            index.insert_batch(sigs, np.array([0, 1]))

    def test_rejects_frozen_index(self):
        index = build_index(precompute=False)
        index.freeze()
        sigs = self._signatures(2, 16)
        with pytest.raises(ConfigurationError):
            index.insert_batch(sigs, np.array([0, 1]))

    def test_validates_shapes(self):
        index = build_index(precompute=False)
        sigs = self._signatures(3, 16)
        with pytest.raises(DataValidationError):
            index.insert_batch(sigs, np.array([0, 1]))  # length mismatch
        with pytest.raises(DataValidationError):
            index.insert_batch(sigs[0], np.array([0]))  # 1-D signatures
        with pytest.raises(DataValidationError):
            index.insert_batch(
                sigs, np.array([0, 1, 2]), band_keys=np.zeros((3, 5), dtype=np.uint64)
            )  # wrong band count

    def test_growth_stays_amortised_over_many_batches(self):
        index = build_index(precompute=False)
        for chunk in range(10):
            sigs = self._signatures(7, 16, seed=chunk)
            index.insert_batch(sigs, np.arange(7) % 4)
        assert index.n_items == 5 + 70
        assert len(index._keys_buf) >= index.n_items
