"""Unit tests for repro.lsh.index (Algorithm 2's data structure)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.lsh.index import ClusteredLSHIndex
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets


def build_index(bands=8, rows=2, precompute=True):
    """Index over 3 near-duplicate pairs + 1 outlier, clusters 0..3."""
    rows_tokens = [
        [1, 2, 3, 4],
        [1, 2, 3, 5],      # near-duplicate of item 0
        [100, 200, 300],
        [100, 200, 301],   # near-duplicate of item 2
        [9_000, 9_001],    # outlier
    ]
    ts = TokenSets.from_lists(rows_tokens)
    sigs = MinHasher(bands * rows, seed=3).signatures(ts)
    index = ClusteredLSHIndex(bands, rows, precompute_neighbours=precompute)
    index.build(sigs, np.array([0, 1, 2, 3, 4]))
    return index


class TestBuild:
    def test_requires_build_before_query(self):
        index = ClusteredLSHIndex(4, 2)
        with pytest.raises(NotFittedError):
            index.candidate_clusters(0)
        with pytest.raises(NotFittedError):
            index.stats()

    def test_rejects_mismatched_assignments(self):
        sigs = np.zeros((3, 8), dtype=np.int64)
        with pytest.raises(DataValidationError):
            ClusteredLSHIndex(4, 2).build(sigs, np.array([0, 1]))

    def test_rejects_zero_items(self):
        with pytest.raises(DataValidationError):
            ClusteredLSHIndex(4, 2).build(
                np.zeros((0, 8), dtype=np.int64), np.zeros(0, dtype=np.int64)
            )

    def test_rejects_2d_assignments(self):
        sigs = np.zeros((3, 8), dtype=np.int64)
        with pytest.raises(DataValidationError):
            ClusteredLSHIndex(4, 2).build(sigs, np.zeros((3, 1), dtype=np.int64))

    def test_rejects_bad_band_config(self):
        with pytest.raises(ConfigurationError):
            ClusteredLSHIndex(0, 2)

    def test_n_items(self):
        assert build_index().n_items == 5

    def test_build_returns_self(self):
        sigs = np.zeros((2, 8), dtype=np.int64)
        index = ClusteredLSHIndex(4, 2)
        assert index.build(sigs, np.array([0, 1])) is index


class TestQueries:
    def test_item_is_own_candidate(self):
        index = build_index()
        for i in range(5):
            assert i in index.candidate_items(i).tolist()

    def test_own_cluster_always_in_shortlist(self):
        index = build_index()
        for i in range(5):
            assert i in index.candidate_clusters(i).tolist()

    def test_near_duplicates_are_candidates(self):
        index = build_index()
        assert 1 in index.candidate_items(0).tolist()
        assert 3 in index.candidate_items(2).tolist()

    def test_outlier_isolated(self):
        index = build_index()
        assert index.candidate_items(4).tolist() == [4]

    def test_shortlist_reflects_assignments(self):
        index = build_index()
        clusters = index.candidate_clusters(0)
        assert set(clusters.tolist()) == {0, 1}

    def test_precompute_matches_on_the_fly(self):
        fast = build_index(precompute=True)
        slow = build_index(precompute=False)
        for i in range(5):
            assert np.array_equal(fast.candidate_items(i), slow.candidate_items(i))

    def test_neighbour_groups_only_when_precomputed(self):
        assert build_index(precompute=True).neighbour_groups() is not None
        assert build_index(precompute=False).neighbour_groups() is None

    def test_identical_signatures_share_group(self):
        ts = TokenSets.from_lists([[1, 2], [1, 2], [50, 60]])
        sigs = MinHasher(8, seed=0).signatures(ts)
        index = ClusteredLSHIndex(4, 2).build(sigs, np.arange(3))
        groups = index.neighbour_groups()
        assert groups is not None
        group_of, _ = groups
        assert group_of[0] == group_of[1]
        assert group_of[0] != group_of[2]

    def test_candidates_sorted_unique(self):
        index = build_index()
        for i in range(5):
            c = index.candidate_items(i)
            assert np.array_equal(c, np.unique(c))


class TestNovelSignatureQueries:
    def test_known_signature_finds_cluster(self):
        ts = TokenSets.from_lists([[1, 2, 3, 4], [1, 2, 3, 5]])
        mh = MinHasher(16, seed=3)
        sigs = mh.signatures(ts)
        index = ClusteredLSHIndex(8, 2).build(sigs, np.array([7, 7]))
        novel = mh.signature(np.array([1, 2, 3, 4]))  # identical to item 0
        assert index.candidate_clusters_for_signature(novel).tolist() == [7]

    def test_unrelated_signature_returns_empty(self):
        index = build_index()
        mh = MinHasher(16, seed=3)
        novel = mh.signature(np.array([777_777, 888_888]))
        assert index.candidate_clusters_for_signature(novel).size == 0


class TestAssignmentUpdates:
    def test_update_assignment_changes_shortlist(self):
        index = build_index()
        index.update_assignment(1, 9)
        assert 9 in index.candidate_clusters(0).tolist()

    def test_set_assignments_bulk(self):
        index = build_index()
        index.set_assignments(np.array([5, 5, 5, 5, 5]))
        assert index.candidate_clusters(0).tolist() == [5]

    def test_set_assignments_shape_checked(self):
        index = build_index()
        with pytest.raises(DataValidationError):
            index.set_assignments(np.array([1, 2]))

    def test_assignments_property_is_copy(self):
        index = build_index()
        copy = index.assignments
        copy[:] = 99
        assert not np.array_equal(index.assignments, copy)

    def test_assignments_view_is_live(self):
        index = build_index()
        view = index.assignments_view()
        view[0] = 42
        assert index.assignments[0] == 42
        assert 42 in index.candidate_clusters(1).tolist()

    def test_set_assignments_copies_input(self):
        index = build_index()
        arr = np.array([0, 0, 0, 0, 0])
        index.set_assignments(arr)
        arr[0] = 77
        assert index.assignments[0] == 0


class TestStats:
    def test_stats_fields(self):
        stats = build_index().stats()
        assert stats.n_items == 5
        assert stats.bands == 8
        assert stats.rows == 2
        assert stats.n_buckets > 0
        assert stats.max_bucket_size >= 1
        assert stats.mean_bucket_size > 0
        assert stats.mean_neighbours >= 1.0

    def test_mean_neighbours_nan_without_precompute(self):
        stats = build_index(precompute=False).stats()
        assert np.isnan(stats.mean_neighbours)

    def test_bucket_count_bounded_by_bands_times_items(self):
        index = build_index()
        stats = index.stats()
        assert stats.n_buckets <= 8 * 5
