"""Backend selection: REPRO_KERNELS routing, fallback, one warning.

Selection is process-global and lazy, so every test here snapshots the
resolved backend, forces a fresh selection under a controlled
environment, and restores the original state afterwards — the rest of
the suite keeps whatever backend the session resolved first.
"""

from __future__ import annotations

import shutil
import warnings

import numpy as np
import pytest

import repro.kernels as kernels
from repro.kernels import _cbuild
from repro.kernels import _numpy as numpy_impl

P31 = (1 << 31) - 1

_HAVE_CC = shutil.which("cc") is not None


@pytest.fixture
def fresh_selection(monkeypatch):
    """Reset the cached backend; restore the session's one afterwards."""
    saved = (kernels._backend, kernels._impl_minhash, kernels._impl_counts)
    kernels._reset_backend()
    yield kernels
    (
        kernels._backend,
        kernels._impl_minhash,
        kernels._impl_counts,
    ) = saved


def _tiny_case():
    indices = np.array([3, 8, 1], dtype=np.int64)
    indptr = np.array([0, 2, 2, 3], dtype=np.int64)
    a = np.array([5, 9], dtype=np.int64)
    b = np.array([2, 4], dtype=np.int64)
    return indices, indptr, a, b


def _break_compiled(monkeypatch, tmp_path):
    """Make the C tier unbuildable: missing compiler, empty cache."""
    monkeypatch.setenv("CC", str(tmp_path / "no-such-compiler"))
    monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path / "cache"))


class TestSelection:
    def test_off_uses_numpy_silently(self, fresh_selection, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "off")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernels.active_backend() == "numpy"

    @pytest.mark.skipif(not _HAVE_CC, reason="no C toolchain available")
    def test_auto_prefers_a_compiled_backend(self, fresh_selection, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels.active_backend() in ("numba", "c")

    def test_active_backend_is_stable(self, fresh_selection, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "off")
        assert kernels.active_backend() == kernels.active_backend()
        kernels._select()  # re-selection is an idempotent no-op
        assert kernels.active_backend() == "numpy"

    def test_unrecognised_value_warns_and_uses_auto(
        self, fresh_selection, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_KERNELS", "warp-speed")
        _break_compiled(monkeypatch, tmp_path)
        with pytest.warns(RuntimeWarning) as caught:
            backend = kernels.active_backend()
        assert backend == "numpy"
        messages = [str(w.message) for w in caught]
        assert any("not recognised" in m for m in messages)
        assert any("falling back" in m for m in messages)

    def test_numba_requested_but_missing_falls_back(
        self, fresh_selection, monkeypatch
    ):
        try:
            import numba  # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("numba installed; forced-missing case not testable")
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernels.active_backend() == "numpy"


class TestForcedFallback:
    def test_unbuildable_c_warns_once_and_matches_numpy(
        self, fresh_selection, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_KERNELS", "c")
        _break_compiled(monkeypatch, tmp_path)
        indices, indptr, a, b = _tiny_case()
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = kernels.minhash_signatures(indices, indptr, a, b, P31)
        assert kernels.active_backend() == "numpy"
        assert np.array_equal(
            got, numpy_impl.minhash_signatures(indices, indptr, a, b, P31)
        )
        # the degradation is reported exactly once per process
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kernels.minhash_signatures(indices, indptr, a, b, P31)
            dense = np.zeros((1, 2, 4), dtype=np.int64)
            kernels.count_update(
                dense,
                np.array([[1, 3]], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )
        assert caught == []

    def test_fallback_count_update_matches_numpy(
        self, fresh_selection, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_KERNELS", "c")
        _break_compiled(monkeypatch, tmp_path)
        dense_got = np.zeros((2, 2, 5), dtype=np.int64)
        dense_want = dense_got.copy()
        values = np.array([[0, 4], [0, 4], [1, 2]], dtype=np.int64)
        labels = np.array([1, 1, 0], dtype=np.int64)
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = kernels.count_update(dense_got, values, labels)
        want = numpy_impl.count_update(dense_want, values, labels)
        assert np.array_equal(got, want)
        assert np.array_equal(dense_got, dense_want)

    def test_minhasher_identical_across_backends(
        self, fresh_selection, monkeypatch
    ):
        # End to end through the public API: whatever backend the
        # session resolves must agree with the forced NumPy path.
        from repro.lsh.minhash import MinHasher
        from repro.lsh.tokens import TokenSets

        rng = np.random.default_rng(11)
        X = rng.integers(0, 500, size=(30, 6))
        token_sets = TokenSets.from_categorical_matrix(X, domain_size=500)
        hasher = MinHasher(n_hashes=32, seed=5)

        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            default_sigs = hasher.signatures(token_sets)

        kernels._reset_backend()
        monkeypatch.setenv("REPRO_KERNELS", "off")
        numpy_sigs = hasher.signatures(token_sets)
        assert np.array_equal(default_sigs, numpy_sigs)


class TestBuildMachinery:
    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path / "kc"))
        assert _cbuild.build_cache_dir() == tmp_path / "kc"
        monkeypatch.delenv("REPRO_KERNELS_CACHE")
        assert "repro-kernels" in _cbuild.build_cache_dir().name

    def test_missing_compiler_raises_build_error(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CC", str(tmp_path / "no-such-compiler"))
        monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path / "cache"))
        with pytest.raises(_cbuild.KernelBuildError, match="could not compile"):
            _cbuild.load_compiled()

    def test_failing_compiler_raises_build_error(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CC", "false")  # exists, always exits 1
        monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path / "cache"))
        with pytest.raises(_cbuild.KernelBuildError, match="could not compile"):
            _cbuild.load_compiled()

    def test_unwritable_cache_raises_build_error(self, monkeypatch, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        monkeypatch.setenv("REPRO_KERNELS_CACHE", str(blocker / "cache"))
        with pytest.raises(_cbuild.KernelBuildError, match="build failed"):
            _cbuild.load_compiled()

    def test_corrupt_cached_artifact_raises_build_error(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path))
        source = _cbuild._SOURCE_PATH.read_text(encoding="utf-8")
        target = tmp_path / (
            f"repro_kernels_{_cbuild._source_digest(source)}.so"
        )
        target.write_bytes(b"this is not a shared library")
        with pytest.raises(_cbuild.KernelBuildError, match="could not load"):
            _cbuild.load_compiled()

    @pytest.mark.skipif(not _HAVE_CC, reason="no C toolchain available")
    def test_fresh_cache_compiles_and_loads(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path / "fresh"))
        monkeypatch.delenv("CC", raising=False)
        library = _cbuild.load_compiled()
        indices, indptr, a, b = _tiny_case()
        got = _cbuild.c_minhash_signatures(library, indices, indptr, a, b, P31)
        assert np.array_equal(
            got, numpy_impl.minhash_signatures(indices, indptr, a, b, P31)
        )
        # exactly one artifact landed, named by source digest
        cached = list((tmp_path / "fresh").glob("repro_kernels_*.so"))
        assert len(cached) == 1
