"""Compiled-vs-NumPy kernel conformance: bit-identical, always.

Every backend of :mod:`repro.kernels` must produce byte-for-byte the
same signatures and count tensors.  Hypothesis drives random ragged
token sets and labelled batches through the pure-NumPy implementation,
the loop-form reference oracle and (when the toolchain allows) the
compiled C backend, and asserts exact agreement — including empty
batches, empty rows, non-contiguous and narrower-dtype inputs.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels import _numpy as numpy_impl
from repro.kernels._cbuild import KernelBuildError, load_compiled
from repro.kernels._reference import reference_count_update, reference_minhash

P31 = (1 << 31) - 1

_HAVE_CC = shutil.which("cc") is not None


def _c_impl_or_none():
    if not _HAVE_CC:
        return None
    try:
        library = load_compiled()
    except KernelBuildError:  # pragma: no cover - toolchain present but broken
        return None
    from repro.kernels._cbuild import c_count_update, c_minhash_signatures

    return library, c_minhash_signatures, c_count_update


_C = _c_impl_or_none()


@st.composite
def ragged_token_sets(draw):
    """A random CSR token collection with empty rows sprinkled in."""
    n_rows = draw(st.integers(min_value=0, max_value=12))
    lengths = [
        draw(st.integers(min_value=0, max_value=9)) for _ in range(n_rows)
    ]
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    indices = np.array(
        [
            draw(st.integers(min_value=0, max_value=P31 - 1))
            for _ in range(int(indptr[-1]))
        ],
        dtype=np.int64,
    )
    n_hashes = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    a = rng.integers(1, P31, size=n_hashes, dtype=np.int64)
    b = rng.integers(0, P31, size=n_hashes, dtype=np.int64)
    return indices, indptr, a, b


class TestMinhashConformance:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=ragged_token_sets())
    def test_numpy_matches_reference_loops(self, case):
        indices, indptr, a, b = case
        vectorised = numpy_impl.minhash_signatures(indices, indptr, a, b, P31)
        looped = reference_minhash(indices, indptr, a, b, P31)
        assert vectorised.dtype == np.int64
        assert np.array_equal(vectorised, looped)

    @pytest.mark.skipif(_C is None, reason="no C toolchain available")
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=ragged_token_sets())
    def test_compiled_matches_numpy(self, case):
        indices, indptr, a, b = case
        library, c_minhash, _ = _C
        compiled = c_minhash(library, indices, indptr, a, b, P31)
        vectorised = numpy_impl.minhash_signatures(indices, indptr, a, b, P31)
        assert compiled.dtype == np.int64
        assert np.array_equal(compiled, vectorised)

    def test_empty_batch_and_all_empty_rows(self):
        a = np.array([7, 11], dtype=np.int64)
        b = np.array([1, 2], dtype=np.int64)
        none = np.array([], dtype=np.int64)
        for indptr in (
            np.array([0], dtype=np.int64),  # zero rows
            np.array([0, 0, 0], dtype=np.int64),  # two empty rows
        ):
            expected = numpy_impl.minhash_signatures(none, indptr, a, b, P31)
            assert (expected == P31).all()
            assert np.array_equal(
                reference_minhash(none, indptr, a, b, P31), expected
            )
            if _C is not None:
                library, c_minhash, _ = _C
                assert np.array_equal(
                    c_minhash(library, none, indptr, a, b, P31), expected
                )

    def test_narrow_dtype_and_non_contiguous_inputs(self):
        # The public wrapper normalises dtype/layout before dispatch.
        from repro import kernels

        indices32 = np.array([5, 9, 3, 12, 800], dtype=np.int32)
        indptr32 = np.array([0, 2, 2, 5], dtype=np.int32)
        a = np.array([3, 5, 7], dtype=np.int64)
        b = np.array([0, 1, 2], dtype=np.int64)
        strided = np.arange(10, dtype=np.int64)[::2]  # non-contiguous view
        expected = numpy_impl.minhash_signatures(
            np.ascontiguousarray(strided),
            np.array([0, 2, 5], dtype=np.int64),
            a,
            b,
            P31,
        )
        assert np.array_equal(
            kernels.minhash_signatures(
                strided, np.array([0, 2, 5], dtype=np.int64), a, b, P31
            ),
            expected,
        )
        assert np.array_equal(
            kernels.minhash_signatures(indices32, indptr32, a, b, P31),
            numpy_impl.minhash_signatures(
                indices32.astype(np.int64), indptr32.astype(np.int64), a, b, P31
            ),
        )


@st.composite
def count_batches(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=5))
    capacity = draw(st.integers(min_value=1, max_value=9))
    n_rows = draw(st.integers(min_value=0, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    dense = rng.integers(0, 50, size=(k, m, capacity)).astype(np.int64)
    values = rng.integers(0, capacity, size=(n_rows, m), dtype=np.int64)
    labels = rng.integers(0, k, size=n_rows, dtype=np.int64)
    return dense, values, labels


class TestCountUpdateConformance:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=count_batches())
    def test_numpy_matches_reference_loops(self, case):
        dense, values, labels = case
        dense_vec, dense_loop = dense.copy(), dense.copy()
        vectorised = numpy_impl.count_update(dense_vec, values, labels)
        looped = reference_count_update(dense_loop, values, labels)
        assert np.array_equal(dense_vec, dense_loop)
        assert np.array_equal(vectorised, looped)

    @pytest.mark.skipif(_C is None, reason="no C toolchain available")
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=count_batches())
    def test_compiled_matches_numpy(self, case):
        dense, values, labels = case
        library, _, c_counts = _C
        dense_c, dense_vec = dense.copy(), dense.copy()
        compiled = c_counts(library, dense_c, values, labels)
        vectorised = numpy_impl.count_update(dense_vec, values, labels)
        assert np.array_equal(dense_c, dense_vec)
        assert np.array_equal(compiled, vectorised)

    def test_duplicate_triples_all_read_final_count(self):
        # The incremental-argmax contract: every occurrence of a triple
        # reports the count *after* the whole batch landed.
        from repro import kernels

        dense = np.zeros((2, 1, 3), dtype=np.int64)
        values = np.array([[1], [1], [1]], dtype=np.int64)
        labels = np.array([0, 0, 0], dtype=np.int64)
        new_counts = kernels.count_update(dense, values, labels)
        assert new_counts.tolist() == [[3], [3], [3]]
        assert dense[0, 0, 1] == 3

    def test_empty_batch_is_a_no_op(self):
        from repro import kernels

        dense = np.arange(12, dtype=np.int64).reshape(2, 2, 3)
        before = dense.copy()
        out = kernels.count_update(
            dense,
            np.empty((0, 2), dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        assert out.shape == (0, 2)
        assert np.array_equal(dense, before)

    def test_fortran_ordered_values_are_normalised(self):
        from repro import kernels

        dense_a = np.zeros((3, 2, 4), dtype=np.int64)
        dense_b = dense_a.copy()
        values = np.asfortranarray(
            np.array([[1, 3], [0, 2], [1, 3]], dtype=np.int64)
        )
        labels = np.array([2, 0, 2], dtype=np.int64)
        got = kernels.count_update(dense_a, values, labels)
        expected = numpy_impl.count_update(
            dense_b, np.ascontiguousarray(values), labels
        )
        assert np.array_equal(got, expected)
        assert np.array_equal(dense_a, dense_b)
