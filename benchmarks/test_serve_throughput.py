"""Serving throughput — ModelServer vs single-process ClusterModel.predict.

The serving scenario on the engine-scaling workload (20 000 items,
k = 800, 60 attributes): a model is fitted, saved and re-loaded from
disk, then a stream of 10 × 2 000-row predict requests is answered by

* ``single-process/cold`` — the naive serving path: a freshly loaded
  ``ClusterModel`` answering the stream in-process, paying its lazy
  index rebuild inside the serving window (first request);
* ``single-process/warm`` — the same artifact after warm-up, i.e. the
  pure in-process predict throughput;
* ``ModelServer`` on serial / thread / process backends — index
  rebuilt once at load (``load_s``, outside the serving window, which
  is the point of a serving layer), a persistent pool kept warm
  across requests, batches chunked across workers through the shared
  request buffer.

Labels must be bit-identical along every path (asserted everywhere);
items/sec land in machine-readable
``benchmarks/results/BENCH_serve.json``, together with a ``metrics``
section: the merged registry snapshot of a metered serial run and the
measured overhead of ``ServeSpec.emit_metrics`` (on vs off on the same
stream).  The wall-clock acceptances — the process-backend server
beats single-process ``ClusterModel.predict`` on both the cold and the
warm stream (multi-core boxes; single-core boxes assert the best
backend beats the cold path instead), and request metrics stay within
the observability budget — are local-only (shared CI runners are too
noisy to gate on timing).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.api import LSHSpec, ServeSpec, TrainSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.io import load_cluster_model, save_model
from repro.kernels import active_backend
from repro.serve import ModelServer

N_ITEMS = 20_000
N_CLUSTERS = 800
N_ATTRIBUTES = 60
SEED = 2016
N_REQUESTS = 10
REQUEST_ROWS = N_ITEMS // N_REQUESTS
STREAM_REPEATS = 4

#: (label, backend, n_jobs) server configurations, process first so its
#: fork reflects the leanest heap.
SERVERS = [
    ("process x2", "process", 2),
    ("thread x2", "thread", 2),
    ("serial", "serial", None),
]


@pytest.fixture(scope="module")
def saved_model(tmp_path_factory):
    dataset = RuleBasedGenerator(
        n_clusters=N_CLUSTERS,
        n_attributes=N_ATTRIBUTES,
        domain_size=40_000,
        noise_rate=0.1,
        seed=SEED,
    ).generate(N_ITEMS)
    rng = np.random.default_rng(SEED)
    initial = dataset.X[rng.choice(N_ITEMS, size=N_CLUSTERS, replace=False)].copy()
    model = MHKModes(
        n_clusters=N_CLUSTERS,
        lsh=LSHSpec(bands=20, rows=5, seed=SEED),
        train=TrainSpec(max_iter=2, update_refs="batch"),
    )
    model.fit(dataset.X, initial_centroids=initial)
    path = save_model(
        model,
        tmp_path_factory.mktemp("serving") / "model",
        serve=ServeSpec(backend="process", n_jobs=2, chunk_items=2048, max_batch=N_ITEMS),
    )
    requests = [
        dataset.X[i * REQUEST_ROWS : (i + 1) * REQUEST_ROWS]
        for i in range(N_REQUESTS)
    ]
    return path, requests


def _stream(answer, requests) -> tuple[float, list[np.ndarray]]:
    start = time.perf_counter()
    labels = [answer(request) for request in requests]
    return time.perf_counter() - start, labels


def _best_stream(answer, requests, repeats=STREAM_REPEATS):
    best_s, labels = float("inf"), None
    for _ in range(repeats):
        elapsed, labels = _stream(answer, requests)
        best_s = min(best_s, elapsed)
    return best_s, labels


def test_serve_throughput(saved_model):
    path, requests = saved_model
    total_items = sum(len(request) for request in requests)
    record: dict = {
        "workload": {
            "n_items": N_ITEMS,
            "n_clusters": N_CLUSTERS,
            "n_attributes": N_ATTRIBUTES,
            "bands": 20,
            "rows": 5,
            "seed": SEED,
            "requests": N_REQUESTS,
            "rows_per_request": REQUEST_ROWS,
            "algorithm": "MH-K-Modes",
            "kernels": active_backend(),
        },
        "paths": {},
    }

    # -- single-process baselines: ClusterModel.predict -----------------
    cold_artifact = load_cluster_model(path)
    cold_s, reference = _stream(cold_artifact.predict, requests)
    record["paths"]["single-process/cold"] = {
        "stream_s": round(cold_s, 4),
        "items_per_s": round(total_items / cold_s, 1),
        "note": "fresh ClusterModel; lazy index rebuild paid by request 1",
    }
    warm_s, warm_labels = _best_stream(cold_artifact.predict, requests)
    record["paths"]["single-process/warm"] = {
        "stream_s": round(warm_s, 4),
        "items_per_s": round(total_items / warm_s, 1),
    }

    # -- ModelServer on every backend ------------------------------------
    server_streams: dict[str, float] = {}
    for label, backend, n_jobs in SERVERS:
        spec = ServeSpec(
            backend=backend, n_jobs=n_jobs, chunk_items=2048, max_batch=N_ITEMS
        )
        start = time.perf_counter()
        server = ModelServer.from_path(path, spec=spec)
        load_s = time.perf_counter() - start
        with server:
            server.predict(requests[0])  # warm the pool before timing
            stream_s, labels = _best_stream(server.predict, requests)
        server_streams[label] = stream_s
        record["paths"][f"server/{label}"] = {
            "load_s": round(load_s, 4),
            "stream_s": round(stream_s, 4),
            "items_per_s": round(total_items / stream_s, 1),
        }
        # correctness gate runs everywhere: identical labels per request
        for got, expected in zip(labels, reference):
            assert np.array_equal(got, expected), label

    for got, expected in zip(warm_labels, reference):
        assert np.array_equal(got, expected)

    record["speedups"] = {
        "process_vs_cold_single": round(cold_s / server_streams["process x2"], 2),
        "process_vs_warm_single": round(warm_s / server_streams["process x2"], 2),
        "thread_vs_warm_single": round(warm_s / server_streams["thread x2"], 2),
    }

    # -- metrics overhead: the same serial stream with and without the
    # request registry (ServeSpec.emit_metrics).  The registry view of
    # the metered run lands in the record so the bench artifact carries
    # the observability counters alongside the throughput numbers.
    metered_spec = ServeSpec(backend="serial", chunk_items=2048, max_batch=N_ITEMS)
    with ModelServer.from_path(path, spec=metered_spec) as metered:
        metered.predict(requests[0])  # warm before timing
        metered_s, metered_labels = _best_stream(metered.predict, requests)
        metrics_snapshot = metered.metrics_snapshot()
    with ModelServer.from_path(
        path, spec=metered_spec.replace(emit_metrics=False)
    ) as bare:
        bare.predict(requests[0])
        bare_s, bare_labels = _best_stream(bare.predict, requests)
    for labels in (metered_labels, bare_labels):
        for got, expected in zip(labels, reference):
            assert np.array_equal(got, expected)
    overhead_pct = (metered_s - bare_s) / bare_s * 100.0
    record["metrics"] = {
        "overhead": {
            "metrics_on_s": round(metered_s, 4),
            "metrics_off_s": round(bare_s, 4),
            "overhead_pct": round(overhead_pct, 2),
        },
        "registry": metrics_snapshot,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n{json.dumps(record, indent=2)}\n")

    # wall-clock acceptance is local-only (CI runners are too noisy)
    if os.environ.get("CI"):
        pytest.skip("wall-clock speedup assertion is flaky on shared CI runners")
    process_s = server_streams["process x2"]
    if (os.cpu_count() or 1) >= 2:
        assert process_s < cold_s, (
            f"process server stream {process_s:.3f}s did not beat the cold "
            f"single-process baseline {cold_s:.3f}s"
        )
        assert process_s < warm_s, (
            f"process server stream {process_s:.3f}s did not beat the warm "
            f"single-process baseline {warm_s:.3f}s"
        )
    else:
        # On a single-core box a 2-worker process pool is pure IPC
        # overhead — with the compiled kernels cutting per-item predict
        # cost it can no longer beat in-process compute.  The structural
        # claim that survives core count: some server backend beats the
        # naive cold path, because the serving layer pre-pays the index
        # rebuild outside the serving window.
        best_server_s = min(server_streams.values())
        assert best_server_s < cold_s, (
            f"best server stream {best_server_s:.3f}s did not beat the "
            f"cold single-process baseline {cold_s:.3f}s"
        )
    # The nominal observability budget is <5% of serial throughput, but
    # differencing two ~1s best-of streams resolves the cost only to
    # ~±5 points on a busy box (the reading goes negative on quiet
    # runs); the enforced ceiling adds that measurement margin.
    assert overhead_pct < 12.0, (
        f"request metrics cost {overhead_pct:.2f}% of serial serving "
        f"throughput (metrics on {metered_s:.3f}s vs off {bare_s:.3f}s); "
        f"the observability budget is <5% + measurement noise"
    )
