"""Figure 9 — Yahoo! Answers at TF-IDF threshold 0.7.

Paper: 81 036 questions × 382 attributes × 2 916 topics, MH 1b 1r vs
K-Modes.  Scaled here to a synthetic corpus of 4 000 questions × ~250
attributes × 300 topics through the identical pipeline (topic TF-IDF →
binary presence → presence-filtered MinHash).  Claims reproduced:

* 9a: MH-K-Modes takes a fraction of the baseline's iteration time;
* 9b: the shortlist is far below the 300-topic search space;
* 9d: total time is at least halved (the paper: 2×);
* 9e: purity is essentially identical (and low — noisy fine-grained
  user topics cap it, as the paper discusses).
"""

import numpy as np
import pytest

from benchmarks.figure_utils import (
    assert_acceleration_shape,
    benchmark_variant_fit,
    report_figure,
)
from repro.experiments.configs import FIG9, baseline, mh


@pytest.mark.parametrize(
    "variant",
    [mh(1, 1), baseline()],
    ids=lambda v: v.label,
)
def test_fig9_variant_fit(benchmark, variant):
    model = benchmark_variant_fit(benchmark, FIG9, variant)
    assert model.n_iter_ >= 1


def test_fig9_report(benchmark):
    comparison = benchmark.pedantic(
        report_figure, args=("fig9", "fig9_yahoo_tfidf07"), rounds=1, iterations=1
    )
    assert_acceleration_shape(
        comparison,
        min_iteration_speedup=1.5,
        min_purity_ratio=0.85,
        max_shortlist_fraction=0.2,
    )
    # Figure 9d: total time clearly better despite indexing cost.
    assert comparison.speedup("MH-K-Modes 1b 1r") > 1.25
    # Figure 9e: purity nearly identical.
    base = comparison.baseline.purity
    mh_purity = comparison.results["MH-K-Modes 1b 1r"].purity
    assert abs(mh_purity - base) < 0.1
