"""Streaming ingest throughput — push loop vs the batch extend pipeline.

Bootstraps :class:`~repro.core.StreamingMHKModes` on the engine-scaling
workload (20 000 items, k = 800) and streams a second 20 000-item wave
from the same planted generator three ways over identical state:

* the sequential **push loop** (the paper-shaped per-item path) over a
  fixed slice, establishing the items/s baseline;
* the **vectorised extend** pipeline (batch MinHash, batched shortlist
  query, collision walk, amortised ``insert_batch``, array-backed mode
  tracking) — first over the same slice (labels and modes asserted
  bit-identical, speedup recorded), then over the full wave for the
  headline items/s;
* **process-chunked extend** — the same pipeline with chunk hashing
  dispatched to a process pool via a shared-memory request buffer
  (bit-identical to the serial run).

Results land in machine-readable
``benchmarks/results/BENCH_stream.json`` (a CI bench-smoke artifact)
so the ingest-throughput trajectory is tracked across commits.
"""

from __future__ import annotations

import copy
import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.api import LSHSpec, StreamSpec, TrainSpec
from repro.core.streaming import StreamingMHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.kernels import active_backend
from repro.obs import capture_metrics

N_BOOTSTRAP = 20_000
N_STREAM = 20_000
N_CLUSTERS = 800
N_ATTRIBUTES = 60
SEED = 2016

#: Slice of the wave pushed item by item for the baseline (the full
#: wave through the push loop would dominate the suite's runtime).
PUSH_SLICE = 3_000

#: Wall-clock floor for the local acceptance assertion: vectorised
#: extend must ingest at least this many times faster than push().
#: The compiled signature kernel (repro.kernels) cut the per-item
#: push baseline itself by ~2.3x, so the ratio compressed from the
#: ~8x the pure-NumPy stack showed — both absolute times improved.
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def bootstrapped():
    data = RuleBasedGenerator(
        n_clusters=N_CLUSTERS,
        n_attributes=N_ATTRIBUTES,
        domain_size=40_000,
        noise_rate=0.1,
        seed=SEED,
    ).generate(N_BOOTSTRAP + N_STREAM)
    stream = StreamingMHKModes(
        n_clusters=N_CLUSTERS,
        lsh=LSHSpec(bands=20, rows=5, seed=SEED),
        train=TrainSpec(max_iter=2, update_refs="batch"),
    )
    stream.bootstrap(data.X[:N_BOOTSTRAP])
    return stream, data.X[N_BOOTSTRAP:]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_stream_ingest_throughput(bootstrapped):
    base, wave = bootstrapped

    push_stream = copy.deepcopy(base)
    push_s, push_labels = _timed(
        lambda: np.array(
            [push_stream.push(row) for row in wave[:PUSH_SLICE]], dtype=np.int64
        )
    )

    slice_stream = copy.deepcopy(base)
    slice_s, slice_labels = _timed(
        lambda: slice_stream.extend(wave[:PUSH_SLICE])
    )
    speedup = push_s / slice_s

    identical_labels = bool(np.array_equal(push_labels, slice_labels))
    identical_modes = bool(
        np.array_equal(push_stream.modes_, slice_stream.modes_)
    )

    vec_stream = copy.deepcopy(base)
    with capture_metrics() as vec_metrics:
        vec_s, vec_labels = _timed(lambda: vec_stream.extend(wave))

    proc_stream = copy.deepcopy(base)
    proc_stream.stream = StreamSpec(
        backend="process", n_jobs=4, chunk_items=4096
    )
    with proc_stream:
        proc_s, proc_labels = _timed(lambda: proc_stream.extend(wave))
    process_identical = bool(
        np.array_equal(vec_labels, proc_labels)
        and np.array_equal(vec_stream.modes_, proc_stream.modes_)
    )

    record = {
        "workload": {
            "n_bootstrap": N_BOOTSTRAP,
            "n_streamed": N_STREAM,
            "n_clusters": N_CLUSTERS,
            "n_attributes": N_ATTRIBUTES,
            "bands": 20,
            "rows": 5,
            "seed": SEED,
            "algorithm": "Streaming MH-K-Modes",
            "kernels": active_backend(),
        },
        "push_loop": {
            "items": PUSH_SLICE,
            "seconds": round(push_s, 6),
            "items_per_s": round(PUSH_SLICE / push_s, 1),
        },
        "vectorised_extend": {
            "items": PUSH_SLICE,
            "seconds": round(slice_s, 6),
            "items_per_s": round(PUSH_SLICE / slice_s, 1),
            "speedup_vs_push": round(speedup, 2),
            "identical_labels": identical_labels,
            "identical_modes": identical_modes,
        },
        "vectorised_extend_full": {
            "items": N_STREAM,
            "seconds": round(vec_s, 6),
            "items_per_s": round(N_STREAM / vec_s, 1),
            "phase_s": {
                name: round(value, 6)
                for name, value in vec_stream.extend_stats_.items()
            },
        },
        "process_chunked_extend": {
            "items": N_STREAM,
            "seconds": round(proc_s, 6),
            "items_per_s": round(N_STREAM / proc_s, 1),
            "n_jobs": 4,
            "identical_to_serial": process_identical,
        },
        # registry view of the full vectorised extend: every extend.*
        # span recorded while the wave streamed in (repro.obs)
        "metrics": vec_metrics.snapshot(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_stream.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n{json.dumps(record, indent=2)}\n")

    # correctness gates run everywhere
    assert identical_labels and identical_modes
    assert process_identical
    assert push_stream.n_fallbacks_ == slice_stream.n_fallbacks_

    # wall-clock gate is local-only (shared CI runners are too noisy)
    if os.environ.get("CI"):
        pytest.skip("wall-clock speedup assertion is flaky on shared CI runners")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorised extend only {speedup:.2f}x the push loop "
        f"({push_s:.3f}s vs {slice_s:.3f}s for {PUSH_SLICE} items)"
    )
