"""Open-loop overload bench: 4× sustained capacity against the SLO.

The resilience acceptance scenario: calibrate the server's sustained
closed-loop capacity, then drive an *open-loop* request stream at 4×
that rate — arrivals keep their schedule whether or not earlier
requests finished, which is what real overload looks like.  A server
with admission control must then

* answer every accepted request within its deadline (the SLO bound on
  accepted-request p95 latency),
* shed the excess load *immediately* with the structured taxonomy
  (429 ``overloaded`` / 503 ``shutting_down`` / 504
  ``deadline_exceeded``), never with an unexplained exception,
* hang zero connections: every fired request resolves, one way or the
  other, within a bounded grace window.

Those three are asserted unconditionally — they are contracts, not
timings.  The results merge into ``benchmarks/results/BENCH_serve.json``
under an ``"slo"`` key (read-modify-write, so the throughput bench's
sections survive).  ``REPRO_BENCH_SMOKE=1`` (or CI) shrinks the
workload so the chaos-smoke job finishes in seconds.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.api import LSHSpec, ResilienceSpec, ServeSpec, TrainSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.serve import ModelServer, error_descriptor

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE") or os.environ.get("CI"))

N_ITEMS = 2_000 if SMOKE else 8_000
N_CLUSTERS = 50 if SMOKE else 200
N_ATTRIBUTES = 30
SEED = 2016
REQUEST_ROWS = 32
CALIBRATION_REQUESTS = 20 if SMOKE else 50
OVERLOAD_REQUESTS = 150 if SMOKE else 600
OVERLOAD_FACTOR = 4.0
DEADLINE_MS = 500  # the SLO: accepted requests answer within this
JOIN_GRACE_S = 10.0


@pytest.fixture(scope="module")
def overload_server():
    dataset = RuleBasedGenerator(
        n_clusters=N_CLUSTERS,
        n_attributes=N_ATTRIBUTES,
        domain_size=2_000,
        seed=SEED,
    ).generate(N_ITEMS)
    model = MHKModes(
        n_clusters=N_CLUSTERS,
        lsh=LSHSpec(bands=10, rows=3, seed=SEED),
        train=TrainSpec(max_iter=2),
    ).fit(dataset.X)
    # max_batch caps a coalesced wave at two requests: micro-batching
    # otherwise absorbs many multiples of the closed-loop calibration
    # rate and the "overload" never overloads anything.
    spec = ServeSpec(
        backend="thread",
        n_jobs=2,
        chunk_items=64,
        max_batch=2 * REQUEST_ROWS,
        resilience=ResilienceSpec(
            max_queue_depth=8,
            max_in_flight=2,
            deadline_ms=DEADLINE_MS,
            batch_window_ms=2,
        ),
    )
    rng = np.random.default_rng(SEED)
    requests = [
        dataset.X[rng.choice(N_ITEMS, size=REQUEST_ROWS, replace=False)]
        for _ in range(32)
    ]
    with ModelServer(model.fitted_model(), spec) as server:
        yield server, requests


def _fire(server, X, outcomes: list, lock: threading.Lock) -> None:
    started = time.perf_counter()
    try:
        server.predict(X)
    except Exception as exc:  # noqa: BLE001 - classified below
        status, error = error_descriptor(exc)
        outcome = {
            "status": status,
            "code": error.get("code"),
            "latency_s": time.perf_counter() - started,
        }
    else:
        outcome = {
            "status": 200,
            "code": "ok",
            "latency_s": time.perf_counter() - started,
        }
    with lock:
        outcomes.append(outcome)


def test_overload_holds_slo_and_sheds_load_structurally(overload_server):
    server, requests = overload_server

    # -- calibration: sustained closed-loop capacity ---------------------
    server.predict(requests[0])  # warm the pool before timing
    start = time.perf_counter()
    for i in range(CALIBRATION_REQUESTS):
        server.predict(requests[i % len(requests)])
    calibration_s = time.perf_counter() - start
    capacity_rps = CALIBRATION_REQUESTS / calibration_s

    # -- open loop at 4x: arrivals never wait for completions ------------
    offered_rps = OVERLOAD_FACTOR * capacity_rps
    interval_s = 1.0 / offered_rps
    outcomes: list[dict] = []
    lock = threading.Lock()
    threads = []
    start = time.perf_counter()
    for i in range(OVERLOAD_REQUESTS):
        scheduled = start + i * interval_s
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(
            target=_fire,
            args=(server, requests[i % len(requests)], outcomes, lock),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    drive_s = time.perf_counter() - start

    hung = 0
    join_deadline = time.monotonic() + JOIN_GRACE_S
    for thread in threads:
        thread.join(timeout=max(0.0, join_deadline - time.monotonic()))
        hung += thread.is_alive()

    # -- classify --------------------------------------------------------
    by_code: dict[str, int] = {}
    for outcome in outcomes:
        by_code[outcome["code"]] = by_code.get(outcome["code"], 0) + 1
    accepted = sorted(
        o["latency_s"] for o in outcomes if o["code"] == "ok"
    )
    rejected = [o for o in outcomes if o["code"] != "ok"]

    def percentile(values: list[float], q: float) -> float | None:
        if not values:
            return None
        return values[min(len(values) - 1, int(q * len(values)))]

    p95_s = percentile(accepted, 0.95)
    slo_s = DEADLINE_MS / 1000.0
    record_slo = {
        "smoke": SMOKE,
        "request_rows": REQUEST_ROWS,
        "deadline_ms": DEADLINE_MS,
        "capacity_rps": round(capacity_rps, 1),
        "offered_rps": round(offered_rps, 1),
        "overload_factor": OVERLOAD_FACTOR,
        "requests_fired": OVERLOAD_REQUESTS,
        "drive_window_s": round(drive_s, 3),
        "outcomes": by_code,
        "accepted": len(accepted),
        "rejected": len(rejected),
        "hung_connections": hung,
        "accepted_latency_s": {
            "p50": round(percentile(accepted, 0.50) or 0.0, 4),
            "p95": round(p95_s or 0.0, 4),
            "max": round(accepted[-1], 4) if accepted else None,
        },
        "slo_p95_s": slo_s,
        "slo_held": p95_s is not None and p95_s <= slo_s,
    }

    # -- merge into BENCH_serve.json (read-modify-write) -----------------
    RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = RESULTS_DIR / "BENCH_serve.json"
    record = (
        json.loads(bench_path.read_text(encoding="utf-8"))
        if bench_path.exists()
        else {}
    )
    record["slo"] = record_slo
    bench_path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"\n{json.dumps(record_slo, indent=2)}\n")

    # -- contracts (asserted everywhere, including CI) -------------------
    assert len(outcomes) + hung == OVERLOAD_REQUESTS
    assert hung == 0, f"{hung} connections never resolved"
    unexplained = [
        o for o in rejected if o["code"] not in ("overloaded", "deadline_exceeded", "shutting_down")
    ]
    assert not unexplained, f"unstructured failures under overload: {unexplained}"
    assert accepted, "the server accepted nothing at 4x overload"
    # Admission control at 4x offered load must actually shed requests;
    # a server that absorbed everything was never overloaded (the
    # calibration would be wrong, not the server heroic).
    assert rejected, "4x overload produced zero rejections"
    # Every rejection is immediate or deadline-bounded: no rejection
    # may take longer than deadline + scheduling slack.
    worst_rejection_s = max(o["latency_s"] for o in rejected)
    assert worst_rejection_s < slo_s + 2.0, (
        f"slowest rejection took {worst_rejection_s:.3f}s; rejections "
        "must be immediate (queue_full) or deadline-bounded"
    )

    # wall-clock SLO gate is local-only (CI runners are too noisy)
    if os.environ.get("CI"):
        pytest.skip("p95-vs-SLO wall-clock gate is local-only")
    assert p95_s is not None and p95_s <= slo_s, (
        f"accepted-request p95 {p95_s:.3f}s exceeded the "
        f"{slo_s:.3f}s SLO at {OVERLOAD_FACTOR}x overload"
    )
