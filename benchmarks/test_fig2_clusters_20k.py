"""Figure 2 — the base experiment (paper: 90k items × 100 attrs × 20k clusters).

Scaled here to 4 000 × 60 × 800 (same 5:1 item:cluster ratio).  The
claims reproduced:

* 2a: every MH variant spends less time per iteration than K-Modes;
* 2b/2e: the shortlist is orders of magnitude smaller than k, and
  50b 5r buys almost nothing over 20b 5r;
* 2c: MH variants make no more moves than K-Modes after iteration 1;
* convergence: MH variants converge in no more iterations.
"""

import numpy as np
import pytest

from benchmarks.figure_utils import (
    assert_acceleration_shape,
    benchmark_variant_fit,
    report_figure,
)
from repro.experiments.configs import FIG2, baseline, mh


@pytest.mark.parametrize(
    "variant",
    [mh(20, 2), mh(20, 5), mh(50, 5), baseline()],
    ids=lambda v: v.label,
)
def test_fig2_variant_fit(benchmark, variant):
    model = benchmark_variant_fit(benchmark, FIG2, variant)
    assert model.n_iter_ >= 1


def test_fig2_report(benchmark):
    comparison = benchmark.pedantic(
        report_figure, args=("fig2", "fig2_clusters_base"), rounds=1, iterations=1
    )
    assert_acceleration_shape(comparison, min_iteration_speedup=1.5)

    # Figure 2e: 50 bands offer almost no shortlist improvement over 20.
    s20 = np.nanmean(comparison.results["MH-K-Modes 20b 5r"].stats.shortlist_sizes)
    s50 = np.nanmean(comparison.results["MH-K-Modes 50b 5r"].stats.shortlist_sizes)
    assert abs(s50 - s20) < 2.0

    # Figure 2b: shortlists are orders of magnitude below k = 800.
    assert s20 < 8.0

    # Figure 2c: after the first shortlist iteration the MH variants
    # move no more items than the baseline moved in its own later
    # iterations (both decay towards zero).
    for label, run in comparison.results.items():
        assert run.stats.moves_per_iteration[-1] <= 5 or not run.stats.converged
