"""Shared infrastructure for the per-figure benchmark suite.

Each ``test_<table|figure>*.py`` module regenerates one table or figure
of the paper.  Heavy experiment comparisons are cached per session so
that Figure 6 (scaling), Figure 7 (total time) and Figure 8 (purity)
can reuse the runs of Figures 2-5 instead of repeating them, mirroring
how the paper derives those figures from the same experiments.

Rendered paper-style tables are written to ``benchmarks/results/*.txt``
and echoed to stdout, so `pytest benchmarks/ --benchmark-only` leaves
both the pytest-benchmark timing table and the reproduced figures on
disk.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.experiments.configs import (
    FIG2,
    FIG3,
    FIG4,
    FIG5,
    FIG5_XL,
    FIG9,
    FIG10,
    SyntheticConfig,
    YahooConfig,
)
from repro.experiments.runner import (
    ComparisonResult,
    run_comparison,
    synthetic_dataset,
    yahoo_dataset,
)

RESULTS_DIR = Path(__file__).parent / "results"

_CONFIGS: dict[str, SyntheticConfig | YahooConfig] = {
    "fig2": FIG2,
    "fig3": FIG3,
    "fig4": FIG4,
    "fig5": FIG5,
    "fig5xl": FIG5_XL,
    "fig9": FIG9,
    "fig10": FIG10,
}

_DATASET_CACHE: dict[str, object] = {}
_RESULT_CACHE: dict[str, ComparisonResult] = {}


def get_dataset(exp_id: str):
    """Materialise (once) the dataset of a named experiment."""
    if exp_id not in _DATASET_CACHE:
        config = _CONFIGS[exp_id]
        if isinstance(config, SyntheticConfig):
            _DATASET_CACHE[exp_id] = synthetic_dataset(config)
        else:
            _DATASET_CACHE[exp_id] = yahoo_dataset(config)
    return _DATASET_CACHE[exp_id]


def get_comparison(exp_id: str) -> ComparisonResult:
    """Run (once) the full variant comparison of a named experiment."""
    if exp_id not in _RESULT_CACHE:
        config = _CONFIGS[exp_id]
        dataset = get_dataset(exp_id)
        if isinstance(config, SyntheticConfig):
            _RESULT_CACHE[exp_id] = run_comparison(
                dataset,
                n_clusters=config.n_clusters,
                variants=config.variants,
                max_iter=config.max_iter,
                seed=config.seed,
                exp_id=config.exp_id,
            )
        else:
            _RESULT_CACHE[exp_id] = run_comparison(
                dataset,
                n_clusters=config.n_topics,
                variants=config.variants,
                max_iter=config.max_iter,
                seed=config.seed,
                absent_code=0,
                exp_id=config.exp_id,
            )
    return _RESULT_CACHE[exp_id]


def fixed_initial_modes(exp_id: str) -> np.ndarray:
    """The shared initial modes of an experiment (paper protocol)."""
    config = _CONFIGS[exp_id]
    dataset = get_dataset(exp_id)
    k = (
        config.n_clusters
        if isinstance(config, SyntheticConfig)
        else config.n_topics
    )
    rng = np.random.default_rng(config.seed)
    return dataset.X[rng.choice(dataset.n_items, size=k, replace=False)].copy()


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
