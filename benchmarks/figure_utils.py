"""Helpers shared by the per-figure benchmark modules."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    fixed_initial_modes,
    get_comparison,
    get_dataset,
    write_result,
)
from repro.core.mh_kmodes import MHKModes
from repro.experiments.configs import SyntheticConfig, VariantSpec, YahooConfig
from repro.experiments.report import render_comparison_summary, render_series_table
from repro.experiments.runner import ComparisonResult
from repro.kmodes.kmodes import KModes

__all__ = [
    "fit_variant",
    "benchmark_variant_fit",
    "report_figure",
    "assert_acceleration_shape",
]


def fit_variant(config, variant: VariantSpec):
    """One complete fit of a variant under the paper's fixed-init protocol."""
    dataset = get_dataset(config.exp_id)
    init = fixed_initial_modes(config.exp_id)
    if isinstance(config, SyntheticConfig):
        k, absent = config.n_clusters, None
    else:
        k, absent = config.n_topics, 0
    if variant.is_baseline:
        model = KModes(n_clusters=k, max_iter=config.max_iter, seed=config.seed)
        model.fit(dataset.X, initial_modes=init)
    else:
        model = MHKModes(
            n_clusters=k,
            bands=variant.bands,
            rows=variant.rows,
            max_iter=config.max_iter,
            seed=config.seed,
            absent_code=absent,
        )
        model.fit(dataset.X, initial_centroids=init)
    return model


def benchmark_variant_fit(benchmark, config, variant: VariantSpec):
    """pytest-benchmark measurement of one variant's full fit."""
    get_dataset(config.exp_id)  # exclude data generation from the timing
    fixed_initial_modes(config.exp_id)
    model = benchmark.pedantic(
        fit_variant, args=(config, variant), rounds=1, iterations=1
    )
    assert model.labels_ is not None
    return model


def report_figure(
    exp_id: str,
    name: str,
    series_fields: tuple[str, ...] = ("duration_s", "mean_shortlist", "moves"),
) -> ComparisonResult:
    """Render one figure's paper-style tables to benchmarks/results/."""
    comparison = get_comparison(exp_id)
    parts = [render_comparison_summary(comparison)]
    parts.extend(
        render_series_table(comparison, fieldname) for fieldname in series_fields
    )
    write_result(name, "\n\n".join(parts))
    return comparison


def assert_acceleration_shape(
    comparison: ComparisonResult,
    min_iteration_speedup: float = 1.3,
    min_purity_ratio: float = 0.75,
    max_shortlist_fraction: float = 0.25,
    max_extra_iterations: int = 1,
) -> None:
    """The qualitative claims every MH figure makes, as assertions.

    * every MH variant's mean iteration is faster than the baseline's;
    * shortlists are a small fraction of k;
    * purity stays comparable;
    * MH needs no more iterations than the baseline (± slack).
    """
    baseline = comparison.baseline
    k = float(np.nanmean(baseline.stats.shortlist_sizes))  # baseline scans k
    for label, run in comparison.results.items():
        if label == baseline.label:
            continue
        iteration_speedup = comparison.iteration_speedup(label)
        assert iteration_speedup >= min_iteration_speedup, (
            f"{label}: iteration speedup {iteration_speedup:.2f} below "
            f"{min_iteration_speedup}"
        )
        shortlist = float(np.nanmean(run.stats.shortlist_sizes))
        assert shortlist <= max_shortlist_fraction * k, (
            f"{label}: shortlist {shortlist:.1f} not << k={k:.0f}"
        )
        assert run.purity >= min_purity_ratio * baseline.purity, (
            f"{label}: purity {run.purity:.3f} vs baseline {baseline.purity:.3f}"
        )
        assert run.n_iterations <= baseline.n_iterations + max_extra_iterations, (
            f"{label}: {run.n_iterations} iterations vs baseline "
            f"{baseline.n_iterations}"
        )
