"""Figure 4 — 2.75× the items (paper: 250k; here 11 000).

Claims reproduced:

* 4c: MH variants take less time per iteration and converge in no
  more iterations than K-Modes;
* 4a: shortlists remain tiny at the larger item count;
* 4b: moves decay for every algorithm;
* the 1b 1r configuration — the cheapest possible index — already
  delivers the bulk of the win (the paper's later Yahoo! headline).
"""

import numpy as np
import pytest

from benchmarks.figure_utils import (
    assert_acceleration_shape,
    benchmark_variant_fit,
    report_figure,
)
from repro.experiments.configs import FIG4, baseline, mh


@pytest.mark.parametrize(
    "variant",
    [mh(1, 1), mh(20, 5), baseline()],
    ids=lambda v: v.label,
)
def test_fig4_variant_fit(benchmark, variant):
    model = benchmark_variant_fit(benchmark, FIG4, variant)
    assert model.n_iter_ >= 1


def test_fig4_report(benchmark):
    comparison = benchmark.pedantic(
        report_figure, args=("fig4", "fig4_items_scaled"), rounds=1, iterations=1
    )
    assert_acceleration_shape(comparison, min_iteration_speedup=1.5)

    # The cheap 1b 1r index must beat the baseline end to end,
    # including its setup pass (Figure 7e's story).
    assert comparison.speedup("MH-K-Modes 1b 1r") > 1.2

    # Shortlists stay far below k = 800 (Figure 4a).
    s11 = np.nanmean(comparison.results["MH-K-Modes 1b 1r"].stats.shortlist_sizes)
    assert s11 < 40.0
