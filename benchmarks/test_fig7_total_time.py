"""Figure 7 — total time to cluster each of the five synthetic datasets.

The paper's headline: across every dataset and parameter setting,
MH-K-Modes finishes 2×-6× faster end to end.  At laptop scale the
one-off hashing setup amortises over far fewer, far shorter
iterations, so the band we assert end to end is wider (≥1.2× for the
winning configuration per dataset); the per-iteration speedups and all
trends match the paper (see the per-figure benches and EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import get_comparison, write_result
from repro.experiments.report import format_table

FIVE = ("fig2", "fig3", "fig4", "fig5", "fig5xl")


def _collect():
    return {exp_id: get_comparison(exp_id) for exp_id in FIVE}


def test_fig7_total_time(benchmark):
    comparisons = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for exp_id, comparison in comparisons.items():
        base_total = comparison.baseline.total_time_s
        best_label, best_total = min(
            (
                (label, run.total_time_s)
                for label, run in comparison.results.items()
                if label != "K-Modes"
            ),
            key=lambda pair: pair[1],
        )
        info = comparison.dataset_info
        rows.append(
            [
                exp_id,
                f"{info['n_items']}x{info['n_attributes']}",
                best_label,
                f"{best_total:.2f}",
                f"{base_total:.2f}",
                f"{base_total / best_total:.2f}x",
            ]
        )
        # The winning MH configuration beats K-Modes on every dataset.
        assert best_total < base_total, exp_id
        assert base_total / best_total > 1.2, exp_id

    write_result(
        "fig7_total_time",
        "Figure 7 — total time to cluster each synthetic dataset (s)\n"
        + format_table(
            ["dataset", "size", "best MH variant", "MH total", "K-Modes total", "speedup"],
            rows,
        ),
    )
