"""Figure 3 — doubled cluster count (paper: 40k clusters; here 1 600).

Claims reproduced:

* 3a/3b: the absolute gap between MH and K-Modes iteration time grows
  when k doubles (the paper: 160 → 480 minutes saved per iteration);
* 3c: shortlists stay tiny even though k doubled;
* 3d: MH variants converge at least as fast.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_comparison
from benchmarks.figure_utils import (
    assert_acceleration_shape,
    benchmark_variant_fit,
    report_figure,
)
from repro.experiments.configs import FIG3, baseline, mh


@pytest.mark.parametrize(
    "variant",
    [mh(20, 2), mh(20, 5), mh(50, 5), baseline()],
    ids=lambda v: v.label,
)
def test_fig3_variant_fit(benchmark, variant):
    model = benchmark_variant_fit(benchmark, FIG3, variant)
    assert model.n_iter_ >= 1


def test_fig3_report(benchmark):
    comparison = benchmark.pedantic(
        report_figure, args=("fig3", "fig3_clusters_doubled"), rounds=1, iterations=1
    )
    assert_acceleration_shape(comparison, min_iteration_speedup=2.0)

    # The per-iteration saving grows with k: compare against Figure 2.
    fig2 = get_comparison("fig2")
    def saving(cmp):
        base = cmp.baseline.stats.mean_iteration_s
        best = min(
            run.stats.mean_iteration_s
            for label, run in cmp.results.items()
            if label != "K-Modes"
        )
        return base - best

    assert saving(comparison) > saving(fig2)

    # Shortlists stay tiny although k doubled (Figure 3c).
    s20 = np.nanmean(comparison.results["MH-K-Modes 20b 5r"].stats.shortlist_sizes)
    assert s20 < 8.0
