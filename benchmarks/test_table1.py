"""Table I: candidate-pair and cluster-recall probabilities at r=1.

Analytic reproduction: the exact closed forms are evaluated on the
paper's grid and checked row by row against the printed values.
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.parameters import probability_table
from repro.experiments.report import render_probability_table

#: (bands, similarity, pair probability, MH-K-Modes probability) as
#: printed in the paper.  The two rows the paper got wrong against its
#: own formula — (100, 0.001) → 0.009 and (100, 0.01) → 0.3 — are
#: recorded at their correct values (see EXPERIMENTS.md).
PAPER_ROWS = [
    (10, 0.01, 0.09, 0.61),
    (10, 0.1, 0.65, 1.0),
    (10, 0.2, 0.89, 1.0),
    (10, 0.5, 0.99, 1.0),
    (100, 0.001, 0.095, 0.63),   # paper printed 0.009 / 0.09
    (100, 0.01, 0.63, 1.0),      # paper printed 0.3 / 0.97
    (100, 0.1, 0.99, 1.0),
    (100, 0.5, 1.0, 1.0),
    (100, 0.8, 1.0, 1.0),
    (800, 0.0001, 0.07, 0.55),   # paper printed 0.52 (compounded rounding)
    (800, 0.001, 0.55, 0.99),
    (800, 0.01, 0.99, 1.0),
    (800, 0.1, 1.0, 1.0),
]


def build_table():
    return probability_table(
        rows=1,
        band_choices=[10, 100, 800],
        similarities=[0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 0.8],
        cluster_size=10,
    )


def test_table1(benchmark):
    table = benchmark.pedantic(build_table, rounds=3, iterations=1)
    by_key = {(int(e["bands"]), e["similarity"]): e for e in table}
    for bands, similarity, pair, recall in PAPER_ROWS:
        entry = by_key[(bands, similarity)]
        assert entry["pair_probability"] == pytest.approx(pair, abs=0.02), (
            bands,
            similarity,
        )
        assert entry["mh_kmodes_probability"] == pytest.approx(recall, abs=0.03), (
            bands,
            similarity,
        )
    write_result(
        "table1",
        render_probability_table(
            table, "Table I — r=1, assumed cluster size 10 (reproduced)"
        ),
    )
