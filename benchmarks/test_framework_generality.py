"""Further Work — the framework generalises beyond K-Modes.

The paper: "evaluation on the performance and efficiency with other
clustering algorithms would be worthwhile. Further, it would be
interesting to investigate extending our framework to ... numeric
data."  This bench runs that experiment: K-Means on numeric blobs
versus LSH-K-Means (identical loop, p-stable hashing instead of
MinHash) and mini-batch K-Means (the related-work [16] baseline), all
from the same initial centroids.

Asserted shape: LSH-K-Means prunes the centroid search by an order of
magnitude at comparable clustering agreement with exact K-Means.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.experiments.report import format_table
from repro.kmeans import KMeans, LSHKMeans, MiniBatchKMeans
from repro.metrics.external import adjusted_rand_index

K, N, DIM, SEED = 400, 8_000, 24, 13

_CACHE: dict[str, object] = {}


def _data():
    if "data" not in _CACHE:
        rng = np.random.default_rng(SEED)
        centres = rng.normal(0.0, 10.0, (K, DIM))
        truth = rng.integers(0, K, N)
        X = centres[truth] + rng.normal(0.0, 0.5, (N, DIM))
        init = X[rng.choice(N, K, replace=False)].copy()
        _CACHE["data"] = (X, truth, init)
    return _CACHE["data"]


def _fit_exact():
    X, _, init = _data()
    return KMeans(n_clusters=K, max_iter=20, seed=SEED).fit(
        X, initial_centroids=init
    )


def _fit_lsh():
    X, _, init = _data()
    return LSHKMeans(
        n_clusters=K, bands=16, rows=4, family="pstable", width=6.0,
        max_iter=20, seed=SEED,
    ).fit(X, initial_centroids=init)


def _fit_minibatch():
    X, _, _ = _data()
    return MiniBatchKMeans(
        n_clusters=K, batch_size=512, max_iter=60, seed=SEED
    ).fit(X)


@pytest.mark.parametrize(
    "name,fit",
    [("K-Means", _fit_exact), ("LSH-K-Means", _fit_lsh), ("MiniBatch", _fit_minibatch)],
    ids=lambda x: x if isinstance(x, str) else "",
)
def test_numeric_variant_fit(benchmark, name, fit):
    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert model.labels_ is not None


def test_numeric_framework_report(benchmark):
    X, truth, _ = _data()
    exact = _fit_exact()
    lsh = benchmark.pedantic(_fit_lsh, rounds=1, iterations=1)
    minibatch = _fit_minibatch()

    exact_ari = adjusted_rand_index(exact.labels_, truth)
    lsh_ari = adjusted_rand_index(lsh.labels_, truth)
    mb_ari = adjusted_rand_index(minibatch.labels_, truth)

    shortlist = float(np.nanmean(lsh.stats_.shortlist_sizes))
    # The framework's pruning claim transfers to numeric data:
    assert shortlist < K / 10
    # ...at comparable quality with the exact algorithm:
    assert lsh_ari > 0.85 * exact_ari
    # ...and the SSE stays within a few percent.
    assert lsh.cost_ < exact.cost_ * 1.1

    rows = [
        ["K-Means (exact)", exact.n_iter_, f"{exact.cost_:.0f}",
         f"{exact_ari:.3f}", f"{K}"],
        ["LSH-K-Means 16b4r", lsh.n_iter_, f"{lsh.cost_:.0f}",
         f"{lsh_ari:.3f}", f"{shortlist:.1f}"],
        ["MiniBatch b512", minibatch.n_iter_, f"{minibatch.cost_:.0f}",
         f"{mb_ari:.3f}", f"{K}"],
    ]
    write_result(
        "further_work_numeric",
        "Further Work — the framework on numeric data "
        f"({N} pts x {DIM} dims, k={K})\n"
        + format_table(["algorithm", "iters", "SSE", "ARI", "mean shortlist"], rows),
    )
