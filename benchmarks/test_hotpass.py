"""Hot-pass microbenchmark — per-item loop vs vectorised batch kernel.

Times one batch assignment pass over the engine-scaling workload
(20 000 items, k = 800) two ways on identical fitted state:

* the paper-shaped **per-item** pass (``_shortlist_pass`` with batch
  reference updates) — one ``np.unique`` + one distance call per item;
* the engine's **vectorised** pass (``_assignment_chunk``) — segmented
  shortlist build off the flat neighbour CSR, one padded
  ``_block_distances`` tensor per sub-block.

Both must produce bit-identical labels; the vectorised pass must be at
least 3× faster (wall-clock asserted locally, skipped on shared CI
runners).  The batched predict path is timed against the per-item
prediction loop on the same fitted model for the record.

Results land in machine-readable ``benchmarks/results/BENCH_hotpass.json``
so the perf trajectory can be tracked across commits.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.obs import capture_metrics
from repro.core.mh_kmodes import MHKModes
from repro.core.shortlist import ShortlistAccumulator, apply_fallback
from repro.data.datgen import RuleBasedGenerator
from repro.engine.parallel import _assignment_chunk, _pass_neighbour_csr
from repro.kernels import active_backend

N_ITEMS = 20_000
N_CLUSTERS = 800
N_ATTRIBUTES = 60
SEED = 2016
REPEATS = 3

#: Wall-clock floor for the local acceptance assertion.
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def fitted():
    dataset = RuleBasedGenerator(
        n_clusters=N_CLUSTERS,
        n_attributes=N_ATTRIBUTES,
        domain_size=40_000,
        noise_rate=0.1,
        seed=SEED,
    ).generate(N_ITEMS)
    rng = np.random.default_rng(SEED)
    initial = dataset.X[rng.choice(N_ITEMS, size=N_CLUSTERS, replace=False)].copy()
    model = MHKModes(
        n_clusters=N_CLUSTERS,
        bands=20,
        rows=5,
        max_iter=2,
        seed=SEED,
        update_refs="batch",
    )
    model.fit(dataset.X, initial_centroids=initial)
    return model, dataset.X


def _best_of(repeats: int, fn):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorised_pass_speedup(fitted):
    model, X = fitted
    index = model.index_
    centroids = model.centroids_
    labels = model.labels_.copy()
    n = X.shape[0]

    def per_item_pass():
        accumulator = ShortlistAccumulator()
        out, moves = model._shortlist_pass(
            X, centroids, labels.copy(), index, accumulator
        )
        return out, moves, accumulator.mean()

    csr = _pass_neighbour_csr(index, n)

    def vectorised_pass():
        out, moves, total, _ = _assignment_chunk(
            (model, X), (centroids, labels, csr), (0, n)
        )
        index.set_assignments(out)
        return out, moves, total / n

    per_item_s, (ref_labels, ref_moves, ref_mean) = _best_of(REPEATS, per_item_pass)
    with capture_metrics() as pass_metrics:
        vectorised_s, (vec_labels, vec_moves, vec_mean) = _best_of(
            REPEATS, vectorised_pass
        )
    speedup = per_item_s / vectorised_s

    # -- batched predict vs the per-item prediction loop ----------------
    novel = RuleBasedGenerator(
        n_clusters=N_CLUSTERS, n_attributes=N_ATTRIBUTES, domain_size=40_000,
        seed=SEED + 1,
    ).generate(2_000)

    def per_item_predict():
        signatures = model._signatures(novel.X)
        out = np.empty(len(novel.X), dtype=np.int64)
        for i in range(len(novel.X)):
            shortlist = apply_fallback(
                index.candidate_clusters_for_signature(signatures[i]),
                model.n_clusters,
                model.predict_fallback,
            )
            distances = model._point_distances(
                novel.X, i, centroids[shortlist]
            )
            out[i] = int(shortlist[np.argmin(distances)])
        return out

    predict_item_s, predict_ref = _best_of(1, per_item_predict)
    predict_batch_s, predict_got = _best_of(1, lambda: model.predict(novel.X))
    predict_speedup = predict_item_s / predict_batch_s

    record = {
        "workload": {
            "n_items": N_ITEMS,
            "n_clusters": N_CLUSTERS,
            "n_attributes": N_ATTRIBUTES,
            "bands": 20,
            "rows": 5,
            "seed": SEED,
            "algorithm": "MH-K-Modes",
            "kernels": active_backend(),
        },
        "assignment_pass": {
            "per_item_s": round(per_item_s, 6),
            "vectorised_s": round(vectorised_s, 6),
            "speedup": round(speedup, 2),
            "identical_labels": bool(np.array_equal(ref_labels, vec_labels)),
            "moves": int(ref_moves),
            "mean_shortlist": round(float(ref_mean), 4),
        },
        "predict_2000_novel": {
            "per_item_s": round(predict_item_s, 6),
            "batched_s": round(predict_batch_s, 6),
            "speedup": round(predict_speedup, 2),
            "identical_labels": bool(np.array_equal(predict_ref, predict_got)),
        },
        # registry view of the vectorised passes: the traced
        # fit.assignment_chunk kernel's span counters (repro.obs)
        "metrics": pass_metrics.snapshot(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_hotpass.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n{json.dumps(record, indent=2)}\n")

    # correctness gates run everywhere
    assert np.array_equal(ref_labels, vec_labels)
    assert ref_moves == vec_moves
    assert ref_mean == pytest.approx(vec_mean)
    assert np.array_equal(predict_ref, predict_got)

    # wall-clock gates are local-only (shared CI runners are too noisy)
    if os.environ.get("CI"):
        pytest.skip("wall-clock speedup assertion is flaky on shared CI runners")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorised pass only {speedup:.2f}x faster "
        f"({per_item_s:.3f}s vs {vectorised_s:.3f}s)"
    )
    # batched predict must beat the per-item loop even on all-novel
    # batches (every shortlist empty -> the broadcast full-scan path);
    # < 1.0 here is the regression this record used to document.
    assert predict_speedup > 1.0, (
        f"batched predict is a slowdown: {predict_speedup:.2f}x "
        f"({predict_item_s:.3f}s vs {predict_batch_s:.3f}s)"
    )
