"""Table II: candidate-pair and cluster-recall probabilities at r=5."""

import pytest

from benchmarks.conftest import write_result
from repro.core.parameters import probability_table
from repro.experiments.report import render_probability_table

#: Every row of the paper's Table II (all match the closed form).
PAPER_ROWS = [
    (10, 0.1, 0.0001, 0.001),
    (10, 0.2, 0.003, 0.03),
    (10, 0.5, 0.27, 0.96),
    (10, 0.8, 0.98, 1.0),
    (100, 0.1, 0.001, 0.01),
    (100, 0.5, 0.95, 1.0),
    (800, 0.1, 0.008, 0.08),
    (800, 0.2, 0.23, 0.93),
    (800, 0.3, 0.86, 1.0),
]


def build_table():
    return probability_table(
        rows=5,
        band_choices=[10, 100, 800],
        similarities=[0.1, 0.2, 0.3, 0.5, 0.8],
        cluster_size=10,
    )


def test_table2(benchmark):
    table = benchmark.pedantic(build_table, rounds=3, iterations=1)
    by_key = {(int(e["bands"]), e["similarity"]): e for e in table}
    for bands, similarity, pair, recall in PAPER_ROWS:
        entry = by_key[(bands, similarity)]
        assert entry["pair_probability"] == pytest.approx(pair, abs=0.02), (
            bands,
            similarity,
        )
        assert entry["mh_kmodes_probability"] == pytest.approx(recall, abs=0.03), (
            bands,
            similarity,
        )
    write_result(
        "table2",
        render_probability_table(
            table, "Table II — r=5, assumed cluster size 10 (reproduced)"
        ),
    )
