"""Figure 8 — cluster purity on the five synthetic datasets.

The paper: "in nearly all cases, our algorithm can manage to achieve a
very similar cluster purity to the original K-Modes" — purity is the
price (sometimes slightly lower) paid for the speedup.  Reproduced as:
every MH variant within 25 % of the baseline's purity, and the best MH
variant within 10 %.
"""

import pytest

from benchmarks.conftest import get_comparison, write_result
from repro.experiments.report import format_table

FIVE = ("fig2", "fig3", "fig4", "fig5", "fig5xl")


def _collect():
    return {exp_id: get_comparison(exp_id) for exp_id in FIVE}


def test_fig8_purity(benchmark):
    comparisons = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for exp_id, comparison in comparisons.items():
        base_purity = comparison.baseline.purity
        mh_purities = {
            label: run.purity
            for label, run in comparison.results.items()
            if label != "K-Modes"
        }
        for label, purity in mh_purities.items():
            rows.append([exp_id, label, f"{purity:.3f}", f"{base_purity:.3f}"])
            assert purity > 0.75 * base_purity, (exp_id, label)
        assert max(mh_purities.values()) > 0.85 * base_purity, exp_id

    write_result(
        "fig8_purity",
        "Figure 8 — cluster purity, MH variants vs exact K-Modes\n"
        + format_table(["dataset", "variant", "purity", "K-Modes purity"], rows),
    )
