"""Ablations of the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these benches justify the
implementation decisions the paper leaves implicit:

* presence filtering (Algorithm 2 lines 1-4) on sparse binary data;
* online vs batch cluster-reference updates;
* precomputed (grouped) neighbour lists vs on-the-fly bucket unions;
* the (b, r) sweep behind §III-D's parameter guidance.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_dataset, write_result
from repro.core.mh_kmodes import MHKModes
from repro.experiments.report import format_table
from repro.metrics.purity import cluster_purity


K_FIG9 = 300


def _fit(**kwargs):
    dataset = get_dataset("fig9")
    defaults = dict(
        n_clusters=K_FIG9, bands=10, rows=1, max_iter=6, seed=0, absent_code=0
    )
    defaults.update(kwargs)
    model = MHKModes(**defaults)
    model.fit(dataset.X)
    return model, dataset


class TestPresenceFiltering:
    def test_filtering_improves_shortlist_quality(self, benchmark):
        """Without the absent-value filter, shared absences flood MinHash."""
        filtered, dataset = benchmark.pedantic(_fit, rounds=1, iterations=1)
        unfiltered = MHKModes(
            n_clusters=K_FIG9, bands=10, rows=1, max_iter=6, seed=0, absent_code=None
        ).fit(dataset.X)
        filtered_purity = cluster_purity(filtered.labels_, dataset.labels)
        unfiltered_purity = cluster_purity(unfiltered.labels_, dataset.labels)
        # Unfiltered hashing sees mostly 'word absent' tokens shared by
        # everyone: shortlists balloon and/or quality degrades.
        unfiltered_shortlist = np.nanmean(unfiltered.stats_.shortlist_sizes)
        filtered_shortlist = np.nanmean(filtered.stats_.shortlist_sizes)
        assert (
            filtered_purity >= unfiltered_purity - 0.02
            and filtered_shortlist <= unfiltered_shortlist * 2
        )
        write_result(
            "ablation_presence_filtering",
            "Ablation — presence filtering (Algorithm 2 lines 1-4)\n"
            + format_table(
                ["variant", "purity", "mean shortlist"],
                [
                    ["filtered (paper)", f"{filtered_purity:.3f}", f"{filtered_shortlist:.1f}"],
                    ["unfiltered", f"{unfiltered_purity:.3f}", f"{unfiltered_shortlist:.1f}"],
                ],
            ),
        )


class TestUpdateRefs:
    def test_online_vs_batch(self, benchmark):
        """The paper's online reference updates vs end-of-pass updates."""
        online, dataset = benchmark.pedantic(
            _fit, kwargs={"update_refs": "online"}, rounds=1, iterations=1
        )
        batch, _ = _fit(update_refs="batch")
        online_purity = cluster_purity(online.labels_, dataset.labels)
        batch_purity = cluster_purity(batch.labels_, dataset.labels)
        # Both modes must land in the same quality regime; online (the
        # paper's choice) must not be worse.
        assert online_purity >= batch_purity - 0.03
        write_result(
            "ablation_update_refs",
            "Ablation — online (paper) vs batch cluster-reference updates\n"
            + format_table(
                ["mode", "purity", "iterations", "total_s"],
                [
                    ["online", f"{online_purity:.3f}", online.n_iter_,
                     f"{online.stats_.total_time_s:.2f}"],
                    ["batch", f"{batch_purity:.3f}", batch.n_iter_,
                     f"{batch.stats_.total_time_s:.2f}"],
                ],
            ),
        )


class TestNeighbourPrecompute:
    def test_precompute_pays_off_per_iteration(self, benchmark):
        """Grouped neighbour lists trade setup time for iteration time."""
        with_pre, dataset = benchmark.pedantic(
            _fit, kwargs={"precompute_neighbours": True}, rounds=1, iterations=1
        )
        without = MHKModes(
            n_clusters=K_FIG9, bands=10, rows=1, max_iter=6, seed=0,
            absent_code=0, precompute_neighbours=False,
        ).fit(dataset.X)
        # Identical clustering either way (it is a pure execution detail) —
        assert np.array_equal(with_pre.labels_, without.labels_)
        # — but iterations are cheaper with the precomputed lists.
        assert (
            with_pre.stats_.mean_iteration_s
            <= without.stats_.mean_iteration_s * 1.1
        )
        write_result(
            "ablation_neighbour_precompute",
            "Ablation — grouped neighbour precompute vs on-the-fly unions\n"
            + format_table(
                ["variant", "setup_s", "mean iter_s"],
                [
                    ["precomputed", f"{with_pre.stats_.setup_s:.3f}",
                     f"{with_pre.stats_.mean_iteration_s:.3f}"],
                    ["on-the-fly", f"{without.stats_.setup_s:.3f}",
                     f"{without.stats_.mean_iteration_s:.3f}"],
                ],
            ),
        )


class TestBandRowSweep:
    def test_sweep_matches_section_3d_guidance(self, benchmark):
        """More bands → bigger shortlists; more rows → smaller ones."""
        dataset = get_dataset("fig2")

        def run(bands, rows):
            return MHKModes(
                n_clusters=800, bands=bands, rows=rows, max_iter=4, seed=0
            ).fit(dataset.X)

        models = benchmark.pedantic(
            lambda: {
                (b, r): run(b, r) for b, r in ((5, 2), (20, 2), (50, 2), (20, 5))
            },
            rounds=1,
            iterations=1,
        )
        shortlist = {
            key: float(np.nanmean(m.stats_.shortlist_sizes))
            for key, m in models.items()
        }
        # Bands grow the shortlist at fixed rows...
        assert shortlist[(5, 2)] <= shortlist[(20, 2)] <= shortlist[(50, 2)] + 0.5
        # ...rows shrink it at fixed bands.
        assert shortlist[(20, 5)] <= shortlist[(20, 2)]
        rows_out = [
            [f"{b}b {r}r", f"{shortlist[(b, r)]:.2f}",
             f"{cluster_purity(models[(b, r)].labels_, dataset.labels):.3f}"]
            for (b, r) in sorted(shortlist)
        ]
        write_result(
            "ablation_band_row_sweep",
            "Ablation — (bands, rows) sweep on the Figure 2 dataset\n"
            + format_table(["config", "mean shortlist", "purity"], rows_out),
        )
