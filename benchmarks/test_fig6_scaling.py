"""Figure 6 — how the two algorithms scale with items, clusters, attributes.

Reuses the Figure 2/4/5/5xl runs plus one extra configuration
(doubled clusters at the large item count) and checks the paper's
growth-rate claims:

* 6a: both algorithms grow roughly linearly in n, but MH grows slower;
* 6b: doubling k grows K-Modes' total time far faster than MH's —
  at the paper's scale MH on 2k clusters even beats K-Modes on k;
* 6c: growing m widens the absolute gap (paper: +8 h for MH vs +72 h
  for K-Modes going from 200 to 400 attributes).
"""

import pytest

from benchmarks.conftest import get_comparison, write_result
from repro.experiments.configs import FIG4, baseline, mh
from repro.experiments.report import format_table
from repro.experiments.runner import run_synthetic_experiment

_EXTRA_CACHE = {}


def _fig6b_extra():
    """Doubled clusters at the Figure-4 item count (run once)."""
    if "fig6b" not in _EXTRA_CACHE:
        config = FIG4.scaled(
            exp_id="fig6b-extra",
            n_clusters=FIG4.n_clusters * 2,
            variants=(mh(20, 5), baseline()),
        )
        _EXTRA_CACHE["fig6b"] = run_synthetic_experiment(config)
    return _EXTRA_CACHE["fig6b"]


def _total(comparison, label):
    return comparison.results[label].total_time_s


MH_LABEL = "MH-K-Modes 20b 5r"
BASE_LABEL = "K-Modes"


def test_fig6a_item_scaling(benchmark):
    """Total-time growth from 4k to 11k items (Figure 6a)."""
    small = get_comparison("fig2")   # n=4000, k=800, m=60
    large = benchmark.pedantic(get_comparison, args=("fig4",), rounds=1, iterations=1)

    # MH's *growth* is compared with generous slack: at laptop scale the
    # MH totals are dominated by the (constant-ish) setup pass, which
    # makes growth ratios noisy; the load-bearing claim is the absolute
    # win at the larger size, asserted below.
    mh_growth = _total(large, MH_LABEL) / _total(small, MH_LABEL)
    base_growth = _total(large, BASE_LABEL) / _total(small, BASE_LABEL)
    assert mh_growth < base_growth * 1.6

    rows = [
        ["4000", f"{_total(small, MH_LABEL):.2f}", f"{_total(small, BASE_LABEL):.2f}"],
        ["11000", f"{_total(large, MH_LABEL):.2f}", f"{_total(large, BASE_LABEL):.2f}"],
    ]
    write_result(
        "fig6a_scaling_items",
        "Figure 6a — total time (s) vs items\n"
        + format_table(["items", MH_LABEL, BASE_LABEL], rows),
    )
    # At the larger size MH must win end-to-end.
    assert _total(large, MH_LABEL) < _total(large, BASE_LABEL)


def test_fig6b_cluster_scaling(benchmark):
    """Total-time growth from k=800 to k=1600 at n=11 000 (Figure 6b)."""
    small = get_comparison("fig4")
    large = benchmark.pedantic(_fig6b_extra, rounds=1, iterations=1)

    mh_growth = _total(large, MH_LABEL) - _total(small, MH_LABEL)
    base_growth = _total(large, BASE_LABEL) - _total(small, BASE_LABEL)
    assert mh_growth < base_growth  # k hits K-Modes much harder

    # The paper's stronger claim: MH on the doubled cluster count beats
    # K-Modes on the doubled cluster count by a wide margin.
    assert _total(large, BASE_LABEL) / _total(large, MH_LABEL) > 1.5

    rows = [
        ["800", f"{_total(small, MH_LABEL):.2f}", f"{_total(small, BASE_LABEL):.2f}"],
        ["1600", f"{_total(large, MH_LABEL):.2f}", f"{_total(large, BASE_LABEL):.2f}"],
    ]
    write_result(
        "fig6b_scaling_clusters",
        "Figure 6b — total time (s) vs clusters (n=11000)\n"
        + format_table(["clusters", MH_LABEL, BASE_LABEL], rows),
    )


def test_fig6c_attribute_scaling(benchmark):
    """Total-time growth over m ∈ {60, 120, 240} (Figure 6c)."""
    series = {}
    for exp_id, m in (("fig2", 60), ("fig5", 120), ("fig5xl", 240)):
        comparison = get_comparison(exp_id)
        series[m] = (
            _total(comparison, MH_LABEL),
            _total(comparison, BASE_LABEL),
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Doubling m from 120 to 240 must cost K-Modes more extra seconds
    # than MH (paper: +72 h vs +8 h).
    mh_extra = series[240][0] - series[120][0]
    base_extra = series[240][1] - series[120][1]
    assert mh_extra < base_extra

    rows = [
        [str(m), f"{mh_t:.2f}", f"{base_t:.2f}"]
        for m, (mh_t, base_t) in sorted(series.items())
    ]
    write_result(
        "fig6c_scaling_attributes",
        "Figure 6c — total time (s) vs attributes (n=4000, k=800)\n"
        + format_table(["attributes", MH_LABEL, BASE_LABEL], rows),
    )
