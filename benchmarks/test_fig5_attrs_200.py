"""Figure 5 — doubled attributes (paper: 200 attrs; here 120).

Claims reproduced:

* 5a: the MH advantage persists (and the absolute per-iteration saving
  grows) when each comparison costs twice as much;
* 5b: the shortlist stays orders of magnitude below k regardless of m.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_comparison
from benchmarks.figure_utils import (
    assert_acceleration_shape,
    benchmark_variant_fit,
    report_figure,
)
from repro.experiments.configs import FIG5, baseline, mh


@pytest.mark.parametrize(
    "variant",
    [mh(20, 5), mh(50, 5), baseline()],
    ids=lambda v: v.label,
)
def test_fig5_variant_fit(benchmark, variant):
    model = benchmark_variant_fit(benchmark, FIG5, variant)
    assert model.n_iter_ >= 1


def test_fig5_report(benchmark):
    comparison = benchmark.pedantic(
        report_figure, args=("fig5", "fig5_attrs_doubled"), rounds=1, iterations=1
    )
    assert_acceleration_shape(comparison, min_iteration_speedup=1.5)

    # Per-iteration saving at m=120 exceeds the m=60 saving (Figure 5a
    # versus Figure 2a — each avoided comparison is twice as wide).
    fig2 = get_comparison("fig2")

    def saving(cmp):
        base = cmp.baseline.stats.mean_iteration_s
        best = min(
            run.stats.mean_iteration_s
            for label, run in cmp.results.items()
            if label != "K-Modes"
        )
        return base - best

    assert saving(comparison) > saving(fig2)

    # Figure 5b: shortlist size does not blow up with m.
    s20 = np.nanmean(comparison.results["MH-K-Modes 20b 5r"].stats.shortlist_sizes)
    assert s20 < 8.0
