"""Figure 10 — Yahoo! Answers at TF-IDF threshold 0.3 (max 10 iterations).

Paper: 157 602 questions × 2 881 attributes × 2 916 topics; MH 1b 1r /
20b 5r / 50b 5r vs K-Modes, capped at 10 iterations.  Scaled here to
5 000 questions × ~1 200 attributes × 300 topics.  Claims reproduced:

* 10a: every MH variant's iterations are several times faster;
* 10b: 1b 1r achieves the most efficient clustering (the paper's
  highlighted result) at roughly half the baseline's total time;
* 10c: shortlists stay far below the topic count;
* purity: all variants essentially tie (paper Figure 9e analogue).

Known laptop-scale deviation (documented in EXPERIMENTS.md): at only
3-4 iterations, the 250-hash 50b 5r index cannot amortise its one-off
setup, so its *total* time can exceed the baseline here, whereas the
paper — amortising over ~20-hour iterations — still saw a win.
"""

import numpy as np
import pytest

from benchmarks.figure_utils import (
    assert_acceleration_shape,
    benchmark_variant_fit,
    report_figure,
)
from repro.experiments.configs import FIG10, baseline, mh


@pytest.mark.parametrize(
    "variant",
    [mh(1, 1), baseline()],
    ids=lambda v: v.label,
)
def test_fig10_variant_fit(benchmark, variant):
    model = benchmark_variant_fit(benchmark, FIG10, variant)
    assert model.n_iter_ >= 1


def test_fig10_report(benchmark):
    comparison = benchmark.pedantic(
        report_figure, args=("fig10", "fig10_yahoo_tfidf03"), rounds=1, iterations=1
    )
    assert_acceleration_shape(
        comparison,
        min_iteration_speedup=3.0,
        min_purity_ratio=0.9,
        max_shortlist_fraction=0.05,
    )
    # Figure 10b: an MH configuration is the most efficient overall.
    # (In the paper that is 1b 1r; at laptop scale 20b 5r occasionally
    # edges it because the baseline's iterations are so much shorter —
    # the ordering among MH variants is within noise here.)
    totals = {
        label: run.total_time_s for label, run in comparison.results.items()
    }
    assert min(totals, key=totals.get) != "K-Modes"
    # The paper's headline 1b 1r config beats the baseline by ~2x+.
    assert comparison.speedup("MH-K-Modes 1b 1r") > 2.0
    # Purity: all variants tie within noise (paper's repeated finding).
    purities = [run.purity for run in comparison.results.values()]
    assert max(purities) - min(purities) < 0.05
