"""Engine scaling — end-to-end fit wall-time versus backend / n_jobs.

The workload is the Figure 2 configuration scaled up to 20 000 items
(same 60 attributes; k = 800), the regime the ROADMAP's sharding /
multi-backend north star targets.  Every backend starts from the same
initial modes and runs batch updates, so the runs are comparable *and*
must produce identical labels; the table records how the wall time
splits across the engine phases.

The ``serial/item`` row is the legacy baseline: the paper-shaped
per-item pass that was the serial batch path before the vectorised
hot loop landed.  Three claims are asserted:

* equivalence — every run returns exactly the same labels;
* vectorisation — plain ``serial`` (which now routes batch updates
  through the vectorised chunk kernel) beats the per-item baseline on
  the iterations phase by a wide margin;
* engine overhead — ``backend='process', n_jobs=4`` beats the
  per-item baseline on the iterations phase too, even on a
  single-core host: one fit-lifetime pool (band keys and the
  neighbour CSR cross once, through shared memory) plus the
  vectorised kernels outweigh the IPC cost.  On multi-core hosts the
  chunks additionally run concurrently.

The wall-clock gates compare the *iterations* phase, where the margin
is severalfold; end-to-end totals are recorded in the results table
but not asserted — on a loaded single-core host they are dominated by
the phases all runs share (exhaustive scan, hashing) plus scheduler
noise, which swamps a ~1.05x total-time margin.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator

N_ITEMS = 20_000
N_CLUSTERS = 800
N_ATTRIBUTES = 60
MAX_ITER = 4
SEED = 2016

#: (label, backend, n_jobs, force_per_item_pass) in execution order.
#: The process run goes first so its fork cost reflects a fresh heap —
#: later fits inflate the parent's page tables, which a single-core
#: host then pays for on every copy-on-write fault.
RUNS = [
    ("process x4", "process", 4, False),
    ("serial/item", "serial", None, True),
    ("serial", "serial", None, False),
    ("thread x2", "thread", 2, False),
]

#: Row order for the rendered table (baseline first).
PRESENTATION = ["serial/item", "serial", "thread x2", "process x4"]


@pytest.fixture(scope="module")
def workload():
    dataset = RuleBasedGenerator(
        n_clusters=N_CLUSTERS,
        n_attributes=N_ATTRIBUTES,
        domain_size=40_000,
        noise_rate=0.1,
        seed=SEED,
    ).generate(N_ITEMS)
    rng = np.random.default_rng(SEED)
    initial = dataset.X[
        rng.choice(N_ITEMS, size=N_CLUSTERS, replace=False)
    ].copy()
    return dataset, initial


def _fit(workload, backend: str, n_jobs: int | None, per_item: bool):
    dataset, initial = workload
    model = MHKModes(
        n_clusters=N_CLUSTERS,
        bands=20,
        rows=5,
        max_iter=MAX_ITER,
        seed=SEED,
        update_refs="batch",
        backend=backend,
        n_jobs=n_jobs,
    )
    if per_item:
        model._force_per_item_pass = True
    start = time.perf_counter()
    model.fit(dataset.X, initial_centroids=initial)
    return model, time.perf_counter() - start


def test_engine_scaling(workload):
    rows = {}
    fitted = {}
    for label, backend, n_jobs, per_item in RUNS:
        model, elapsed = _fit(workload, backend, n_jobs, per_item)
        phases = model.stats_.phase_s
        # keep only the comparison artefacts — holding four fitted
        # indexes alive would bloat the heap the process pools fork
        fitted[label] = (model.labels_, elapsed, phases["iterations"])
        rows[label] = (
            f"{label:>11}  {elapsed:8.3f}s  "
            f"exhaustive={phases['exhaustive_assign']:6.3f}s  "
            f"signatures={phases['signatures']:6.3f}s  "
            f"index={phases['index_build']:6.3f}s  "
            f"iterations={phases['iterations']:6.3f}s  "
            f"pool={phases['session_open']:5.3f}s  "
            f"iters={model.n_iter_}"
        )
        del model
        gc.collect()

    baseline_labels, baseline_time, baseline_iter = fitted["serial/item"]
    _, serial_time, serial_iter = fitted["serial"]
    _, process_time, process_iter = fitted["process x4"]
    header = (
        f"engine scaling: MH-K-Modes 20b 5r, n={N_ITEMS} m={N_ATTRIBUTES} "
        f"k={N_CLUSTERS}, batch updates, max_iter={MAX_ITER} "
        f"(serial/item = legacy per-item pass)"
    )
    write_result(
        "engine_scaling",
        "\n".join(
            [
                header,
                *(rows[label] for label in PRESENTATION),
                f"serial vectorised vs per-item end-to-end: "
                f"{baseline_time / serial_time:.2f}x",
                f"process x4 vs per-item end-to-end: "
                f"{baseline_time / process_time:.2f}x",
            ]
        ),
    )

    # equivalence: identical labels for every run at the fixed seed
    for label, (labels, _, _) in fitted.items():
        assert np.array_equal(labels, baseline_labels), label

    # acceleration: both the vectorised serial pass and the full
    # process engine must beat the legacy per-item loop on the phase
    # the hot path owns.  Wall-clock comparisons are too noisy on
    # shared CI runners to gate a build, so the timing assertions are
    # local-only; equivalence above is asserted everywhere.
    if os.environ.get("CI"):
        pytest.skip("wall-clock speedup assertion is flaky on shared CI runners")
    assert serial_iter < baseline_iter, (
        f"vectorised serial iterations took {serial_iter:.3f}s vs per-item "
        f"{baseline_iter:.3f}s"
    )
    assert process_iter < baseline_iter, (
        f"process x4 iterations took {process_iter:.3f}s vs per-item "
        f"{baseline_iter:.3f}s"
    )
