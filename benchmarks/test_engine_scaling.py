"""Engine scaling — end-to-end fit wall-time versus backend / n_jobs.

The workload is the Figure 2 configuration scaled up to 20 000 items
(same 60 attributes; k = 800), the regime the ROADMAP's sharding /
multi-backend north star targets.  Every backend starts from the same
initial modes and runs batch updates, so the runs are comparable *and*
must produce identical labels; the table records how the wall time
splits across the engine phases.

Two claims are asserted:

* equivalence — every backend returns exactly the serial labels;
* acceleration — ``backend='process', n_jobs=4`` finishes the whole
  fit in less wall time than ``serial``.  The win comes from the
  engine's vectorised chunk kernels replacing the per-item inner loop
  (and on multi-core hosts, from the chunks running concurrently).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator

N_ITEMS = 20_000
N_CLUSTERS = 800
N_ATTRIBUTES = 60
MAX_ITER = 4
SEED = 2016

#: (label, backend, n_jobs) in presentation order.
RUNS = [
    ("serial", "serial", None),
    ("thread x2", "thread", 2),
    ("process x4", "process", 4),
]


@pytest.fixture(scope="module")
def workload():
    dataset = RuleBasedGenerator(
        n_clusters=N_CLUSTERS,
        n_attributes=N_ATTRIBUTES,
        domain_size=40_000,
        noise_rate=0.1,
        seed=SEED,
    ).generate(N_ITEMS)
    rng = np.random.default_rng(SEED)
    initial = dataset.X[
        rng.choice(N_ITEMS, size=N_CLUSTERS, replace=False)
    ].copy()
    return dataset, initial


def _fit(workload, backend: str, n_jobs: int | None):
    dataset, initial = workload
    model = MHKModes(
        n_clusters=N_CLUSTERS,
        bands=20,
        rows=5,
        max_iter=MAX_ITER,
        seed=SEED,
        update_refs="batch",
        backend=backend,
        n_jobs=n_jobs,
    )
    start = time.perf_counter()
    model.fit(dataset.X, initial_centroids=initial)
    return model, time.perf_counter() - start


def test_engine_scaling(workload):
    rows = []
    fitted = {}
    for label, backend, n_jobs in RUNS:
        model, elapsed = _fit(workload, backend, n_jobs)
        phases = model.stats_.phase_s
        # keep only the comparison artefacts — holding three fitted
        # indexes alive would bloat the heap the process pools fork
        fitted[label] = (model.labels_, elapsed)
        rows.append(
            f"{label:>10}  {elapsed:8.3f}s  "
            f"exhaustive={phases['exhaustive_assign']:6.3f}s  "
            f"signatures={phases['signatures']:6.3f}s  "
            f"index={phases['index_build']:6.3f}s  "
            f"iterations={phases['iterations']:6.3f}s  "
            f"iters={model.n_iter_}"
        )
        del model

    serial_labels, serial_time = fitted["serial"]
    _, process_time = fitted["process x4"]
    header = (
        f"engine scaling: MH-K-Modes 20b 5r, n={N_ITEMS} m={N_ATTRIBUTES} "
        f"k={N_CLUSTERS}, batch updates, max_iter={MAX_ITER}"
    )
    speedup = serial_time / process_time
    write_result(
        "engine_scaling",
        "\n".join(
            [header, *rows, f"process x4 vs serial end-to-end: {speedup:.2f}x"]
        ),
    )

    # equivalence: identical labels for every backend at the fixed seed
    for label, (labels, _) in fitted.items():
        assert np.array_equal(labels, serial_labels), label

    # acceleration: the parallel engine must beat the serial loop
    # end-to-end, even on a single-core host (vectorised chunk kernels).
    # Wall-clock comparisons are too noisy on shared CI runners to gate
    # a build, so the timing assertion is local-only; equivalence above
    # is asserted everywhere.
    if os.environ.get("CI"):
        pytest.skip("wall-clock speedup assertion is flaky on shared CI runners")
    assert process_time < serial_time, (
        f"process x4 took {process_time:.3f}s vs serial {serial_time:.3f}s"
    )
