"""The model server: one artifact, one warm pool, many batches.

:class:`ModelServer` is the serving counterpart of a fit session.  At
construction it pays every per-model cost exactly once — rebuilding
the artifact's clustered LSH index (frozen into read-only query mode)
and, on parallel backends, opening a
:class:`~repro.engine.pool.PersistentPool` whose workers stay warm
across requests.  Each ``predict`` call then only pays for its own
rows: the batch is split into contiguous spans (at most
``spec.chunk_items`` rows each, at least one span per worker) with
:func:`~repro.engine.chunking.chunk_ranges`, every span runs the
estimator's own batched shortlist ``predict`` — the same code path
``ClusterModel.predict`` uses — and the label chunks concatenate back
in row order.  Chunking therefore never changes a label: serial,
threaded and process-parallel serving are bit-identical, which the
property suite in ``tests/properties/test_serve_equivalence.py``
asserts exhaustively.

Process pools cannot see a request's matrix through fork copy-on-write
(the pool predates the request), so the server keeps one shared-memory
**request buffer** of ``spec.max_batch`` rows: the batch is copied in
once, workers attach to the segment via its
:class:`~repro.engine.shared.SharedArray` descriptor, and only the
small label chunks ride the result pickles.  A lock serialises buffer
use, so any number of caller threads may hammer one server; thread
and serial backends need no buffer (shared address space) and dispatch
concurrently.

With ``ServeSpec(allow_extend=True)`` the server additionally accepts
**streaming ingest**: :meth:`ModelServer.extend` assigns a batch
through the same pooled predict path, then bulk-inserts the rows into
the (insertable, unfrozen) index with
:meth:`~repro.lsh.index.BaseClusteredIndex.insert_batch`, so later
requests shortlist against them.  The model's centroids stay fixed —
serving never retrains — and a mutation lock serialises requests while
streaming is on (the index is being written).  Process backends are
rejected for streaming servers: their workers hold private index
copies an insert in the parent could never reach.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading

import numpy as np

from repro import kernels
from repro.api.model import ClusterModel
from repro.api.specs import ServeSpec
from repro.engine.backends import resolve_backend
from repro.engine.chunking import chunk_ranges
from repro.engine.pool import PersistentPool
from repro.engine.shared import SharedArray, resolve_array
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    ServerClosedError,
)
from repro.instrumentation import Timer
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    metrics as process_metrics,
    traced,
)
from repro.resilience.queue import AdmissionQueue
from repro.resilience.retry import RetryPolicy

__all__ = ["ModelServer"]


@traced("serve.predict_chunk")
def _predict_chunk(static, dynamic, span: tuple[int, int]) -> np.ndarray:
    """Kernel: predict one row span of the (possibly shared) matrix.

    ``static`` is the serving estimator (frozen index), pinned for the
    pool's lifetime; ``dynamic`` is the request matrix — a
    :class:`~repro.engine.shared.SharedArray` descriptor of the request
    buffer for process pools, the array itself for threads.
    """
    start, stop = span
    X = resolve_array(dynamic)
    return static.predict(X[start:stop])


@traced("serve.extend_chunk")
def _extend_chunk(
    static, dynamic, span: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Kernel: label one row span AND return its signatures.

    The streaming-ingest variant of :func:`_predict_chunk`: MinHash is
    the dominant per-row cost, and the caller needs the signatures
    again for ``insert_batch`` — so the chunk hashes once and returns
    ``(labels, signatures)``.  Only dispatched on shared-address-space
    pools (``allow_extend`` rejects process backends).
    """
    start, stop = span
    X = resolve_array(dynamic)[start:stop]
    signatures = static._signatures(X)
    return static._predict_from_signatures(X, signatures), signatures


class ModelServer:
    """Serve ``predict`` batches from a :class:`~repro.api.ClusterModel`.

    Parameters
    ----------
    model:
        The fitted artifact to serve.
    spec:
        A :class:`~repro.api.ServeSpec` (or its ``to_dict`` form).
        ``None``: the default spec (serial, in-process).

    Attributes
    ----------
    requests_served_, items_served_:
        Running totals across the server's lifetime (thread-safe).

    Use as a context manager, or call :meth:`close` when done; a closed
    server rejects further requests and its pool counters return to
    zero (asserted by the leak tests via
    :func:`repro.engine.pool.live_pool_count`).
    """

    def __init__(self, model: ClusterModel, spec: ServeSpec | dict | None = None):
        if not isinstance(model, ClusterModel):
            raise ConfigurationError(
                f"ModelServer serves ClusterModel artifacts, got "
                f"{type(model).__name__}; export one with fitted_model() "
                "or load one with load_cluster_model()"
            )
        if isinstance(spec, dict):
            spec = ServeSpec.from_dict(spec)
        if spec is None:
            spec = ServeSpec()
        if not isinstance(spec, ServeSpec):
            raise ConfigurationError(
                f"spec must be a ServeSpec, got {type(spec).__name__}"
            )
        self.model = model
        self.spec = spec
        if spec.allow_extend:
            if model.band_keys is None:
                raise ConfigurationError(
                    "allow_extend needs a model with an exported index "
                    "(band keys); this artifact carries none"
                )
            # Streaming serving: reconstruct with precompute_neighbours
            # forced off, so the one index _restore_fit_state builds is
            # already insertable (and stays unfrozen) — no throwaway
            # neighbour-CSR build, no second rebuild.
            insertable = dataclasses.replace(
                model,
                params={**model.params, "precompute_neighbours": False},
            )
            self._estimator = insertable.to_estimator()
        else:
            # The serving estimator: index rebuilt once, then frozen —
            # every worker queries the same read-only structure.
            self._estimator = model.frozen_estimator()
        self._backend = resolve_backend(spec.backend, spec.n_jobs)
        self._buffer_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Serialises whole requests while the index is mutable
        # (allow_extend); read-only serving stays lock-free.
        self._mutate_lock: threading.RLock | None = (
            threading.RLock() if spec.allow_extend else None
        )
        self._requests = 0
        self._items = 0
        self._extended = 0
        self._closed = False
        self._x_buffer: SharedArray | None = None
        # Per-server metrics (ServeSpec.emit_metrics): request counters,
        # latency/batch histograms and the in-flight gauge live in a
        # private registry so several servers in one process never mix;
        # process pools additionally merge their workers' kernel spans
        # here (the snapshot/merge protocol in repro.obs).
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if spec.emit_metrics else None
        )
        if self.metrics is not None:
            self._init_instruments()
        # Worker-death recovery: the pool's retry/degrade policy comes
        # from the resilience spec when one is set, pool defaults
        # otherwise (worker crashes are survivable either way).
        resilience = spec.resilience
        retry_policy = None
        degrade = "serial"
        if resilience is not None:
            retry_policy = RetryPolicy(
                max_retries=resilience.max_retries,
                backoff_ms=resilience.backoff_ms,
                backoff_max_ms=resilience.backoff_max_ms,
                jitter=resilience.jitter,
                seed=resilience.seed,
            )
            degrade = resilience.degrade
        self._pool: PersistentPool | None = None
        if self._backend.is_parallel:
            self._pool = PersistentPool(
                self._backend,
                static=self._estimator,
                metrics=self.metrics,
                retry_policy=retry_policy,
                degrade=degrade,
            )
        # Admission control: with a resilience spec, predict routes
        # through a bounded micro-batching queue whose waves call the
        # same chunked dispatch — coalescing never changes a label.
        # The mutation guard moves inside the wave (the dispatcher
        # thread runs it); submitters must not hold it while waiting.
        self._queue: AdmissionQueue | None = None
        if resilience is not None:
            self._queue = AdmissionQueue(
                self._queued_execute,
                max_queue_depth=resilience.max_queue_depth,
                max_in_flight=resilience.max_in_flight,
                max_wave_rows=spec.max_batch,
                deadline_ms=resilience.deadline_ms,
                batch_window_ms=resilience.batch_window_ms,
                registry=self.metrics,
            )

    def _init_instruments(self) -> None:
        """Register the request metric families up front.

        Eager registration means ``GET /metrics`` shows every family —
        zero-valued — before the first request, so scrapers see a
        stable schema.
        """
        registry = self.metrics
        assert registry is not None
        registry.gauge(
            "repro_requests_in_flight",
            help="Requests currently being answered.",
        )
        for op in ("predict", "extend"):
            for status in ("ok", "error"):
                registry.counter(
                    "repro_requests_total",
                    help="Requests answered, by op and status.",
                    labels={"op": op, "status": status},
                )
            registry.histogram(
                "repro_request_latency_seconds",
                help="Wall-clock seconds per request, by op.",
                labels={"op": op},
            )
            registry.histogram(
                "repro_request_batch_rows",
                help="Rows per request batch, by op.",
                labels={"op": op},
                buckets=DEFAULT_SIZE_BUCKETS,
            )

    @contextlib.contextmanager
    def _observe_request(self, op: str):
        """Record one request into the registry (no-op when disabled).

        Yields a mutable holder; the request path sets ``holder["rows"]``
        once the batch size is known.  Success records the latency and
        batch-size histograms plus the ``status="ok"`` counter; any
        exception records ``status="error"`` and re-raises.
        """
        holder = {"rows": 0}
        registry = self.metrics
        if registry is None:
            yield holder
            return
        in_flight = registry.gauge("repro_requests_in_flight")
        in_flight.inc()
        timer = Timer()
        try:
            with timer:
                yield holder
        except BaseException:
            registry.counter(
                "repro_requests_total", labels={"op": op, "status": "error"}
            ).inc()
            raise
        else:
            registry.counter(
                "repro_requests_total", labels={"op": op, "status": "ok"}
            ).inc()
            registry.histogram(
                "repro_request_latency_seconds", labels={"op": op}
            ).observe(timer.elapsed_s)
            registry.histogram(
                "repro_request_batch_rows",
                labels={"op": op},
                buckets=DEFAULT_SIZE_BUCKETS,
            ).observe(float(holder["rows"]))
        finally:
            in_flight.dec()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_path(cls, path, spec: ServeSpec | dict | None = None) -> "ModelServer":
        """Load a saved model (npz + json sidecar) and serve it.

        When ``spec`` is ``None``, a :class:`~repro.api.ServeSpec`
        persisted next to the model (``save_model(..., serve=...)``)
        is used; a model saved without one serves with the defaults.
        """
        from repro.data.io import load_cluster_model, load_serve_spec

        model = load_cluster_model(path)
        if spec is None:
            spec = load_serve_spec(path)
        return cls(model, spec)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def requests_served_(self) -> int:
        with self._stats_lock:
            return self._requests

    @property
    def items_served_(self) -> int:
        with self._stats_lock:
            return self._items

    @property
    def items_extended_(self) -> int:
        """Rows absorbed into the index via :meth:`extend`."""
        with self._stats_lock:
            return self._extended

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the queue and pool down; release the request buffer.

        With an admission queue, ``drain=True`` (default) answers what
        is already queued before tearing down — bounded by ``timeout``
        seconds, defaulting to the resilience spec's ``deadline_ms``
        when one is configured (queued requests could never take longer
        anyway).  New requests are refused with
        :class:`~repro.exceptions.ServerClosedError` the moment close
        begins.  Idempotent and safe to race from several threads: the
        pool is torn down exactly once (``PersistentPool.close``
        serialises).
        """
        self._closed = True
        if self._queue is not None:
            if timeout is None and self.spec.resilience is not None:
                deadline_ms = self.spec.resilience.deadline_ms
                timeout = None if deadline_ms is None else deadline_ms / 1000.0
            self._queue.close(drain=drain, timeout=timeout)
        if self._pool is not None:
            self._pool.close()  # releases the request buffer segment too

    def _check_open(self) -> None:
        if self._closed:
            raise ServerClosedError("this ModelServer is closed")

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels for a batch, bit-identical to ``ClusterModel.predict``.

        Batches larger than ``spec.max_batch`` are rejected (serving
        bounds its requests); an empty batch answers with zero labels.
        A request that fails validation raises without disturbing the
        pool — the next request proceeds normally.

        With a resilience spec, the request rides the admission queue:
        it may coalesce into a micro-batch wave with concurrent
        requests (same labels — waves split back by row offset), be
        rejected immediately with
        :class:`~repro.exceptions.OverloadedError` when the queue is
        full, or time out with
        :class:`~repro.exceptions.DeadlineExceededError`.
        """
        with self._observe_request("predict") as observed:
            X = self._prepare(X)
            n = int(X.shape[0])
            if self._queue is not None and n:
                labels = self._queue.submit(X)
                with self._stats_lock:
                    self._requests += 1
                    self._items += n
            else:
                with self._mutation_guard():
                    labels = self._predict_validated(X)
            observed["rows"] = int(labels.shape[0])
            return labels

    def extend(self, X: np.ndarray) -> np.ndarray:
        """Assign a batch *and* absorb it into the serving index.

        Streaming ingest through the serving pool: the rows are
        labelled exactly like :meth:`predict` (same chunked dispatch,
        same shortlist path against the current index state), then
        hashed once more and bulk-inserted with their labels via
        :meth:`~repro.lsh.index.BaseClusteredIndex.insert_batch`, so
        every later request's shortlists see them.  Centroids stay
        fixed — the model itself is immutable; what grows is the
        index's notion of the neighbourhoods.

        Requires ``ServeSpec(allow_extend=True)``.  Requests are
        serialised against each other and against :meth:`predict`
        while streaming is on.
        """
        if not self.spec.allow_extend:
            raise ConfigurationError(
                "this ModelServer is read-only; serve with "
                "ServeSpec(allow_extend=True) to accept extend requests"
            )
        with self._observe_request("extend") as observed:
            X = self._prepare(X)
            n = X.shape[0]
            observed["rows"] = int(n)
            with self._mutation_guard():
                if n == 0:
                    labels = np.empty(0, dtype=np.int64)
                elif self._pool is None:
                    signatures = self._estimator._signatures(X)
                    labels = self._estimator._predict_from_signatures(
                        X, signatures
                    )
                else:
                    results = self._pool.run(
                        _extend_chunk, self._spans(n), dynamic=X
                    )
                    labels = np.concatenate([chunk for chunk, _ in results])
                    signatures = np.concatenate([sigs for _, sigs in results])
                if n:
                    self._estimator._index.insert_batch(signatures, labels)
            with self._stats_lock:
                self._requests += 1
                self._items += n
                self._extended += n
            return labels

    def _mutation_guard(self):
        return (
            contextlib.nullcontext()
            if self._mutate_lock is None
            else self._mutate_lock
        )

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        """Validate one request into its canonical matrix.

        The row/width bounds run on the raw array *before* the
        estimator's canonicalisation, so an oversized or mis-shaped
        request is rejected without ever copying or scanning it.
        """
        self._check_open()
        raw = np.asarray(X)
        if raw.ndim == 2:
            if raw.shape[0] > self.spec.max_batch:
                raise DataValidationError(
                    f"batch of {raw.shape[0]} rows exceeds max_batch="
                    f"{self.spec.max_batch}; split the request or serve "
                    "with a larger ServeSpec.max_batch"
                )
            if raw.shape[1] != self.model.n_attributes:
                raise DataValidationError(
                    f"X has {raw.shape[1]} attributes but the model serves "
                    f"{self.model.n_attributes}"
                )
        return self._estimator._validate_predict_X(raw)

    def _dispatch_labels(self, X: np.ndarray) -> np.ndarray:
        """Raw chunked dispatch of a canonical batch (no bookkeeping).

        The one predict path everything funnels into: direct calls,
        distance serving, and the admission queue's waves (where ``X``
        is several coalesced requests — chunking splits it the same
        way it would one large batch).
        """
        n = X.shape[0]
        if self._pool is None or n == 0:
            return self._estimator.predict(X)
        spans = self._spans(n)
        if self._backend.name == "process":
            with self._buffer_lock:
                buffer = self._request_buffer(X.dtype)
                buffer[:n] = X
                chunks = self._pool.run(
                    _predict_chunk, spans, dynamic=self._x_buffer
                )
        else:
            chunks = self._pool.run(_predict_chunk, spans, dynamic=X)
        return np.concatenate(chunks)

    def _queued_execute(self, X: np.ndarray) -> np.ndarray:
        """Wave executor for the admission queue (dispatcher threads).

        Takes the mutation guard here rather than in ``predict``: a
        submitter blocking on its wave while holding the guard would
        deadlock against the dispatcher thread trying to acquire it.
        """
        with self._mutation_guard():
            return self._dispatch_labels(X)

    def _predict_validated(self, X: np.ndarray) -> np.ndarray:
        """Dispatch an already-canonical batch and count it."""
        labels = self._dispatch_labels(X)
        with self._stats_lock:
            self._requests += 1
            self._items += X.shape[0]
        return labels

    def predict_with_distance(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Labels plus each row's distance to its assigned centroid.

        The ``predict_proba``-style response: the label and how far the
        row sits from the centroid that won, scored with the
        estimator's vectorised ``_block_distances`` kernel.  Only
        estimators exposing that kernel (the LSH-accelerated family)
        support it.
        """
        block_distances = getattr(self._estimator, "_block_distances", None)
        if block_distances is None:
            raise ConfigurationError(
                f"{type(self._estimator).__name__} has no _block_distances "
                "kernel; distance serving is available for LSH-accelerated "
                "estimators only"
            )
        with self._observe_request("predict") as observed:
            X = self._prepare(X)  # validate once; predict and scoring share it
            with self._mutation_guard():
                labels = self._predict_validated(X)
            observed["rows"] = int(labels.shape[0])
            if len(labels) == 0:
                return labels, np.empty(0, dtype=np.float64)
            centroids = np.asarray(self.model.centroids)
            distances = np.asarray(
                block_distances(X, centroids[labels][:, None, :]),
                dtype=np.float64,
            )[:, 0]
            return labels, distances

    # ------------------------------------------------------------------
    # observability surface
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The enriched ``GET /health`` payload.

        Always carries liveness, model metadata, serving/pool state and
        the request totals; when metrics are on, also the predict
        latency percentiles estimated from the request histogram
        (``null`` until the first request).
        """
        payload = {
            "status": "closed" if self._closed else "ok",
            "model": {
                "repr": repr(self.model),
                "algorithm": self.model.algorithm,
                "n_clusters": int(self.model.n_clusters),
                "n_attributes": int(self.model.n_attributes),
            },
            "serving": {
                "backend": self.spec.backend,
                "kernels": kernels.active_backend(),
                "n_jobs": int(self._backend.n_jobs),
                "allow_extend": self.spec.allow_extend,
                "pool_open": self._pool is not None and not self._pool.closed,
                "pool_restarts": 0 if self._pool is None else self._pool.restarts,
                "metrics_enabled": self.metrics is not None,
                "resilience": (
                    None
                    if self.spec.resilience is None
                    else {
                        "queue_depth": (
                            0 if self._queue is None else self._queue.depth
                        ),
                        "max_queue_depth": self.spec.resilience.max_queue_depth,
                        "max_in_flight": self.spec.resilience.max_in_flight,
                        "deadline_ms": self.spec.resilience.deadline_ms,
                        "degrade": self.spec.resilience.degrade,
                    }
                ),
            },
            "requests_served": self.requests_served_,
            "items_served": self.items_served_,
            "items_extended": self.items_extended_,
        }
        if self.metrics is not None:
            histogram = self.metrics.histogram(
                "repro_request_latency_seconds", labels={"op": "predict"}
            )
            payload["latency_s"] = (
                {
                    "p50": histogram.quantile(0.50),
                    "p95": histogram.quantile(0.95),
                    "p99": histogram.quantile(0.99),
                }
                if histogram.count
                else None
            )
        return payload

    def stats(self) -> dict:
        """The ``{"op": "stats"}`` NDJSON payload: totals + snapshot."""
        return {
            "requests_served": self.requests_served_,
            "items_served": self.items_served_,
            "items_extended": self.items_extended_,
            "metrics": self.metrics_snapshot(),
        }

    def metrics_snapshot(self) -> dict | None:
        """JSON-safe merged registry snapshot (``None`` when disabled).

        Merges the per-server registry (request metrics, plus worker
        deltas shipped home by process pools) with the process-local
        default registry (span counters from same-address-space
        kernels, fit/extend phases, ...) — metric names are disjoint
        by construction, so the merge is a plain union.
        """
        if self.metrics is None:
            return None
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        merged.merge(process_metrics().snapshot())
        return merged.snapshot()

    def metrics_text(self) -> str:
        """The ``GET /metrics`` Prometheus text exposition.

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        server was built with ``ServeSpec(emit_metrics=False)``.
        """
        if self.metrics is None:
            raise ConfigurationError(
                "metrics are disabled on this server; serve with "
                "ServeSpec(emit_metrics=True) to expose /metrics"
            )
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        merged.merge(process_metrics().snapshot())
        return merged.to_prometheus()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _spans(self, n: int) -> list[tuple[int, int]]:
        """Contiguous row spans: ≤ ``chunk_items`` each, ≥ 1 per worker."""
        per_size = -(-n // self.spec.chunk_items)  # ceil
        return chunk_ranges(n, max(self._backend.n_jobs, per_size))

    def _request_buffer(self, dtype: np.dtype) -> np.ndarray:
        """The (lazily created) shared-memory request buffer.

        Sized ``(max_batch, n_attributes)`` in the canonical dtype the
        estimator's validation produces, so copying a validated batch
        in is exact.  Created under the buffer lock.
        """
        if self._x_buffer is None:
            assert self._pool is not None
            template = np.zeros(
                (self.spec.max_batch, self.model.n_attributes), dtype=dtype
            )
            self._x_buffer = self._pool.share(template)
        buffer = self._x_buffer.get()
        if buffer.dtype != dtype:  # pragma: no cover - canonical dtype is stable
            raise DataValidationError(
                f"request dtype {dtype} does not match the serving buffer "
                f"({buffer.dtype})"
            )
        return buffer

    def __repr__(self) -> str:
        return (
            f"ModelServer({self.model!r}, backend={self.spec.backend!r}, "
            f"requests={self.requests_served_})"
        )
