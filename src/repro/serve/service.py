"""Request/response plumbing for ``repro serve``.

Two transports over one request shape, both stdlib-only:

* **NDJSON** (:func:`serve_ndjson`) — newline-delimited JSON over
  stdin/stdout.  One request object per line, one response object per
  line, errors answered in-band as structured objects
  (``{"error": {"code": ..., "message": ...}}`` — see
  :data:`ERROR_CODES`) so a bad request never kills the stream.
* **HTTP** (:func:`make_http_server`) — a localhost
  :class:`http.server.ThreadingHTTPServer`: ``POST /predict`` with the
  same JSON body, ``GET /health`` for the enriched liveness/status
  document (model metadata, pool state, request totals, latency
  percentiles) and ``GET /metrics`` for the Prometheus text exposition
  of the server's :class:`~repro.obs.MetricsRegistry` (404 when the
  spec disables metrics).

Request shape::

    {"items": [[...], ...]}            → {"labels": [...], "count": n}
    {"items": [...], "distance": true} → + {"distances": [...]}
    {"items": [...], "id": 7}          → response echoes {"id": 7}
    {"items": [...], "op": "extend"}   → + {"extended": n}  (streaming
                                         ingest; needs a server with
                                         ServeSpec(allow_extend=True))
    {"op": "stats"}                    → request totals + a JSON metrics
                                         snapshot (no items needed)
    {"ping": true}                     → {"ok": true, "model": "..."}

Labels come from :meth:`repro.serve.ModelServer.predict` (or
:meth:`~repro.serve.ModelServer.extend` for the ``extend`` op, which
additionally inserts the rows into the serving index), so they are
bit-identical to in-process ``ClusterModel.predict`` — the CLI
round-trip test asserts exactly that.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO

import numpy as np

from repro.exceptions import (
    DataValidationError,
    DeadlineExceededError,
    OverloadedError,
    PoolBrokenError,
    ReproError,
    ServerClosedError,
)

__all__ = [
    "error_descriptor",
    "handle_request",
    "request_byte_limit",
    "serve_ndjson",
    "make_http_server",
]

#: The stable error taxonomy both transports expose.  Every error
#: answer is ``{"error": {"code": <code>, "message": <human text>}}``
#: (NDJSON in-band / HTTP body), with the matching HTTP status:
#:
#: ==================== ======= =============================================
#: code                 status  raised as
#: ==================== ======= =============================================
#: ``overloaded``       429     :class:`~repro.exceptions.OverloadedError`
#:                              (+ ``retry_after_s`` field and a
#:                              ``Retry-After`` header)
#: ``shutting_down``    503     :class:`~repro.exceptions.ServerClosedError`
#: ``deadline_exceeded`` 504    :class:`~repro.exceptions.DeadlineExceededError`
#: ``pool_broken``      500     :class:`~repro.exceptions.PoolBrokenError`
#: ``payload_too_large`` 413    transport byte limit (pre-parse)
#: ``invalid_json``     400     request line/body is not JSON
#: ``invalid_request``  400     any other validation failure
#: ==================== ======= =============================================
ERROR_CODES = (
    "overloaded",
    "shutting_down",
    "deadline_exceeded",
    "pool_broken",
    "payload_too_large",
    "invalid_json",
    "invalid_request",
)


def error_descriptor(exc: BaseException) -> tuple[int, dict]:
    """``(http_status, error_object)`` for one serving-path exception.

    The single source of truth both transports share, so an NDJSON
    client and an HTTP client always see the same ``code`` for the
    same failure.  ``ServerClosedError`` must be tested before the
    generic fallback: it deliberately subclasses
    :class:`~repro.exceptions.ConfigurationError` for backwards
    compatibility but is an availability condition, not a caller bug.
    """
    if isinstance(exc, OverloadedError):
        return 429, {
            "code": "overloaded",
            "message": str(exc),
            "retry_after_s": exc.retry_after_s,
        }
    if isinstance(exc, ServerClosedError):
        return 503, {"code": "shutting_down", "message": str(exc)}
    if isinstance(exc, DeadlineExceededError):
        return 504, {"code": "deadline_exceeded", "message": str(exc)}
    if isinstance(exc, PoolBrokenError):
        return 500, {"code": "pool_broken", "message": str(exc)}
    if isinstance(exc, json.JSONDecodeError):
        return 400, {"code": "invalid_json", "message": f"invalid JSON: {exc}"}
    return 400, {"code": "invalid_request", "message": str(exc)}


def request_byte_limit(server) -> int:
    """Transport-level byte cap derived from the serving spec.

    ``ServeSpec.max_batch`` bounds the *rows* a request may carry; this
    derives the matching bound on the *encoded* request, so neither
    transport buffers or parses a payload that could never be a legal
    batch.  32 bytes comfortably covers one JSON-encoded cell (a full
    float64 repr plus separators); the slack covers the envelope keys.
    """
    return server.spec.max_batch * max(1, server.model.n_attributes) * 32 + 65536


def _items_to_matrix(items, n_attributes: int) -> np.ndarray:
    """A request's ``items`` as a 2-D matrix (``[]`` → an empty batch)."""
    X = np.asarray(items)
    if X.ndim == 1 and X.size == 0:
        # JSON has no typed empty matrix; [] means "zero rows".
        return np.empty((0, n_attributes), dtype=np.int64)
    return X


def handle_request(server, payload) -> dict:
    """Answer one decoded request object against a ``ModelServer``.

    Raises :class:`~repro.exceptions.ReproError` subclasses on invalid
    requests; transports translate those into in-band error responses.
    """
    if not isinstance(payload, dict):
        raise DataValidationError(
            f"each request must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("ping"):
        return {"ok": True, "model": repr(server.model)}
    op = payload.get("op", "predict")
    if op not in ("predict", "extend", "stats"):
        raise DataValidationError(
            f"unknown op {op!r}; choose 'predict', 'extend' or 'stats'"
        )
    if op == "stats":
        response = server.stats()
        if "id" in payload:
            response["id"] = payload["id"]
        return response
    if "items" not in payload:
        raise DataValidationError("request object needs an 'items' matrix")
    X = _items_to_matrix(payload["items"], server.model.n_attributes)
    response: dict = {}
    if "id" in payload:
        response["id"] = payload["id"]
    if op == "extend":
        if payload.get("distance"):
            raise DataValidationError(
                "distance=true is a predict-op feature; extend requests "
                "return labels only"
            )
        labels = server.extend(X)
        response["extended"] = int(len(labels))
    elif payload.get("distance"):
        labels, distances = server.predict_with_distance(X)
        response["distances"] = distances.tolist()
    else:
        labels = server.predict(X)
    response["labels"] = labels.tolist()
    response["count"] = int(len(labels))
    return response


def serve_ndjson(server, stdin: IO[str], stdout: IO[str]) -> int:
    """Answer newline-delimited JSON requests until EOF.

    Every input line produces exactly one output line: the response,
    or ``{"error": ...}`` (with any request ``id`` echoed) when the
    line is malformed or the request invalid.  Lines longer than the
    spec-derived :func:`request_byte_limit` are rejected before any
    JSON parsing, so an oversized request cannot balloon the server's
    memory.  Returns the number of lines answered.
    """
    answered = 0
    byte_limit = request_byte_limit(server)
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        # measure encoded bytes, not code points, so the NDJSON and
        # HTTP transports enforce the same effective limit
        line_bytes = len(line.encode("utf-8")) if len(line) * 4 > byte_limit else len(line)
        if line_bytes > byte_limit:
            stdout.write(
                json.dumps(
                    {
                        "error": {
                            "code": "payload_too_large",
                            "message": (
                                f"request of {line_bytes} bytes exceeds the "
                                f"serving byte limit {byte_limit} "
                                f"(ServeSpec.max_batch={server.spec.max_batch})"
                            ),
                        }
                    }
                )
                + "\n"
            )
            stdout.flush()
            answered += 1
            continue
        request_id = None
        try:
            payload = json.loads(line)
            if isinstance(payload, dict):
                request_id = payload.get("id")
            response = handle_request(server, payload)
        except (json.JSONDecodeError, ReproError, ValueError, TypeError) as exc:
            _, error = error_descriptor(exc)
            response = {"error": error}
            if request_id is not None:
                response["id"] = request_id
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        answered += 1
    return answered


class _ServeHandler(BaseHTTPRequestHandler):
    """``POST /predict`` + ``GET /health`` + ``GET /metrics``."""

    # Set by make_http_server on the handler subclass.
    model_server = None

    def _reply(
        self, status: int, body: dict, headers: dict | None = None
    ) -> None:
        encoded = (json.dumps(body) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def _reply_error(self, exc: BaseException) -> None:
        """One exception → status + structured body + backoff headers."""
        status, error = error_descriptor(exc)
        headers = {}
        if status in (429, 503):
            # Retry-After must be a whole number of seconds; round the
            # estimate up so clients never come back early.
            retry_after_s = error.get("retry_after_s", 1.0)
            headers["Retry-After"] = str(max(1, int(-(-retry_after_s // 1))))
        self._reply(status, {"error": error}, headers)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/health":
            self._reply(200, self.model_server.health())
            return
        if self.path == "/metrics":
            if self.model_server.metrics is None:
                self._reply(
                    404,
                    {
                        "error": {
                            "code": "invalid_request",
                            "message": (
                                "metrics are disabled on this server "
                                "(ServeSpec.emit_metrics=False)"
                            ),
                        }
                    },
                )
                return
            body = self.model_server.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._reply(
            404,
            {
                "error": {
                    "code": "invalid_request",
                    "message": f"no such path {self.path!r}",
                }
            },
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/predict":
            self._reply(
                404,
                {
                    "error": {
                        "code": "invalid_request",
                        "message": f"no such path {self.path!r}",
                    }
                },
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            byte_limit = request_byte_limit(self.model_server)
            if length > byte_limit:
                # bounce before reading the body: max_batch bounds the
                # transport's memory, not just the parsed batch
                self._reply(
                    413,
                    {
                        "error": {
                            "code": "payload_too_large",
                            "message": (
                                f"request of {length} bytes exceeds the "
                                f"serving byte limit {byte_limit} "
                                "(ServeSpec.max_batch="
                                f"{self.model_server.spec.max_batch})"
                            ),
                        }
                    },
                )
                return
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            self._reply(200, handle_request(self.model_server, payload))
        except (json.JSONDecodeError, ReproError, ValueError, TypeError) as exc:
            self._reply_error(exc)

    def log_message(self, *args) -> None:  # pragma: no cover - silence
        pass


def make_http_server(
    server, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A localhost HTTP endpoint over a ``ModelServer`` (stdlib only).

    ``port=0`` binds an ephemeral port; read the actual one from
    ``httpd.server_address``.  The caller owns both lifetimes: shut the
    HTTP server down first, then close the model server.
    """
    handler = type(
        "BoundServeHandler", (_ServeHandler,), {"model_server": server}
    )
    return ThreadingHTTPServer((host, port), handler)
