"""Concurrent batch-predict serving on :class:`~repro.api.ClusterModel`.

Training produces an immutable artifact; this package turns that
artifact into a long-lived service:

* :mod:`repro.serve.server` — :class:`ModelServer`, which rebuilds the
  artifact's LSH index once at load (frozen into read-only query
  mode), keeps a :class:`~repro.engine.pool.PersistentPool` of workers
  warm across calls, and chunks large predict batches across them —
  labels bit-identical to ``ClusterModel.predict`` on every backend
  and chunking;
* :mod:`repro.serve.service` — the request/response plumbing behind
  the ``repro serve`` CLI: newline-delimited JSON over stdin/stdout,
  or a localhost HTTP endpoint built on the stdlib
  :mod:`http.server`.

Configuration is the :class:`~repro.api.ServeSpec` frozen dataclass
(backend / workers / chunking / request-size cap), persisted next to
the model by :func:`repro.data.io.save_model` and reloaded by
:func:`repro.data.io.load_serve_spec`.

Quick start::

    from repro.api import ServeSpec
    from repro.serve import ModelServer

    server = ModelServer.from_path(
        "model", spec=ServeSpec(backend="process", n_jobs=4)
    )
    with server:
        labels = server.predict(X)          # chunked across the pool
"""

from repro.serve.server import ModelServer
from repro.serve.service import (
    error_descriptor,
    handle_request,
    make_http_server,
    serve_ndjson,
)

__all__ = [
    "ModelServer",
    "serve_ndjson",
    "make_http_server",
    "handle_request",
    "error_descriptor",
]
