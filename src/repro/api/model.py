"""The immutable fitted-model artifact.

Training and serving have different lifecycles: a training estimator
is a mutable object wired to worker pools and iteration statistics,
while the thing deployments share, cache and version is just *what was
learned* — centroids, the index's band keys, and the specs that
reproduce the behaviour.  :class:`ClusterModel` is that artifact:

* **immutable** — a frozen dataclass whose arrays are read-only
  copies, safe to share across threads and processes;
* **self-contained** — carries the :class:`~repro.api.specs.LSHSpec` /
  :class:`~repro.api.specs.EngineSpec` /
  :class:`~repro.api.specs.TrainSpec` triple plus estimator-own
  parameters, so :meth:`predict` never needs the training object;
* **serialisable** — ``save``/``load`` round-trip through the npz +
  JSON sidecar format of :mod:`repro.data.io` with bit-identical
  predictions.

Every fitted estimator exports one via ``fitted_model()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from pathlib import Path
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

from repro.api.registry import get_estimator_class
from repro.api.specs import EngineSpec, LSHSpec, TrainSpec
from repro.exceptions import ConfigurationError, DataValidationError

__all__ = ["ClusterModel"]


def _values_equal(mine, theirs) -> bool:
    if isinstance(mine, np.ndarray) or isinstance(theirs, np.ndarray):
        if mine is None or theirs is None:
            return (mine is None) == (theirs is None)
        return bool(np.array_equal(mine, theirs))
    if isinstance(mine, float) and isinstance(theirs, float):
        return mine == theirs or (mine != mine and theirs != theirs)
    if isinstance(mine, Mapping) and isinstance(theirs, Mapping):
        return set(mine) == set(theirs) and all(
            _values_equal(mine[key], theirs[key]) for key in mine
        )
    return mine == theirs


def _frozen_array(value, name: str, ndim: int) -> np.ndarray:
    array = np.array(value)  # always a copy — the artifact owns its data
    if array.ndim != ndim:
        raise DataValidationError(
            f"ClusterModel.{name} must be {ndim}-D, got ndim={array.ndim}"
        )
    array.setflags(write=False)
    return array


@dataclass(frozen=True, repr=False)
class ClusterModel:
    """What a fit learned, frozen for serving.

    Parameters
    ----------
    algorithm:
        Registry name of the estimator (see
        :func:`repro.api.registry.available_estimators`).
    n_clusters:
        Number of clusters k.
    centroids:
        ``(k, m)`` fitted centroids (read-only copy).
    engine, train:
        The engine/training specs the estimator was configured with.
    lsh:
        The LSH spec, or ``None`` for exhaustive baselines.
    labels:
        Training assignments (read-only copy), when available.
    band_keys, assignments:
        The clustered index's banded keys and per-item cluster
        references; together they fully determine the rebuilt index
        (buckets *and* neighbour CSR), so serving reproduces the
        training index exactly.
    params:
        Estimator-own constructor parameters outside the specs
        (e.g. ``absent_code``; the full flat kwargs for baselines).
    state:
        Fitted scalars (``cost``, ``n_iter``, ``converged``, and any
        encoder state such as ``fitted_domain_size``).
    metadata:
        Free-form provenance (class name, library version).
    """

    algorithm: str
    n_clusters: int
    centroids: np.ndarray
    engine: EngineSpec
    train: TrainSpec
    lsh: LSHSpec | None = None
    labels: np.ndarray | None = None
    band_keys: np.ndarray | None = None
    assignments: np.ndarray | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    state: Mapping[str, Any] = field(default_factory=dict)
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ConfigurationError(
                f"algorithm must be a registry name, got {self.algorithm!r}"
            )
        if self.n_clusters <= 0:
            raise ConfigurationError(
                f"n_clusters must be positive, got {self.n_clusters}"
            )
        if not isinstance(self.engine, EngineSpec):
            raise ConfigurationError("engine must be an EngineSpec")
        if not isinstance(self.train, TrainSpec):
            raise ConfigurationError("train must be a TrainSpec")
        if self.lsh is not None and not isinstance(self.lsh, LSHSpec):
            raise ConfigurationError("lsh must be an LSHSpec or None")
        set_ = object.__setattr__
        set_(self, "centroids", _frozen_array(self.centroids, "centroids", 2))
        if self.labels is not None:
            set_(self, "labels", _frozen_array(self.labels, "labels", 1))
        if (self.band_keys is None) != (self.assignments is None):
            raise DataValidationError(
                "band_keys and assignments must be provided together"
            )
        if self.band_keys is not None:
            set_(self, "band_keys", _frozen_array(self.band_keys, "band_keys", 2))
            set_(
                self,
                "assignments",
                _frozen_array(self.assignments, "assignments", 1),
            )
            if len(self.band_keys) != len(self.assignments):
                raise DataValidationError(
                    f"band_keys ({len(self.band_keys)} items) and assignments "
                    f"({len(self.assignments)} items) disagree"
                )
        set_(self, "params", MappingProxyType(dict(self.params)))
        set_(self, "state", MappingProxyType(dict(self.state)))
        set_(self, "metadata", MappingProxyType(dict(self.metadata)))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_items(self) -> int:
        """Items the model has absorbed (0 when no index was exported)."""
        return 0 if self.assignments is None else len(self.assignments)

    @property
    def n_attributes(self) -> int:
        return self.centroids.shape[1]

    def specs_dict(self) -> dict:
        """The three specs as plain dicts (``None`` for an absent LSH)."""
        return {
            "lsh": None if self.lsh is None else self.lsh.to_dict(),
            "engine": self.engine.to_dict(),
            "train": self.train.to_dict(),
        }

    def __repr__(self) -> str:
        indexed = (
            f", indexed_items={len(self.assignments)}"
            if self.assignments is not None
            else ""
        )
        return (
            f"ClusterModel(algorithm={self.algorithm!r}, "
            f"n_clusters={self.n_clusters}, "
            f"n_attributes={self.n_attributes}{indexed})"
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def to_estimator(self):
        """A fitted estimator reconstructed from this artifact.

        The estimator is built from the specs (no deprecation
        warnings), its fitted arrays restored, and — when band keys
        are present — the clustered index rebuilt in-process
        regardless of the recorded backend: results are
        backend-invariant and reconstructing a model should never fork
        a worker pool as a side effect.
        """
        cls = get_estimator_class(self.algorithm)
        kwargs = dict(self.params)
        kwargs.pop("n_clusters", None)  # passed explicitly below
        if getattr(cls, "_accepts_specs", False):
            kwargs.update(lsh=self.lsh, engine=self.engine, train=self.train)
        estimator = cls(n_clusters=self.n_clusters, **kwargs)
        restore = getattr(estimator, "_restore_fit_state", None)
        if restore is None:
            raise ConfigurationError(
                f"{cls.__name__} cannot be reconstructed from a ClusterModel"
            )
        restore(self)
        return estimator

    def frozen_estimator(self):
        """A serving estimator whose index is frozen read-only.

        Like :meth:`to_estimator`, but the rebuilt clustered index (if
        any) is switched into read-only query mode — safe for
        concurrent queries from any number of threads or serving
        workers, and unable to drift from the artifact.
        """
        estimator = self.to_estimator()
        index = getattr(estimator, "_index", None)
        if index is not None:
            index.freeze()
        return estimator

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new items using only this artifact.

        A serving estimator is materialised lazily from the specs on
        first call and cached (the artifact itself stays immutable —
        the cache is invisible to equality and serialisation); labels
        are bit-identical to the training estimator's ``predict``.
        """
        server = getattr(self, "_server_cache", None)
        if server is None:
            # The cache only ever answers queries; freezing it makes
            # concurrent predict calls on one artifact safe.
            server = self.frozen_estimator()
            object.__setattr__(self, "_server_cache", server)
        return server.predict(X)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path, serve=None) -> Path:
        """Write the artifact as ``<path>.npz`` + ``<path>.json``.

        ``serve`` optionally persists a :class:`~repro.api.ServeSpec`
        deployment default next to the model (see
        :func:`repro.data.io.load_serve_spec`).
        """
        from repro.data.io import save_model

        return save_model(self, path, serve=serve)

    @classmethod
    def load(cls, path: str | Path) -> "ClusterModel":
        """Read an artifact written by :meth:`save` (or ``save_model``)."""
        from repro.data.io import load_cluster_model

        return load_cluster_model(path)

    # Equality ignores the serving cache (a plain attribute set through
    # object.__setattr__, invisible to dataclass fields), compares
    # arrays by value and treats NaN scalars as equal (a model whose
    # cost is NaN must round-trip to an equal artifact).
    def __eq__(self, other) -> bool:
        if not isinstance(other, ClusterModel):
            return NotImplemented
        for spec_field in fields(self):
            if not _values_equal(
                getattr(self, spec_field.name), getattr(other, spec_field.name)
            ):
                return False
        return True

    __hash__ = None  # type: ignore[assignment] - arrays are unhashable
