"""The legacy-kwarg deprecation shim.

Before the spec API, every estimator took ~12 flat keyword arguments
(``bands=``, ``rows=``, ``backend=``, ``n_jobs=``, ...).  Those names
keep working — :func:`resolve_specs` maps each onto its spec field and
emits exactly one :class:`DeprecationWarning` per legacy kwarg — with
an equivalence guarantee: an estimator built from legacy kwargs and
one built from the equivalent specs produce identical labels, because
both paths resolve to the same frozen spec objects before any other
code runs.

Passing a spec *and* a legacy kwarg that targets the same spec is
ambiguous and raises :class:`~repro.exceptions.ConfigurationError`.
"""

from __future__ import annotations

import os
import sys
import warnings

from repro.api.specs import EngineSpec, LSHSpec, TrainSpec
from repro.exceptions import ConfigurationError

__all__ = ["LEGACY_PARAMETER_MAP", "resolve_specs"]

#: legacy kwarg name → (constructor spec argument, spec field).
LEGACY_PARAMETER_MAP: dict[str, tuple[str, str]] = {
    # LSHSpec
    "family": ("lsh", "family"),
    "bands": ("lsh", "bands"),
    "rows": ("lsh", "rows"),
    "width": ("lsh", "width"),
    "seed": ("lsh", "seed"),
    # EngineSpec
    "backend": ("engine", "backend"),
    "n_jobs": ("engine", "n_jobs"),
    "n_shards": ("engine", "n_shards"),
    "chunk_items": ("engine", "chunk_items"),
    "start_method": ("engine", "start_method"),
    # TrainSpec
    "init": ("train", "init"),
    "max_iter": ("train", "max_iter"),
    "update_refs": ("train", "update_refs"),
    "empty_cluster_policy": ("train", "empty_cluster_policy"),
    "track_cost": ("train", "track_cost"),
    "predict_fallback": ("train", "predict_fallback"),
}

_SPEC_CLASSES = {"lsh": LSHSpec, "engine": EngineSpec, "train": TrainSpec}


#: The installed ``repro`` package directory, for attributing the
#: deprecation warnings to the first *user* frame.
_PACKAGE_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _warn_legacy(
    owner: str, name: str, spec_arg: str, field: str, stacklevel: int
) -> None:
    message = (
        f"{owner}({name}=...) is deprecated; pass "
        f"{spec_arg}={_SPEC_CLASSES[spec_arg].__name__}({field}=...) instead "
        f"(see repro.api)"
    )
    if sys.version_info >= (3, 12):
        # Attribute to the first frame outside the repro package
        # regardless of call depth (direct construction, subclass
        # constructors, make_estimator, ...), so the warning is shown
        # under Python's default filters.
        warnings.warn(
            message,
            DeprecationWarning,
            stacklevel=2,
            skip_file_prefixes=(_PACKAGE_DIR,),
        )
    else:
        warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def resolve_specs(
    owner: str,
    lsh: LSHSpec | dict | None,
    engine: EngineSpec | dict | None,
    train: TrainSpec | dict | None,
    legacy: dict,
    *,
    lsh_default: LSHSpec,
    engine_default: EngineSpec,
    train_default: TrainSpec,
    stacklevel: int = 3,
):
    """Merge explicit specs and legacy kwargs into final spec objects.

    Parameters
    ----------
    owner:
        Estimator class name (for warning and error messages).
    lsh, engine, train:
        Explicit spec objects (or plain dicts, converted through
        ``from_dict``), or ``None`` to start from the estimator's
        defaults.
    legacy:
        The estimator constructor's ``**legacy`` catch-all.  Every key
        must be in :data:`LEGACY_PARAMETER_MAP`; each *string-valued*
        kwarg emits one :class:`DeprecationWarning` and lands on its
        spec field.  ``backend=`` carrying a pre-built
        :class:`~repro.engine.backends.ExecutionBackend` instance is
        the supported escape hatch for sharing one worker pool across
        estimators — it is accepted without a warning (a spec cannot
        hold a live pool).
    lsh_default, engine_default, train_default:
        The estimator's class-level default specs.
    stacklevel:
        Frames between the user's constructor call and this function,
        so deprecation warnings attribute to *user* code (3 when the
        constructor calls ``resolve_specs`` directly, 4 when it goes
        through ``BaseLSHAcceleratedClustering.__init__``).

    Returns
    -------
    tuple
        ``(lsh, engine, train, backend_instance)`` — the resolved
        specs, plus the pre-built
        :class:`~repro.engine.backends.ExecutionBackend` instance when
        the legacy ``backend=`` kwarg carried one (``None`` otherwise);
        the spec then records the instance's name and worker count.
    """
    unknown = [name for name in legacy if name not in LEGACY_PARAMETER_MAP]
    if unknown:
        raise TypeError(
            f"{owner}() got unexpected keyword argument(s) {sorted(unknown)}"
        )

    given = {"lsh": lsh, "engine": engine, "train": train}
    defaults = {"lsh": lsh_default, "engine": engine_default, "train": train_default}
    specs: dict[str, LSHSpec | EngineSpec | TrainSpec] = {}
    for arg, value in given.items():
        if value is None:
            specs[arg] = defaults[arg]
        elif isinstance(value, dict):
            specs[arg] = _SPEC_CLASSES[arg].from_dict(value)
        elif isinstance(value, _SPEC_CLASSES[arg]):
            specs[arg] = value
        else:
            raise ConfigurationError(
                f"{owner}({arg}=...) must be a {_SPEC_CLASSES[arg].__name__} "
                f"(or a dict of its fields), got {type(value).__name__}"
            )

    backend_instance = None
    overrides: dict[str, dict] = {"lsh": {}, "engine": {}, "train": {}}
    for name, value in legacy.items():
        spec_arg, field = LEGACY_PARAMETER_MAP[name]
        if given[spec_arg] is not None:
            raise ConfigurationError(
                f"{owner}() received both {spec_arg}= and the legacy "
                f"{name}= kwarg; configure the spec or the flat kwarg, "
                "not both"
            )
        if name == "backend" and not isinstance(value, str):
            # A pre-built ExecutionBackend instance: the supported (and
            # not deprecated) way to share one worker pool across fits.
            # The spec records its name/worker count for provenance and
            # serialisation; the estimator keeps the instance itself.
            from repro.engine.backends import ExecutionBackend

            if not isinstance(value, ExecutionBackend):
                raise ConfigurationError(
                    f"backend must be a backend name or an ExecutionBackend, "
                    f"got {type(value).__name__}"
                )
            n_jobs = legacy.get("n_jobs")
            if n_jobs is not None and n_jobs != value.n_jobs:
                raise ConfigurationError(
                    f"n_jobs={n_jobs} conflicts with the provided backend's "
                    f"n_jobs={value.n_jobs}; configure one or the other"
                )
            backend_instance = value
            overrides["engine"]["backend"] = value.name
            overrides["engine"]["n_jobs"] = value.n_jobs
            continue
        _warn_legacy(owner, name, spec_arg, field, stacklevel)
        overrides[spec_arg][field] = value

    for arg, changes in overrides.items():
        if changes:
            specs[arg] = specs[arg].replace(**changes)

    return specs["lsh"], specs["engine"], specs["train"], backend_instance
