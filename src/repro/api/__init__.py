"""Spec-driven estimator API.

The declarative layer over the whole library:

* :mod:`repro.api.specs` — frozen, validated config objects
  (:class:`LSHSpec`, :class:`EngineSpec`, :class:`TrainSpec`,
  :class:`ServeSpec`) with ``replace`` / ``to_dict`` / ``from_dict``
  round-tripping;
* :mod:`repro.api.protocol` — the :class:`EstimatorProtocol` mixin
  every estimator shares (``get_params`` / ``set_params`` / ``clone``
  / non-default ``repr``);
* :mod:`repro.api.registry` — named construction via
  :func:`make_estimator`;
* :mod:`repro.api.model` — the immutable fitted
  :class:`ClusterModel` artifact that serves ``predict`` without the
  training estimator;
* :mod:`repro.api.legacy` — the deprecation shim keeping the old flat
  kwargs working (one :class:`DeprecationWarning` per legacy kwarg,
  identical labels guaranteed).

Quick start::

    from repro.api import EngineSpec, LSHSpec, TrainSpec, make_estimator

    model = make_estimator(
        "mh-kmodes",
        n_clusters=500,
        lsh=LSHSpec(bands=20, rows=5, seed=0),
        engine=EngineSpec(backend="process", n_jobs=4),
        train=TrainSpec(max_iter=30),
    )
    artifact = model.fit(X).fitted_model()   # immutable ClusterModel
    artifact.save("model")                   # npz + json sidecar
"""

from repro.api.legacy import LEGACY_PARAMETER_MAP, resolve_specs
from repro.api.model import ClusterModel
from repro.api.protocol import EstimatorProtocol
from repro.api.registry import (
    available_estimators,
    get_estimator_class,
    make_estimator,
    register_estimator,
)
from repro.api.specs import (
    BACKEND_NAMES,
    DEGRADE_POLICIES,
    EMPTY_CLUSTER_POLICIES,
    LSH_FAMILIES,
    PREDICT_FALLBACK_POLICIES,
    START_METHODS,
    UPDATE_REFS_MODES,
    EngineSpec,
    LSHSpec,
    ResilienceSpec,
    ServeSpec,
    Spec,
    StreamSpec,
    TrainSpec,
)

__all__ = [
    "Spec",
    "LSHSpec",
    "EngineSpec",
    "TrainSpec",
    "ResilienceSpec",
    "ServeSpec",
    "StreamSpec",
    "DEGRADE_POLICIES",
    "LSH_FAMILIES",
    "BACKEND_NAMES",
    "START_METHODS",
    "UPDATE_REFS_MODES",
    "EMPTY_CLUSTER_POLICIES",
    "PREDICT_FALLBACK_POLICIES",
    "EstimatorProtocol",
    "ClusterModel",
    "make_estimator",
    "get_estimator_class",
    "available_estimators",
    "register_estimator",
    "LEGACY_PARAMETER_MAP",
    "resolve_specs",
]
