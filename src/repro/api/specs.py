"""Typed, validated, immutable configuration specs.

Every LSH-accelerated estimator in the library is configured by the
same three groups of knobs, and before this module each estimator
re-declared all of them as flat keyword arguments.  The specs make the
groups first class:

* :class:`LSHSpec` — the hash-family and banding parameters the LSH
  survey literature treats as *the* declarative description of an
  index (family, bands, rows, quantisation width, seed);
* :class:`EngineSpec` — where a fit executes (backend, workers,
  shards, chunking, process start method);
* :class:`TrainSpec` — how the clustering loop behaves (initialisation,
  iteration cap, reference-update mode, empty-cluster policy, cost
  tracking, predict fallback);
* :class:`ServeSpec` — how a fitted :class:`~repro.api.ClusterModel`
  is served (backend, workers, predict chunking, request-size cap,
  whether streaming ``extend`` requests are accepted) by
  :class:`repro.serve.ModelServer`;
* :class:`StreamSpec` — how :class:`repro.core.StreamingMHKModes`
  ingests arrival batches (backend and workers for the chunked
  signature hashing, and the chunk size bounding both worker tasks
  and processing segments).

Specs are frozen dataclasses: they validate eagerly at construction,
compare by value, hash, round-trip through plain dicts
(:meth:`~Spec.to_dict` / :meth:`~Spec.from_dict` — and therefore
through JSON), and derive modified copies with :meth:`~Spec.replace`.
Their ``repr`` shows only non-default fields, so a default spec prints
as ``LSHSpec()`` and a tuned one shows exactly what was tuned.

Examples
--------
>>> LSHSpec(bands=8, rows=2)
LSHSpec(bands=8, rows=2)
>>> LSHSpec()
LSHSpec()
>>> LSHSpec(bands=8, rows=2).replace(seed=7)
LSHSpec(bands=8, rows=2, seed=7)
>>> EngineSpec.from_dict({"backend": "thread", "n_jobs": 2})
EngineSpec(backend='thread', n_jobs=2)
>>> TrainSpec(max_iter=20).to_dict()["max_iter"]
20
>>> ServeSpec(backend='thread', n_jobs=2)
ServeSpec(backend='thread', n_jobs=2)
>>> LSHSpec(bands=0)
Traceback (most recent call last):
    ...
repro.exceptions.ConfigurationError: bands must be a positive integer, got 0
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "LSH_FAMILIES",
    "BACKEND_NAMES",
    "START_METHODS",
    "UPDATE_REFS_MODES",
    "EMPTY_CLUSTER_POLICIES",
    "PREDICT_FALLBACK_POLICIES",
    "DEGRADE_POLICIES",
    "Spec",
    "LSHSpec",
    "EngineSpec",
    "TrainSpec",
    "ResilienceSpec",
    "ServeSpec",
    "StreamSpec",
]

#: LSH families the library implements (MinHash for categorical data,
#: SimHash / p-stable projections for numeric data).
LSH_FAMILIES = ("minhash", "simhash", "pstable")

#: Execution backends (mirrors ``repro.engine.backends.BACKEND_NAMES``;
#: duplicated here so the spec layer stays import-light and cycle-free).
BACKEND_NAMES = ("serial", "thread", "process")

#: Multiprocessing start methods a spec may request; availability on
#: the current platform is checked when the engine is actually built.
START_METHODS = ("fork", "spawn", "forkserver")

#: Cluster-reference update modes of the framework loop.
UPDATE_REFS_MODES = ("online", "batch")

#: Empty-cluster policies of the centroid update.
EMPTY_CLUSTER_POLICIES = ("keep", "reinit", "error")

#: Policies when a novel item's shortlist is empty at predict time
#: (mirrors ``repro.core.shortlist.FALLBACK_POLICIES``).
PREDICT_FALLBACK_POLICIES = ("full", "error")

#: What a serving pool does once its retry budget is exhausted
#: (mirrors ``repro.engine.pool.DEGRADE_POLICIES``; duplicated so the
#: spec layer stays import-light and cycle-free).
DEGRADE_POLICIES = ("serial", "error")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _require_choice(value, name: str, choices: tuple, optional: bool = False) -> None:
    if optional and value is None:
        return
    _require(value in choices, f"{name} must be one of {choices}, got {value!r}")


def _require_positive(value, name: str, optional: bool = False) -> None:
    if optional and value is None:
        return
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value > 0,
        f"{name} must be a positive integer, got {value!r}",
    )


@dataclass(frozen=True)
class Spec:
    """Base class giving every spec the same immutable-value protocol."""

    def __post_init__(self) -> None:
        # Normalise numpy scalars to their Python equivalents first:
        # values like np.int64 (the natural output of rng.integers or
        # an np.arange sweep) were accepted by the pre-spec flat API
        # and must keep working — and to_dict() must stay JSON-safe.
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, np.bool_):
                object.__setattr__(self, spec_field.name, bool(value))
            elif isinstance(value, np.integer):
                object.__setattr__(self, spec_field.name, int(value))
            elif isinstance(value, np.floating):
                object.__setattr__(self, spec_field.name, float(value))
        self.validate()

    def validate(self) -> None:
        """Check field values; subclasses override.  Runs at construction."""

    def replace(self, **changes) -> "Spec":
        """A copy with some fields replaced (re-validated).

        >>> TrainSpec().replace(max_iter=5)
        TrainSpec(max_iter=5)
        """
        unknown = set(changes) - {f.name for f in fields(self)}
        if unknown:
            raise ConfigurationError(
                f"{type(self).__name__} has no field(s) {sorted(unknown)}; "
                f"fields are {[f.name for f in fields(self)]}"
            )
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable; round-trips ``from_dict``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "Spec":
        """Rebuild a spec from :meth:`to_dict` output (validated).

        Unknown keys fail loudly so a typo in a JSON spec file cannot
        silently fall back to a default.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{cls.__name__}.from_dict needs a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} field(s) {sorted(unknown)}; "
                f"fields are {[f.name for f in fields(cls)]}"
            )
        return cls(**data)

    def non_default_fields(self) -> dict:
        """Fields whose value differs from the dataclass default."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != f.default
        }

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in self.non_default_fields().items()
        )
        return f"{type(self).__name__}({inner})"


@dataclass(frozen=True, repr=False)
class LSHSpec(Spec):
    """Declarative description of the banded LSH index.

    Parameters
    ----------
    family:
        ``'minhash'`` (categorical, Jaccard), ``'simhash'`` (numeric,
        cosine) or ``'pstable'`` (numeric, Euclidean).
    bands, rows:
        Banding parameters; the signature width is ``bands * rows``.
    width:
        Quantisation width of the p-stable family (ignored otherwise).
    seed:
        Seeds both centroid initialisation and the hash functions (the
        hashing stream is decoupled internally so fixing initial
        centroids across variants does not change hashes).
    """

    family: str = "minhash"
    bands: int = 20
    rows: int = 5
    width: float = 4.0
    seed: int | None = None

    def validate(self) -> None:
        _require_choice(self.family, "family", LSH_FAMILIES)
        _require_positive(self.bands, "bands")
        _require_positive(self.rows, "rows")
        _require(
            isinstance(self.width, (int, float))
            and not isinstance(self.width, bool)
            and self.width > 0,
            f"width must be positive, got {self.width}",
        )
        _require(
            self.seed is None
            or (isinstance(self.seed, int) and not isinstance(self.seed, bool)),
            f"seed must be an int or None, got {self.seed!r}",
        )


@dataclass(frozen=True, repr=False)
class EngineSpec(Spec):
    """Where and how a fit executes.

    Parameters
    ----------
    backend:
        ``'serial'`` (the paper's exact loop), ``'thread'`` or
        ``'process'``.
    n_jobs:
        Worker count for parallel backends (``None``: one per CPU).
    n_shards:
        Index shard count (``None``: one per worker when parallel,
        unsharded when serial; results are shard-count invariant).
    chunk_items:
        Row-chunk size of the exhaustive setup pass.
    start_method:
        Multiprocessing start method for the process backend
        (``None``: ``'fork'`` where available, platform default
        elsewhere).
    """

    backend: str = "serial"
    n_jobs: int | None = None
    n_shards: int | None = None
    chunk_items: int = 256
    start_method: str | None = None

    def validate(self) -> None:
        _require_choice(self.backend, "backend", BACKEND_NAMES)
        _require_positive(self.n_jobs, "n_jobs", optional=True)
        _require_positive(self.n_shards, "n_shards", optional=True)
        _require_positive(self.chunk_items, "chunk_items")
        _require_choice(
            self.start_method, "start_method", START_METHODS, optional=True
        )
        if self.start_method is not None and self.backend != "process":
            raise ConfigurationError(
                "start_method applies to backend='process' only, got "
                f"backend={self.backend!r} with start_method="
                f"{self.start_method!r}"
            )


@dataclass(frozen=True, repr=False)
class TrainSpec(Spec):
    """How the clustering loop behaves.

    Parameters
    ----------
    init:
        Centroid initialisation strategy.  Validated against the
        estimator's supported set at estimator construction (K-Modes
        understands ``'random'``/``'huang'``/``'cao'``, LSH-K-Means
        only ``'random'``).
    max_iter:
        Cap on shortlist iterations (the setup pass is not counted).
    update_refs:
        ``'online'`` (paper semantics, serial only), ``'batch'``
        (vectorised pass, any backend), or ``None`` — resolved to
        ``'online'`` on serial and ``'batch'`` on parallel backends.
    empty_cluster_policy:
        ``'keep'``, ``'reinit'`` or ``'error'`` when a cluster loses
        all members.
    track_cost:
        Record the cost function each iteration.
    predict_fallback:
        ``'full'`` (exact scan) or ``'error'`` when a novel item's
        shortlist is empty at predict time.
    """

    init: str = "random"
    max_iter: int = 100
    update_refs: str | None = None
    empty_cluster_policy: str = "keep"
    track_cost: bool = True
    predict_fallback: str = "full"

    def validate(self) -> None:
        _require(
            isinstance(self.init, str) and bool(self.init),
            f"init must be a non-empty string, got {self.init!r}",
        )
        _require_positive(self.max_iter, "max_iter")
        _require_choice(
            self.update_refs, "update_refs", UPDATE_REFS_MODES, optional=True
        )
        _require_choice(
            self.empty_cluster_policy,
            "empty_cluster_policy",
            EMPTY_CLUSTER_POLICIES,
        )
        _require(
            isinstance(self.track_cost, bool),
            f"track_cost must be a bool, got {self.track_cost!r}",
        )
        _require_choice(
            self.predict_fallback, "predict_fallback", PREDICT_FALLBACK_POLICIES
        )


@dataclass(frozen=True, repr=False)
class ResilienceSpec(Spec):
    """How serving behaves under overload and worker failure.

    Hangs off :attr:`ServeSpec.resilience`; when set,
    :class:`repro.serve.ModelServer` routes ``predict`` through a
    bounded :class:`~repro.resilience.AdmissionQueue` and arms its
    :class:`~repro.engine.pool.PersistentPool` with the retry/degrade
    policy below.  ``None`` (the :class:`ServeSpec` default) keeps the
    pre-resilience direct dispatch.

    Parameters
    ----------
    max_queue_depth:
        Requests allowed to wait for a predict wave; the next request
        is rejected immediately with
        :class:`~repro.exceptions.OverloadedError` (HTTP 429 +
        ``Retry-After``).
    max_in_flight:
        Concurrent micro-batch predict waves (dispatcher threads).
    deadline_ms:
        Per-request deadline covering queue wait + execution; expiry
        raises :class:`~repro.exceptions.DeadlineExceededError`
        (HTTP 504).  ``None``: requests wait indefinitely.
    batch_window_ms:
        Linger after the first request of a wave arrives so concurrent
        submitters coalesce; ``0`` drains only what is already queued.
    max_retries, backoff_ms, backoff_max_ms, jitter, seed:
        The pool's :class:`~repro.resilience.RetryPolicy` after a
        worker death: retries per dispatch, first-retry delay, delay
        cap, fractional jitter, and an optional jitter seed for
        reproducible schedules.
    degrade:
        ``'serial'`` answers the request in-process once retries are
        exhausted; ``'error'`` raises
        :class:`~repro.exceptions.PoolBrokenError` (HTTP 500).
    """

    max_queue_depth: int = 64
    max_in_flight: int = 2
    deadline_ms: int | None = None
    batch_window_ms: int = 0
    max_retries: int = 2
    backoff_ms: float = 50.0
    backoff_max_ms: float = 2000.0
    jitter: float = 0.1
    seed: int | None = None
    degrade: str = "serial"

    def validate(self) -> None:
        _require_positive(self.max_queue_depth, "max_queue_depth")
        _require_positive(self.max_in_flight, "max_in_flight")
        _require_positive(self.deadline_ms, "deadline_ms", optional=True)
        _require(
            isinstance(self.batch_window_ms, int)
            and not isinstance(self.batch_window_ms, bool)
            and self.batch_window_ms >= 0,
            f"batch_window_ms must be a non-negative integer, got "
            f"{self.batch_window_ms!r}",
        )
        _require(
            isinstance(self.max_retries, int)
            and not isinstance(self.max_retries, bool)
            and self.max_retries >= 0,
            f"max_retries must be a non-negative integer, got "
            f"{self.max_retries!r}",
        )
        for name in ("backoff_ms", "backoff_max_ms"):
            value = getattr(self, name)
            _require(
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and value >= 0,
                f"{name} must be a non-negative number, got {value!r}",
            )
        _require(
            self.backoff_max_ms >= self.backoff_ms,
            f"backoff_max_ms={self.backoff_max_ms} is below "
            f"backoff_ms={self.backoff_ms}; the cap cannot undercut the "
            "first delay",
        )
        _require(
            isinstance(self.jitter, (int, float))
            and not isinstance(self.jitter, bool)
            and 0 <= self.jitter <= 1,
            f"jitter must be a fraction in [0, 1], got {self.jitter!r}",
        )
        _require(
            self.seed is None
            or (isinstance(self.seed, int) and not isinstance(self.seed, bool)),
            f"seed must be an int or None, got {self.seed!r}",
        )
        _require_choice(self.degrade, "degrade", DEGRADE_POLICIES)


@dataclass(frozen=True, repr=False)
class ServeSpec(Spec):
    """How a fitted :class:`~repro.api.ClusterModel` is served.

    Consumed by :class:`repro.serve.ModelServer` (and the
    ``repro serve`` CLI): the spec describes the serving pool, how
    predict batches are chunked across its workers, and the largest
    request one call may carry.

    Parameters
    ----------
    backend:
        ``'serial'`` (in-process, no pool), ``'thread'`` or
        ``'process'``.  Labels are bit-identical on every backend.
    n_jobs:
        Worker count for parallel backends (``None``: one per CPU).
    chunk_items:
        Upper bound on the rows one worker task handles; large
        batches split into at least one span per worker, each at most
        this long (results merge in row order, so chunking never
        changes a label).  A value above ``max_batch`` is legal and
        simply means "one span per worker".
    max_batch:
        Largest number of rows one ``predict`` call accepts.  Bounds
        the server's request shared-memory buffer (and the byte size
        the CLI transports accept); oversized requests are rejected,
        not split.
    emit_metrics:
        Keep a per-server :class:`~repro.obs.MetricsRegistry` of
        request latency/batch-size histograms, error counters and an
        in-flight gauge, exposed over ``GET /metrics`` (Prometheus
        text), the enriched ``GET /health`` and the ``{"op": "stats"}``
        NDJSON op.  On by default (the overhead is gated below 5 % of
        serial serving throughput by the serving benchmark); ``False``
        turns the registry off entirely, and ``/metrics`` answers 404.
    resilience:
        Admission-control / retry / degrade configuration (a nested
        :class:`ResilienceSpec`).  ``None`` (default) keeps the direct
        dispatch path: no queue, no deadlines, pool defaults for
        worker-death recovery.
    """

    backend: str = "serial"
    n_jobs: int | None = None
    chunk_items: int = 2048
    max_batch: int = 8192
    allow_extend: bool = False
    emit_metrics: bool = True
    resilience: "ResilienceSpec | None" = None

    def validate(self) -> None:
        _require_choice(self.backend, "backend", BACKEND_NAMES)
        _require_positive(self.n_jobs, "n_jobs", optional=True)
        _require_positive(self.chunk_items, "chunk_items")
        _require_positive(self.max_batch, "max_batch")
        _require(
            isinstance(self.allow_extend, bool),
            f"allow_extend must be a bool, got {self.allow_extend!r}",
        )
        _require(
            isinstance(self.emit_metrics, bool),
            f"emit_metrics must be a bool, got {self.emit_metrics!r}",
        )
        _require(
            self.resilience is None or isinstance(self.resilience, ResilienceSpec),
            "resilience must be a ResilienceSpec or None, got "
            f"{self.resilience!r}",
        )
        if self.allow_extend and self.backend == "process":
            raise ConfigurationError(
                "allow_extend requires backend 'serial' or 'thread'; "
                "process workers hold private index copies that an "
                "extend in the parent could never reach"
            )

    # -- nested-spec round-tripping --------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form; the nested resilience spec flattens too.

        >>> spec = ServeSpec(resilience=ResilienceSpec(deadline_ms=100))
        >>> spec.to_dict()["resilience"]["deadline_ms"]
        100
        >>> ServeSpec.from_dict(spec.to_dict()) == spec
        True
        """
        data = super().to_dict()
        if self.resilience is not None:
            data["resilience"] = self.resilience.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServeSpec":
        if isinstance(data, dict) and isinstance(data.get("resilience"), dict):
            data = dict(data)
            data["resilience"] = ResilienceSpec.from_dict(data["resilience"])
        return super().from_dict(data)


@dataclass(frozen=True, repr=False)
class StreamSpec(Spec):
    """How :class:`repro.core.StreamingMHKModes` ingests arrival batches.

    The streaming estimator's :meth:`~repro.core.StreamingMHKModes.extend`
    pipeline hashes whole chunks at once and can route that hashing
    through a persistent worker pool; this spec holds the knobs.
    Labels and refreshed modes are **bit-identical** to the sequential
    ``push()`` loop for every backend and chunk size — the spec only
    trades throughput.

    Parameters
    ----------
    backend:
        ``'serial'`` (in-process, the default), ``'thread'`` or
        ``'process'`` — where chunked signature hashing runs.  The
        assignment walk itself stays in the caller's process (it is
        inherently ordered), so parallel backends accelerate the
        MinHash-dominated part of ingestion.
    n_jobs:
        Worker count for parallel backends (``None``: one per CPU).
    chunk_items:
        Upper bound on both the rows per worker hashing task and the
        rows one processing segment handles between index/tracker
        commits.  Any value produces identical labels and modes.
    """

    backend: str = "serial"
    n_jobs: int | None = None
    chunk_items: int = 8192

    def validate(self) -> None:
        _require_choice(self.backend, "backend", BACKEND_NAMES)
        _require_positive(self.n_jobs, "n_jobs", optional=True)
        _require_positive(self.chunk_items, "chunk_items")
