"""The estimator registry: names → classes, and ``make_estimator``.

Every estimator registers under a stable kebab-case name (the same
name the CLI and the persistence sidecars use), so callers can build
estimators declaratively::

    from repro.api import EngineSpec, LSHSpec, make_estimator

    model = make_estimator(
        "mh-kmodes",
        n_clusters=500,
        lsh=LSHSpec(bands=20, rows=5, seed=0),
        engine=EngineSpec(backend="process", n_jobs=4),
    )

Examples
--------
>>> sorted(available_estimators())  # doctest: +NORMALIZE_WHITESPACE
['fuzzy-kmodes', 'kmeans', 'kmodes', 'lsh-kmeans', 'mh-kmodes',
 'minibatch-kmeans', 'streaming-mh-kmodes']
>>> make_estimator("kmodes", n_clusters=4, seed=0)
KModes(n_clusters=4, seed=0)
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = [
    "available_estimators",
    "get_estimator_class",
    "make_estimator",
    "register_estimator",
]

#: registry name → estimator class (populated by ``register_estimator``
#: decorators at import time).
_REGISTRY: dict[str, type] = {}


def register_estimator(name: str):
    """Class decorator registering an estimator under ``name``."""

    def decorate(cls: type) -> type:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ConfigurationError(
                f"estimator name {name!r} already registered to "
                f"{existing.__name__}"
            )
        _REGISTRY[name] = cls
        cls._registry_name = name
        return cls

    return decorate


def _ensure_populated() -> None:
    # Registration happens when the estimator modules import; pulling in
    # the top-level package guarantees that even for callers that only
    # imported repro.api.
    if not _REGISTRY:
        import repro  # noqa: F401


def available_estimators() -> tuple[str, ...]:
    """All registered estimator names, sorted."""
    _ensure_populated()
    return tuple(sorted(_REGISTRY))


def get_estimator_class(name: str) -> type:
    """The class registered under ``name`` (raises on unknown names)."""
    _ensure_populated()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown estimator {name!r}; available estimators are "
            f"{list(available_estimators())}"
        )
    return cls


def make_estimator(name: str, **params):
    """Construct the estimator registered under ``name``.

    ``params`` are forwarded to the class constructor — specs
    (``lsh=``, ``engine=``, ``train=``) and estimator-own parameters
    alike.  Legacy flat kwargs work too (with the same deprecation
    warnings as direct construction).
    """
    return get_estimator_class(name)(**params)
