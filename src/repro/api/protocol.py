"""The common estimator protocol.

:class:`EstimatorProtocol` is the mixin every estimator in the library
shares.  It derives the parameter surface from the constructor
signature (sklearn's convention: every constructor argument is
readable as a same-named attribute), and provides:

* :meth:`~EstimatorProtocol.get_params` /
  :meth:`~EstimatorProtocol.set_params` — inspect and change the
  configuration; ``set_params`` understands both whole params
  (``lsh=LSHSpec(...)``) and nested spec fields (``lsh__bands=8``);
* :meth:`~EstimatorProtocol.clone` — a fresh, unfitted estimator with
  identical parameters;
* ``__repr__`` showing only non-default parameters;
* ``_is_fitted()`` / the :func:`repro.exceptions.check_fitted` hook.

Examples
--------
>>> from repro import MHKModes
>>> from repro.api import LSHSpec
>>> MHKModes(n_clusters=4)
MHKModes(n_clusters=4)
>>> model = MHKModes(n_clusters=4, lsh=LSHSpec(bands=8, rows=2))
>>> model
MHKModes(n_clusters=4, lsh=LSHSpec(bands=8, rows=2))
>>> model.get_params()["lsh"]
LSHSpec(bands=8, rows=2)
>>> model.set_params(lsh__bands=16).bands
16
>>> model.clone()
MHKModes(n_clusters=4, lsh=LSHSpec(bands=16, rows=2))
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.api.specs import Spec
from repro.exceptions import ConfigurationError, DataValidationError

__all__ = ["EstimatorProtocol", "SpecAttributeSurface"]


class EstimatorProtocol:
    """Shared parameter/lifecycle protocol for all estimators."""

    #: Private attribute holding the fitted centroids (K-Modes-family
    #: estimators override with ``"_modes"``); used by the shared
    #: artifact-restore default.
    _centroid_attr = "_centroids"

    @classmethod
    def _param_names(cls) -> tuple[str, ...]:
        """Constructor parameter names (excluding ``self`` and ``**legacy``)."""
        parameters = inspect.signature(cls.__init__).parameters
        return tuple(
            name
            for name, parameter in parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_KEYWORD, inspect.Parameter.VAR_POSITIONAL)
        )

    @classmethod
    def _param_default(cls, name: str):
        """Declared default of constructor parameter ``name``.

        For the spec parameters the signature default is ``None``; the
        *effective* default is the class-level default spec
        (``_default_lsh`` / ``_default_engine`` / ``_default_train``),
        which is what repr/comparison should use.
        """
        if name in ("lsh", "engine", "train", "stream"):
            spec_default = getattr(cls, f"_default_{name}", None)
            if spec_default is not None:
                return spec_default
        parameter = inspect.signature(cls.__init__).parameters.get(name)
        if parameter is None:
            return inspect.Parameter.empty
        return parameter.default

    def get_params(self, deep: bool = False) -> dict:
        """Current constructor parameters, by name.

        With ``deep=True``, frozen spec parameters are additionally
        flattened into ``<param>__<field>`` entries (sklearn's nested
        convention), e.g. ``lsh__bands``.
        """
        params = {name: getattr(self, name) for name in self._param_names()}
        if deep:
            for name, value in list(params.items()):
                if isinstance(value, Spec):
                    for field, field_value in value.to_dict().items():
                        params[f"{name}__{field}"] = field_value
        return params

    def set_params(self, **params) -> "EstimatorProtocol":
        """Re-configure this estimator in place; returns ``self``.

        Accepts whole constructor parameters (``train=TrainSpec(...)``)
        and nested spec fields (``train__max_iter=5``).  The estimator
        is re-initialised, so any fitted state is discarded — configure
        first, fit second.
        """
        if not params:
            return self
        names = self._param_names()
        current = self.get_params()
        for key, value in params.items():
            if key in names:
                current[key] = value
                continue
            parent, separator, field = key.partition("__")
            if separator and parent in names and isinstance(current[parent], Spec):
                current[parent] = current[parent].replace(**{field: value})
                continue
            raise ConfigurationError(
                f"invalid parameter {key!r} for {type(self).__name__}; "
                f"valid parameters are {list(names)} (spec fields nest as "
                "'<param>__<field>', e.g. 'lsh__bands')"
            )
        type(self).__init__(self, **current)
        return self

    def clone(self) -> "EstimatorProtocol":
        """A new, unfitted estimator with identical parameters."""
        return type(self)(**self.get_params())

    def _is_fitted(self) -> bool:
        """Whether ``fit`` has completed (hook for ``check_fitted``)."""
        return getattr(self, "_fitted", False)

    def _validate_predict_X(self, X) -> np.ndarray:
        """Predict-path input validation.

        Unlike ``_validate_X`` (the fit-path contract, where zero items
        make no sense), an **empty batch** ``(0, m)`` is legal at
        predict time — a serving loop must answer it with zero labels,
        not an error.  Non-empty input goes through the estimator's own
        ``_validate_X``, so dtype/contiguity canonicalisation is shared
        with training and a predict-time variant (F-order, int32,
        float32) scores exactly like its canonical form.
        """
        X = np.asarray(X)
        if X.ndim == 2 and X.shape[0] == 0:
            if X.shape[1] == 0:
                raise DataValidationError(
                    "X must have at least one attribute column"
                )
            centroids = getattr(self, self._centroid_attr, None)
            dtype = (
                np.asarray(centroids).dtype if centroids is not None else X.dtype
            )
            return np.empty((0, X.shape[1]), dtype=dtype)
        return self._validate_X(X)

    # -- shared ClusterModel scaffolding --------------------------------

    def _artifact_scalars(self) -> dict:
        """The fitted scalars every artifact's ``state`` carries."""
        return {
            "cost": float(self.cost_),
            "n_iter": int(self.n_iter_),
            "converged": bool(self.converged_),
        }

    def _artifact_metadata(self) -> dict:
        """Provenance recorded in every artifact."""
        import repro

        return {
            "class": type(self).__name__,
            "library_version": repro.__version__,
        }

    def _restore_fit_state(self, model) -> None:
        """Adopt a ``ClusterModel``'s fitted state (writable copies).

        Restores centroids (into :attr:`_centroid_attr`), labels and
        the scalar state; estimators with extra fitted state (an index,
        encoder statistics) extend this via ``super()``.
        """
        setattr(self, self._centroid_attr, np.array(model.centroids))
        self._labels = None if model.labels is None else np.array(model.labels)
        self.cost_ = float(model.state.get("cost", float("nan")))
        self.n_iter_ = int(model.state.get("n_iter", 0))
        self.converged_ = bool(model.state.get("converged", False))
        self._stats = None

    def __repr__(self) -> str:
        shown = []
        for name in self._param_names():
            value = getattr(self, name)
            default = self._param_default(name)
            if default is inspect.Parameter.empty or value != default:
                shown.append(f"{name}={value!r}")
        return f"{type(self).__name__}({', '.join(shown)})"


class SpecAttributeSurface:
    """Read-only attribute views onto ``self.lsh``/``engine``/``train``.

    The flat API exposed every knob as a same-named attribute
    (``model.bands``, ``model.backend``, ...).  Spec-driven estimators
    keep that read surface alive through this mixin, so downstream code
    (and the engine, which reads ``model.bands``/``model.rows``) is
    untouched by the redesign.  ``update_refs`` returns the raw spec
    value (possibly ``None``); estimators that resolve it against the
    backend override the property.
    """

    @property
    def bands(self) -> int:
        return self.lsh.bands

    @property
    def rows(self) -> int:
        return self.lsh.rows

    @property
    def family(self) -> str:
        return self.lsh.family

    @property
    def width(self) -> float:
        return self.lsh.width

    @property
    def seed(self) -> int | None:
        return self.lsh.seed

    @property
    def backend(self):
        """The configured backend (an instance when one was provided)."""
        instance = getattr(self, "_backend_instance", None)
        if instance is not None:
            return instance
        return self.engine.backend

    @property
    def n_jobs(self) -> int | None:
        return self.engine.n_jobs

    @property
    def n_shards(self) -> int | None:
        return self.engine.n_shards

    @property
    def chunk_items(self) -> int:
        return self.engine.chunk_items

    @property
    def init(self) -> str:
        return self.train.init

    @property
    def max_iter(self) -> int:
        return self.train.max_iter

    @property
    def update_refs(self) -> str | None:
        return self.train.update_refs

    @property
    def empty_cluster_policy(self) -> str:
        return self.train.empty_cluster_policy

    @property
    def track_cost(self) -> bool:
        return self.train.track_cost

    @property
    def predict_fallback(self) -> str:
        return self.train.predict_fallback
