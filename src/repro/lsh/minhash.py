"""MinHash signature generation — Algorithm 1 of the paper.

A MinHash signature of a token set ``S`` under hash functions
``h_1 … h_n`` is the vector ``(min h_1(S), …, min h_n(S))``.  Two sets
agree on any one signature slot with probability equal to their Jaccard
similarity, which is the property the whole framework rests on.

The implementation here is vectorised two ways:

* :meth:`MinHasher.signatures` handles ragged :class:`~repro.lsh.tokens.TokenSets`
  with a ``minimum.reduceat`` over the concatenated token stream —
  one pass per hash function, no Python-level loop over items;
* :meth:`MinHasher.signatures_matrix` handles dense token matrices
  (every attribute present) with a plain ``min`` over axis 1.

Empty token sets receive the sentinel :data:`EMPTY_SLOT` in every
slot.  The sentinel is one larger than any real hash value, so empty
sets collide with each other (Jaccard(∅, ∅) is taken as 1) and never
with non-empty sets.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.hashing import MERSENNE_PRIME_31, UniversalHashFamily
from repro.lsh.tokens import TokenSets

__all__ = ["MinHasher", "EMPTY_SLOT"]

#: Signature value assigned to every slot of an empty token set.
#: Real hash values lie in ``[0, MERSENNE_PRIME_31)``.
EMPTY_SLOT: int = MERSENNE_PRIME_31


class MinHasher:
    """Generates MinHash signatures of a fixed length.

    Parameters
    ----------
    n_hashes:
        Signature length.  When used with a banded index this must be
        ``bands * rows``.
    seed:
        Seed for the universal hash family; identical seeds give
        identical signatures for identical inputs.

    Examples
    --------
    >>> mh = MinHasher(n_hashes=128, seed=42)
    >>> sig = mh.signature(np.array([10, 17, 4]))
    >>> sig.shape
    (128,)
    """

    def __init__(self, n_hashes: int, seed: int = 0):
        if n_hashes <= 0:
            raise ConfigurationError(f"n_hashes must be positive, got {n_hashes}")
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)
        self._family = UniversalHashFamily(n_hashes, seed=seed)

    # ------------------------------------------------------------------
    # single item
    # ------------------------------------------------------------------

    def signature(self, tokens: np.ndarray) -> np.ndarray:
        """Signature of one token set.

        This is a direct transcription of Algorithm 1: initialise every
        slot to infinity, then for each token and each hash function
        keep the minimum hash value.

        Parameters
        ----------
        tokens:
            1-D integer array of tokens in ``[0, MERSENNE_PRIME_31)``.
            May be empty, in which case every slot is :data:`EMPTY_SLOT`.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise DataValidationError(f"tokens must be 1-D, got ndim={tokens.ndim}")
        if tokens.size == 0:
            return np.full(self.n_hashes, EMPTY_SLOT, dtype=np.int64)
        self._check_token_range(tokens)
        return self._family.hash_values(tokens).min(axis=1)

    # ------------------------------------------------------------------
    # batched
    # ------------------------------------------------------------------

    def signatures(self, token_sets: TokenSets) -> np.ndarray:
        """Signatures of every row of a ragged token collection.

        Parameters
        ----------
        token_sets:
            The items to hash.

        Returns
        -------
        numpy.ndarray
            ``(n_items, n_hashes)`` int64 signature matrix.
        """
        n = len(token_sets)
        if n == 0 or token_sets.n_tokens == 0:
            return np.full((n, self.n_hashes), EMPTY_SLOT, dtype=np.int64)
        self._check_token_range(token_sets.indices)
        # The hot path lives in repro.kernels (compiled when a backend
        # is available, the vectorised reduceat fallback otherwise);
        # every backend is bit-identical to the per-hash
        # ``hash_with`` + ``minimum.reduceat`` formulation this method
        # used to inline.
        return kernels.minhash_signatures(
            token_sets.indices,
            token_sets.indptr,
            self._family._a,
            self._family._b,
            EMPTY_SLOT,
        )

    def signatures_categorical(
        self,
        X: np.ndarray,
        domain_size: int | None = None,
        absent_code: int | None = None,
    ) -> np.ndarray:
        """Batch signatures straight from a categorical code matrix.

        Fuses the *(attribute, value)* token encoding (with optional
        presence filtering) and the ragged signature kernel into one
        call — the single MinHash entry point shared by the fit path
        (:meth:`repro.core.MHKModes._signatures`) and the streaming
        ingest pipeline (:meth:`repro.core.StreamingMHKModes.extend`),
        so an item hashes identically no matter which side touched it.

        Parameters
        ----------
        X:
            ``(n_items, n_attributes)`` integer category codes.
        domain_size:
            Global category domain size (default: inferred from ``X``).
        absent_code:
            Value treated as "feature not present" and excluded from
            hashing (the paper's presence filtering), or ``None``.

        Returns
        -------
        numpy.ndarray
            ``(n_items, n_hashes)`` int64 signature matrix.
        """
        token_sets = TokenSets.from_categorical_matrix(
            X, domain_size=domain_size, absent_code=absent_code
        )
        return self.signatures(token_sets)

    def signatures_matrix(self, token_matrix: np.ndarray) -> np.ndarray:
        """Signatures for a dense token matrix (every attribute present).

        Parameters
        ----------
        token_matrix:
            ``(n_items, n_attributes)`` int64 matrix as produced by
            :func:`repro.lsh.tokens.encode_categorical_tokens`.

        Returns
        -------
        numpy.ndarray
            ``(n_items, n_hashes)`` int64 signature matrix.
        """
        token_matrix = np.asarray(token_matrix, dtype=np.int64)
        if token_matrix.ndim != 2:
            raise DataValidationError(
                f"expected 2-D token matrix, got ndim={token_matrix.ndim}"
            )
        if token_matrix.shape[1] == 0:
            raise DataValidationError("token matrix has zero attributes")
        # Delegate to the ragged kernel: a dense matrix is the special
        # case of equal-length rows, and one code path keeps the two
        # entry points bit-identical.
        n, m = token_matrix.shape
        ragged = TokenSets(
            np.ascontiguousarray(token_matrix).reshape(-1),
            np.arange(0, (n + 1) * m, m, dtype=np.int64),
        )
        return self.signatures(ragged)

    # ------------------------------------------------------------------
    # similarity estimation
    # ------------------------------------------------------------------

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimate Jaccard similarity as the fraction of agreeing slots.

        The estimator is unbiased: each slot agrees independently with
        probability exactly equal to the true Jaccard similarity.
        """
        sig_a = np.asarray(sig_a)
        sig_b = np.asarray(sig_b)
        if sig_a.shape != sig_b.shape:
            raise DataValidationError(
                f"signature shapes differ: {sig_a.shape} vs {sig_b.shape}"
            )
        if sig_a.size == 0:
            raise DataValidationError("cannot estimate similarity of empty signatures")
        return float(np.mean(sig_a == sig_b))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _check_token_range(tokens: np.ndarray) -> None:
        if tokens.size and int(tokens.max()) >= MERSENNE_PRIME_31:
            raise DataValidationError(
                f"token {int(tokens.max())} outside the hash domain "
                f"[0, {MERSENNE_PRIME_31})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MinHasher(n_hashes={self.n_hashes}, seed={self.seed})"
