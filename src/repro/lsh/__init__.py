"""Locality sensitive hashing substrate.

This package implements everything the paper's framework needs from
LSH, built from scratch:

* :mod:`repro.lsh.hashing` — universal integer hash families that
  simulate the random permutations of MinHash (``h(x) = (a·x + b) mod p``).
* :mod:`repro.lsh.tokens` — a compact CSR-style container for the
  variable-length token sets that MinHash consumes.
* :mod:`repro.lsh.minhash` — MinHash signature generation
  (Algorithm 1 of the paper), vectorised over whole datasets.
* :mod:`repro.lsh.bands` — banding of signatures into ``b`` bands of
  ``r`` rows and hashing each band to a bucket key (the LSH step).
* :mod:`repro.lsh.index` — the clustered LSH index of Algorithm 2:
  buckets of items, each item carrying a mutable cluster reference.
* :mod:`repro.lsh.families` — a small protocol + registry so the
  clustering framework can swap MinHash for other LSH families.
* :mod:`repro.lsh.simhash` / :mod:`repro.lsh.pstable` — LSH families
  for cosine and Euclidean similarity, used by the numeric-data
  extension the paper lists as further work.
"""

from repro.lsh.bands import band_probability, compute_band_keys, threshold_similarity
from repro.lsh.families import LSHFamily, available_families, get_family, register_family
from repro.lsh.hashing import (
    MERSENNE_PRIME_31,
    UniversalHashFamily,
    splitmix64,
    stable_string_hash,
)
from repro.lsh.index import BaseClusteredIndex, ClusteredLSHIndex, IndexStats
from repro.lsh.minhash import EMPTY_SLOT, MinHasher
from repro.lsh.pstable import PStableHasher
from repro.lsh.simhash import SimHasher
from repro.lsh.tokens import TokenSets, encode_categorical_tokens

__all__ = [
    "MERSENNE_PRIME_31",
    "UniversalHashFamily",
    "splitmix64",
    "stable_string_hash",
    "TokenSets",
    "encode_categorical_tokens",
    "MinHasher",
    "EMPTY_SLOT",
    "compute_band_keys",
    "band_probability",
    "threshold_similarity",
    "BaseClusteredIndex",
    "ClusteredLSHIndex",
    "IndexStats",
    "LSHFamily",
    "register_family",
    "get_family",
    "available_families",
    "SimHasher",
    "PStableHasher",
]
