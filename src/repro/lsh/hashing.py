"""Universal hashing primitives used to simulate MinHash permutations.

The paper (Section III-A2) simulates random permutations of the
characteristic matrix with randomly chosen hash functions of the form
``h(x) = (a·x + b) mod p``.  This module provides:

* :class:`UniversalHashFamily` — a batch of ``n`` such functions with
  vectorised evaluation over numpy arrays;
* :func:`stable_string_hash` — a deterministic (unsalted) string hash
  so text tokens map to stable integers across processes;
* :func:`splitmix64` — a fast 64-bit mixer used to hash signature
  bands to bucket keys.

All hash outputs live in ``[0, p)`` with ``p = 2**31 - 1`` (a Mersenne
prime).  Keeping inputs and coefficients below ``2**31`` means every
intermediate product fits comfortably in ``int64``, so the arithmetic
is exact without resorting to Python big integers.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "MERSENNE_PRIME_31",
    "UniversalHashFamily",
    "stable_string_hash",
    "splitmix64",
]

#: Modulus shared by every universal hash function in the library.
MERSENNE_PRIME_31: int = (1 << 31) - 1


class UniversalHashFamily:
    """A family of ``n_hashes`` independent universal hash functions.

    Each member is ``h_i(x) = (a_i * x + b_i) mod p`` with ``a_i`` drawn
    uniformly from ``[1, p)`` and ``b_i`` from ``[0, p)``.  The family is
    fully determined by ``(n_hashes, seed)``, which makes signatures
    reproducible across runs and processes.

    Parameters
    ----------
    n_hashes:
        Number of hash functions in the family.  Must be positive.
    seed:
        Seed for the generator that draws the coefficients.
    prime:
        Modulus; defaults to :data:`MERSENNE_PRIME_31`.  Exposed mainly
        for testing with tiny primes.

    Examples
    --------
    >>> family = UniversalHashFamily(4, seed=7)
    >>> family.hash_values(np.array([3, 5, 3])).shape
    (4, 3)
    """

    def __init__(self, n_hashes: int, seed: int = 0, prime: int = MERSENNE_PRIME_31):
        if n_hashes <= 0:
            raise ConfigurationError(f"n_hashes must be positive, got {n_hashes}")
        if prime <= 2:
            raise ConfigurationError(f"prime must be > 2, got {prime}")
        self.n_hashes = int(n_hashes)
        self.prime = int(prime)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        # ``a`` must be non-zero or the function collapses to a constant.
        self._a = rng.integers(1, self.prime, size=self.n_hashes, dtype=np.int64)
        self._b = rng.integers(0, self.prime, size=self.n_hashes, dtype=np.int64)

    @property
    def coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Return copies of the ``(a, b)`` coefficient vectors."""
        return self._a.copy(), self._b.copy()

    def _reduce(self, y: np.ndarray) -> np.ndarray:
        """Modular reduction, using the Mersenne shortcut when possible.

        For ``p = 2**31 - 1`` the reduction of a value below ``2**62``
        needs only shifts, masks and one conditional subtraction —
        roughly 3× faster than integer division at signature-generation
        scale.  Other primes (used in tests) fall back to ``%``.
        """
        p = self.prime
        if p != MERSENNE_PRIME_31:
            return y % p
        y = (y & p) + (y >> 31)  # below 2**32 afterwards
        y = (y & p) + (y >> 31)  # at most p afterwards
        return y - (y >= p) * p

    def hash_values(self, x: np.ndarray) -> np.ndarray:
        """Evaluate every hash function on every element of ``x``.

        Parameters
        ----------
        x:
            1-D integer array with values in ``[0, prime)``.

        Returns
        -------
        numpy.ndarray
            ``(n_hashes, len(x))`` array of hash values in ``[0, prime)``.
        """
        x = np.asarray(x, dtype=np.int64)
        if x.ndim != 1:
            raise ValueError(f"expected a 1-D array of tokens, got ndim={x.ndim}")
        return self._reduce(self._a[:, None] * x[None, :] + self._b[:, None])

    def hash_with(self, i: int, x: np.ndarray) -> np.ndarray:
        """Evaluate only the ``i``-th hash function (vectorised over ``x``).

        This is the memory-friendly path used when hashing millions of
        tokens: callers loop over the (small) number of hash functions
        instead of materialising the full ``(n_hashes, n_tokens)`` grid.
        """
        x = np.asarray(x, dtype=np.int64)
        return self._reduce(self._a[i] * x + self._b[i])

    def __len__(self) -> int:
        return self.n_hashes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniversalHashFamily(n_hashes={self.n_hashes}, seed={self.seed}, "
            f"prime={self.prime})"
        )


def stable_string_hash(token: str, prime: int = MERSENNE_PRIME_31) -> int:
    """Map a string to a stable integer in ``[0, prime)``.

    Python's built-in ``hash`` is salted per process, which would make
    MinHash signatures irreproducible.  We use the first 8 bytes of
    BLAKE2b instead, which is deterministic, fast and well distributed.

    Parameters
    ----------
    token:
        Any string (for instance an augmented feature value such as
        ``"zoo-1"`` from the paper's Yahoo! Answers encoding).
    prime:
        Upper bound (exclusive) of the output range.
    """
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % prime


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Apply the splitmix64 finalizer to an array of ``uint64`` values.

    Used to combine the ``r`` signature rows of a band into a single
    bucket key with avalanche behaviour: a change in any row changes
    every bit of the key with probability about one half.
    """
    x = np.asarray(x, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        z = x
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z
