"""Compact storage for variable-length token sets.

MinHash operates on *sets* of integer tokens.  Depending on the data
source these sets come in three shapes:

* a dense categorical matrix (every attribute present) — the synthetic
  ``datgen`` datasets of Section IV-A;
* a sparse binary presence matrix — the Yahoo! Answers encoding of
  Section IV-B, after the paper's Algorithm 2 (lines 1-4) has filtered
  out absent features;
* ragged Python lists of tokens — hand-constructed data and tests.

:class:`TokenSets` normalises all three into a CSR-style pair of arrays
(``indices`` holding all tokens back to back, ``indptr`` holding row
boundaries) so that signature generation can run as a handful of
vectorised numpy operations instead of a Python loop per item.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import DataValidationError
from repro.lsh.hashing import MERSENNE_PRIME_31

__all__ = ["TokenSets", "encode_categorical_tokens"]


def encode_categorical_tokens(
    X: np.ndarray,
    domain_size: int | None = None,
) -> np.ndarray:
    """Encode a categorical matrix into per-cell integer tokens.

    Jaccard similarity between two categorical items is defined over
    their sets of *(attribute, value)* pairs, so the same value in two
    different columns must map to two different tokens.  We encode cell
    ``(i, j)`` as ``j * domain_size + X[i, j]``.

    Parameters
    ----------
    X:
        ``(n_items, n_attributes)`` integer matrix of category codes,
        all values in ``[0, domain_size)``.
    domain_size:
        Size of the (global) category domain.  Defaults to
        ``X.max() + 1``.

    Returns
    -------
    numpy.ndarray
        ``(n_items, n_attributes)`` int64 token matrix.

    Raises
    ------
    DataValidationError
        If ``X`` is not 2-D, contains negative codes, or the encoded
        tokens would overflow the hashing modulus.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise DataValidationError(f"expected 2-D categorical matrix, got ndim={X.ndim}")
    if X.size == 0:
        raise DataValidationError("cannot encode an empty matrix")
    if not np.issubdtype(X.dtype, np.integer):
        raise DataValidationError(f"categorical codes must be integers, got {X.dtype}")
    if X.min() < 0:
        raise DataValidationError("categorical codes must be non-negative")
    if domain_size is None:
        domain_size = int(X.max()) + 1
    elif X.max() >= domain_size:
        raise DataValidationError(
            f"found code {int(X.max())} >= domain_size {domain_size}"
        )
    n_attributes = X.shape[1]
    max_token = n_attributes * domain_size
    if max_token >= MERSENNE_PRIME_31:
        raise DataValidationError(
            f"token universe {max_token} exceeds the hashing modulus "
            f"{MERSENNE_PRIME_31}; reduce domain_size or the attribute count"
        )
    offsets = np.arange(n_attributes, dtype=np.int64) * domain_size
    return X.astype(np.int64) + offsets[None, :]


class TokenSets:
    """A ragged collection of integer token sets in CSR layout.

    Parameters
    ----------
    indices:
        1-D int64 array holding the tokens of every row back to back.
    indptr:
        1-D int64 array of length ``n_rows + 1``; row ``i`` owns
        ``indices[indptr[i]:indptr[i + 1]]``.

    Notes
    -----
    Rows may be empty (an item whose features were all filtered out);
    :class:`repro.lsh.minhash.MinHasher` gives such rows a sentinel
    signature.  Tokens within a row need not be sorted or unique —
    MinHash is insensitive to duplicates because ``min`` is idempotent.
    """

    def __init__(self, indices: np.ndarray, indptr: np.ndarray):
        indices = np.asarray(indices, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        if indices.ndim != 1 or indptr.ndim != 1:
            raise DataValidationError("indices and indptr must be 1-D arrays")
        if len(indptr) == 0 or indptr[0] != 0:
            raise DataValidationError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise DataValidationError(
                f"indptr must end at len(indices)={len(indices)}, got {indptr[-1]}"
            )
        if np.any(np.diff(indptr) < 0):
            raise DataValidationError("indptr must be non-decreasing")
        if indices.size and indices.min() < 0:
            raise DataValidationError("tokens must be non-negative")
        self.indices = indices
        self.indptr = indptr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_lists(cls, rows: Sequence[Iterable[int]]) -> "TokenSets":
        """Build from a sequence of per-item token iterables."""
        arrays = [np.asarray(list(row), dtype=np.int64) for row in rows]
        lengths = np.array([len(a) for a in arrays], dtype=np.int64)
        indptr = np.concatenate([[0], np.cumsum(lengths)])
        indices = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
        )
        return cls(indices, indptr)

    @classmethod
    def from_categorical_matrix(
        cls,
        X: np.ndarray,
        domain_size: int | None = None,
        absent_code: int | None = None,
    ) -> "TokenSets":
        """Build from a dense categorical matrix.

        Parameters
        ----------
        X:
            ``(n_items, n_attributes)`` matrix of category codes.
        domain_size:
            Global category domain size (default: inferred).
        absent_code:
            If given, cells equal to this code are treated as "feature
            not present" and dropped — the presence filtering of
            Algorithm 2 lines 1-4 in the paper.
        """
        tokens = encode_categorical_tokens(X, domain_size=domain_size)
        if absent_code is None:
            n, m = tokens.shape
            indptr = np.arange(0, (n + 1) * m, m, dtype=np.int64)
            return cls(tokens.reshape(-1).copy(), indptr)
        keep = np.asarray(X) != absent_code
        lengths = keep.sum(axis=1).astype(np.int64)
        indptr = np.concatenate([[0], np.cumsum(lengths)])
        return cls(tokens[keep], indptr)

    @classmethod
    def from_binary_matrix(cls, B: np.ndarray) -> "TokenSets":
        """Build from a dense 0/1 presence matrix.

        Row ``i``'s token set is the column indices where ``B[i]`` is
        non-zero.  This reproduces the paper's Yahoo! Answers encoding:
        after augmenting values with feature names, only *present*
        features survive, and each present feature is one set element.
        """
        B = np.asarray(B)
        if B.ndim != 2:
            raise DataValidationError(f"expected 2-D binary matrix, got ndim={B.ndim}")
        mask = B != 0
        lengths = mask.sum(axis=1).astype(np.int64)
        indptr = np.concatenate([[0], np.cumsum(lengths)])
        cols = np.nonzero(mask)[1].astype(np.int64)
        return cls(cols, indptr)

    @classmethod
    def from_csr(cls, matrix) -> "TokenSets":
        """Build from a ``scipy.sparse`` CSR matrix (non-zeros = present)."""
        csr = matrix.tocsr()
        return cls(csr.indices.astype(np.int64), csr.indptr.astype(np.int64))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.indptr) - 1

    def __getitem__(self, i: int) -> np.ndarray:
        """Return row ``i``'s tokens (a view, do not mutate)."""
        if not -len(self) <= i < len(self):
            raise IndexError(f"row {i} out of range for {len(self)} rows")
        if i < 0:
            i += len(self)
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(len(self)):
            yield self[i]

    @property
    def lengths(self) -> np.ndarray:
        """Number of tokens in each row."""
        return np.diff(self.indptr)

    @property
    def n_tokens(self) -> int:
        """Total number of stored tokens across all rows."""
        return int(len(self.indices))

    def row_set(self, i: int) -> set[int]:
        """Return row ``i`` as a Python set (convenience for tests)."""
        return set(int(t) for t in self[i])

    def max_token(self) -> int:
        """Largest token stored, or ``-1`` if the collection is empty."""
        return int(self.indices.max()) if self.indices.size else -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenSets(n_rows={len(self)}, n_tokens={self.n_tokens})"
