"""SimHash — signed random projection LSH for cosine similarity.

Used by the numeric-data extension (:class:`repro.kmeans.LSHKMeans`).
Each hash function is a random hyperplane through the origin; the hash
of a vector is the side of the hyperplane it falls on (one bit).  Two
vectors with angle ``θ`` agree on a bit with probability ``1 - θ/π``,
which makes the family locality sensitive for cosine similarity.

Signatures are returned as int64 0/1 columns so they band exactly like
MinHash signatures through :func:`repro.lsh.bands.compute_band_keys`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError

__all__ = ["SimHasher"]


class SimHasher:
    """Signed random projection hashing for dense numeric vectors.

    Parameters
    ----------
    n_hashes:
        Number of hyperplanes (signature width).
    seed:
        Seed for drawing the hyperplane normals.
    n_features:
        Dimensionality of the input vectors.  May be left ``None`` and
        inferred on the first call, after which it is fixed.
    """

    def __init__(self, n_hashes: int, seed: int = 0, n_features: int | None = None):
        if n_hashes <= 0:
            raise ConfigurationError(f"n_hashes must be positive, got {n_hashes}")
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)
        self.n_features = n_features
        self._planes: np.ndarray | None = None
        if n_features is not None:
            self._init_planes(n_features)

    def _init_planes(self, n_features: int) -> None:
        if n_features <= 0:
            raise ConfigurationError(f"n_features must be positive, got {n_features}")
        rng = np.random.default_rng(self.seed)
        self._planes = rng.standard_normal((n_features, self.n_hashes))
        self.n_features = int(n_features)

    def signatures(self, X: np.ndarray) -> np.ndarray:
        """Hash a matrix of row vectors to sign bits.

        Parameters
        ----------
        X:
            ``(n_items, n_features)`` float matrix.

        Returns
        -------
        numpy.ndarray
            ``(n_items, n_hashes)`` int64 matrix of 0/1 bits.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise DataValidationError(f"expected 2-D matrix, got ndim={X.ndim}")
        if self._planes is None:
            self._init_planes(X.shape[1])
        assert self._planes is not None
        if X.shape[1] != self._planes.shape[0]:
            raise DataValidationError(
                f"expected {self._planes.shape[0]} features, got {X.shape[1]}"
            )
        return (X @ self._planes >= 0.0).astype(np.int64)

    def signature(self, x: np.ndarray) -> np.ndarray:
        """Hash a single vector (convenience wrapper)."""
        return self.signatures(np.asarray(x)[None, :])[0]

    @staticmethod
    def estimate_cosine(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimate cosine similarity from two bit signatures.

        Inverts the collision probability ``P(agree) = 1 - θ/π``:
        ``cos(π · (1 - P))`` estimates ``cos θ``.
        """
        sig_a = np.asarray(sig_a)
        sig_b = np.asarray(sig_b)
        if sig_a.shape != sig_b.shape or sig_a.size == 0:
            raise DataValidationError("signatures must be non-empty and same shape")
        agree = float(np.mean(sig_a == sig_b))
        return float(np.cos(np.pi * (1.0 - agree)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimHasher(n_hashes={self.n_hashes}, seed={self.seed}, "
            f"n_features={self.n_features})"
        )
