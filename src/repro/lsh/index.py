"""The clustered LSH index of Algorithm 2.

This is the data structure at the heart of the paper's framework: a
banded LSH index over *items* in which every item carries a mutable
reference to the cluster it is currently assigned to.

Build phase (run once, after centroid initialisation):

1. every item's signature is banded into ``b`` bucket keys;
2. per band, a hash table maps bucket key → the array of member items;
3. optionally, each item's static *neighbour list* — the union of its
   buckets' members — is precomputed, because buckets never change
   after the build.

Query phase (run once per item per iteration):

* :meth:`ClusteredLSHIndex.candidate_clusters` returns the distinct
  clusters currently holding the item's neighbours.  This is the
  paper's *shortlist*.  Because an item always collides with itself,
  the shortlist always contains the item's own current cluster.

Update phase (after each reassignment):

* :meth:`ClusteredLSHIndex.update_assignment` rewrites one slot of the
  assignment array — the O(1) "update the cluster reference" step the
  paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.lsh.bands import compute_band_keys, validate_bands_rows

__all__ = ["ClusteredLSHIndex", "IndexStats"]


@dataclass(frozen=True)
class IndexStats:
    """Summary statistics of a built index (useful for diagnostics).

    Attributes
    ----------
    n_items:
        Number of indexed items.
    bands, rows:
        Banding parameters.
    n_buckets:
        Total number of non-empty buckets across all bands.
    mean_bucket_size:
        Average number of items per bucket.
    max_bucket_size:
        Size of the fullest bucket.
    mean_neighbours:
        Average neighbour-list length (only when neighbours are
        precomputed; ``nan`` otherwise).
    """

    n_items: int
    bands: int
    rows: int
    n_buckets: int
    mean_bucket_size: float
    max_bucket_size: int
    mean_neighbours: float


class ClusteredLSHIndex:
    """Banded LSH index whose entries carry mutable cluster references.

    Parameters
    ----------
    bands:
        Number of bands ``b``.
    rows:
        Rows per band ``r``.  Signatures must have width ``b * r``.
    precompute_neighbours:
        If True (default), each item's neighbour list is materialised
        at build time as a CSR array pair.  Queries then cost a couple
        of numpy gathers.  Turn off to save memory when buckets are
        enormous (for example 1 band × 1 row on near-duplicate data).

    Examples
    --------
    >>> from repro.lsh import MinHasher, TokenSets
    >>> items = TokenSets.from_lists([[1, 2, 3], [1, 2, 4], [9, 10, 11]])
    >>> sigs = MinHasher(n_hashes=8, seed=0).signatures(items)
    >>> index = ClusteredLSHIndex(bands=4, rows=2)
    >>> index.build(sigs, assignments=np.array([0, 1, 2]))
    >>> sorted(index.candidate_clusters(0).tolist())  # doctest: +SKIP
    [0, 1]
    """

    def __init__(self, bands: int, rows: int, precompute_neighbours: bool = True):
        validate_bands_rows(bands, rows)
        self.bands = int(bands)
        self.rows = int(rows)
        self.precompute_neighbours = bool(precompute_neighbours)
        self._assignments: np.ndarray | None = None
        self._band_keys: np.ndarray | None = None
        self._buckets: list[dict[int, np.ndarray]] | None = None
        # Neighbour lists are stored per *group* of items with identical
        # band-key rows: such items occupy exactly the same buckets and
        # therefore share one neighbour list.  This collapses the
        # pathological case of many identical (or empty) token sets
        # from O(n²) to O(n) work and memory.
        self._group_of: np.ndarray | None = None
        self._group_neighbours: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self, signatures: np.ndarray, assignments: np.ndarray) -> "ClusteredLSHIndex":
        """Index every item once (the single pass of Algorithm 2).

        Parameters
        ----------
        signatures:
            ``(n_items, bands * rows)`` signature matrix.
        assignments:
            ``(n_items,)`` initial cluster id per item.  Copied; use
            :meth:`update_assignment` / :meth:`set_assignments` to
            change later.
        """
        signatures = np.asarray(signatures)
        assignments = np.asarray(assignments)
        if assignments.ndim != 1:
            raise DataValidationError(
                f"assignments must be 1-D, got ndim={assignments.ndim}"
            )
        if len(assignments) != len(signatures):
            raise DataValidationError(
                f"{len(signatures)} signatures but {len(assignments)} assignments"
            )
        if len(signatures) == 0:
            raise DataValidationError("cannot build an index over zero items")
        band_keys = compute_band_keys(signatures, self.bands, self.rows)
        self._finalise(band_keys, assignments)
        return self

    @classmethod
    def from_band_keys(
        cls,
        bands: int,
        rows: int,
        band_keys: np.ndarray,
        assignments: np.ndarray,
        precompute_neighbours: bool = True,
    ) -> "ClusteredLSHIndex":
        """Rebuild an index from already-computed ``(n, bands)`` keys.

        Band keys fully determine the buckets and neighbour lists, so a
        persisted model only needs to store them (not the signatures)
        to reconstruct its index exactly — see
        :func:`repro.data.io.save_model`.
        """
        band_keys = np.asarray(band_keys)
        assignments = np.asarray(assignments)
        if band_keys.ndim != 2 or band_keys.shape[1] != bands:
            raise DataValidationError(
                f"band_keys must be (n_items, {bands}), got shape "
                f"{band_keys.shape}"
            )
        if len(assignments) != len(band_keys):
            raise DataValidationError(
                f"{len(band_keys)} key rows but {len(assignments)} assignments"
            )
        if len(band_keys) == 0:
            raise DataValidationError("cannot build an index over zero items")
        index = cls(bands, rows, precompute_neighbours=precompute_neighbours)
        index._finalise(band_keys.astype(np.uint64, copy=False), assignments)
        return index

    def _finalise(self, band_keys: np.ndarray, assignments: np.ndarray) -> None:
        """Common tail of :meth:`build` and :meth:`from_band_keys`."""
        self._band_keys = band_keys
        self._assignments = assignments.astype(np.int64).copy()
        self._buckets = [
            self._bucketise(self._band_keys[:, j]) for j in range(self.bands)
        ]
        if self.precompute_neighbours:
            self._build_neighbour_lists()

    @staticmethod
    def _bucketise(keys: np.ndarray) -> dict[int, np.ndarray]:
        """Group item ids by bucket key via one argsort (no Python loop per item).

        Bucket members are *views* into one shared order array, so a
        band costs two allocations regardless of its bucket count.
        """
        order = np.argsort(keys, kind="stable").astype(np.int64, copy=False)
        sorted_keys = keys[order]
        # Boundaries where the key value changes delimit the buckets.
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(keys)]])
        return {
            int(sorted_keys[s]): order[s:e]
            for s, e in zip(starts, ends)
        }

    def _build_neighbour_lists(self) -> None:
        """Materialise one neighbour list per distinct band-key row."""
        assert self._band_keys is not None and self._buckets is not None
        unique_rows, group_of = np.unique(
            self._band_keys, axis=0, return_inverse=True
        )
        self._group_of = group_of.astype(np.int64).ravel()
        self._group_neighbours = [
            np.unique(
                np.concatenate(
                    [self._buckets[j][int(row[j])] for j in range(self.bands)]
                )
            )
            for row in unique_rows
        ]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def candidate_items(self, item: int) -> np.ndarray:
        """All items sharing at least one bucket with ``item`` (incl. itself)."""
        self._check_built()
        if self._group_neighbours is not None:
            assert self._group_of is not None
            return self._group_neighbours[self._group_of[item]]
        assert self._band_keys is not None and self._buckets is not None
        merged = np.concatenate(
            [self._buckets[j][int(self._band_keys[item, j])] for j in range(self.bands)]
        )
        return np.unique(merged)

    def candidate_clusters(self, item: int) -> np.ndarray:
        """The paper's shortlist: distinct clusters of the item's neighbours."""
        self._check_built()
        assert self._assignments is not None
        return np.unique(self._assignments[self.candidate_items(item)])

    def candidate_clusters_for_signature(self, signature: np.ndarray) -> np.ndarray:
        """Shortlist for a *novel* (un-indexed) signature.

        Used at predict time for unseen items.  Unlike
        :meth:`candidate_clusters`, the result may be empty if the new
        signature collides with nothing.
        """
        self._check_built()
        assert self._buckets is not None and self._assignments is not None
        signature = np.asarray(signature)
        if signature.ndim == 1:
            signature = signature[None, :]
        keys = compute_band_keys(signature, self.bands, self.rows)[0]
        hits = [
            self._buckets[j].get(int(keys[j]))
            for j in range(self.bands)
        ]
        hits = [h for h in hits if h is not None]
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._assignments[np.concatenate(hits)])

    # ------------------------------------------------------------------
    # incremental insertion (streaming extension)
    # ------------------------------------------------------------------

    def insert(self, signature: np.ndarray, cluster: int) -> int:
        """Add one new item to the index and return its item id.

        Supports the streaming extension (the paper's Further Work):
        late-arriving items are hashed into the existing buckets with
        their cluster reference, making them visible to subsequent
        queries.  Requires ``precompute_neighbours=False`` — grouped
        neighbour lists are frozen at build time and cannot absorb
        inserts.

        Parameters
        ----------
        signature:
            ``(bands * rows,)`` signature of the new item.
        cluster:
            The cluster reference to store for it.
        """
        self._check_built()
        if self._group_neighbours is not None:
            raise ConfigurationError(
                "insert requires precompute_neighbours=False; grouped "
                "neighbour lists cannot absorb new items"
            )
        assert (
            self._band_keys is not None
            and self._buckets is not None
            and self._assignments is not None
        )
        signature = np.asarray(signature)
        if signature.ndim != 1:
            raise DataValidationError(
                f"signature must be 1-D, got ndim={signature.ndim}"
            )
        keys = compute_band_keys(signature[None, :], self.bands, self.rows)[0]
        item = len(self._band_keys)
        self._band_keys = np.vstack([self._band_keys, keys[None, :]])
        self._assignments = np.append(self._assignments, np.int64(cluster))
        for j in range(self.bands):
            bucket = self._buckets[j].get(int(keys[j]))
            if bucket is None:
                self._buckets[j][int(keys[j])] = np.array([item], dtype=np.int64)
            else:
                self._buckets[j][int(keys[j])] = np.append(bucket, np.int64(item))
        return item

    # ------------------------------------------------------------------
    # cluster-reference updates
    # ------------------------------------------------------------------

    def update_assignment(self, item: int, cluster: int) -> None:
        """O(1) rewrite of one item's cluster reference."""
        self._check_built()
        assert self._assignments is not None
        self._assignments[item] = cluster

    def set_assignments(self, assignments: np.ndarray) -> None:
        """Bulk-replace every cluster reference (used between iterations)."""
        self._check_built()
        assert self._assignments is not None
        assignments = np.asarray(assignments, dtype=np.int64)
        if assignments.shape != self._assignments.shape:
            raise DataValidationError(
                f"expected shape {self._assignments.shape}, got {assignments.shape}"
            )
        self._assignments = assignments.copy()

    @property
    def assignments(self) -> np.ndarray:
        """A copy of the current cluster references."""
        self._check_built()
        assert self._assignments is not None
        return self._assignments.copy()

    def assignments_view(self) -> np.ndarray:
        """The *live* cluster-reference array (no copy).

        Intended for the inner fitting loops of this library: writing
        ``view[i] = c`` is equivalent to :meth:`update_assignment` and
        is immediately visible to :meth:`candidate_clusters`.  Treat as
        an internal fast path; external callers should prefer the safe
        methods.
        """
        self._check_built()
        assert self._assignments is not None
        return self._assignments

    def neighbour_groups(self) -> tuple[np.ndarray, list[np.ndarray]] | None:
        """Grouped neighbour lists: ``(group_of, group_neighbours)``.

        ``group_neighbours[group_of[i]]`` is item ``i``'s neighbour
        list; items with identical band keys share one list.  Returns
        ``None`` when the index was built with
        ``precompute_neighbours=False``; callers must then go through
        :meth:`candidate_items`.
        """
        self._check_built()
        if self._group_of is None or self._group_neighbours is None:
            return None
        return self._group_of, self._group_neighbours

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    @property
    def n_items(self) -> int:
        self._check_built()
        assert self._band_keys is not None
        return len(self._band_keys)

    @property
    def band_keys(self) -> np.ndarray:
        """The ``(n_items, bands)`` bucket-key matrix (live, do not mutate).

        Together with the assignments this is sufficient to rebuild the
        index (:meth:`from_band_keys`), which is how fitted models are
        persisted without storing raw signatures.
        """
        self._check_built()
        assert self._band_keys is not None
        return self._band_keys

    def stats(self) -> IndexStats:
        """Bucket- and neighbour-level summary statistics."""
        self._check_built()
        assert self._buckets is not None
        sizes = np.array(
            [len(members) for band in self._buckets for members in band.values()],
            dtype=np.int64,
        )
        if self._group_of is not None and self._group_neighbours is not None:
            lengths = np.array(
                [len(group) for group in self._group_neighbours], dtype=np.int64
            )
            mean_nb = float(lengths[self._group_of].mean())
        else:
            mean_nb = float("nan")
        return IndexStats(
            n_items=self.n_items,
            bands=self.bands,
            rows=self.rows,
            n_buckets=int(len(sizes)),
            mean_bucket_size=float(sizes.mean()) if sizes.size else 0.0,
            max_bucket_size=int(sizes.max()) if sizes.size else 0,
            mean_neighbours=mean_nb,
        )

    def _check_built(self) -> None:
        if self._buckets is None:
            raise NotFittedError(
                "index not built; call build(signatures, assignments) first"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = self._buckets is not None
        return (
            f"ClusteredLSHIndex(bands={self.bands}, rows={self.rows}, "
            f"built={built})"
        )
