"""The clustered LSH index of Algorithm 2.

This is the data structure at the heart of the paper's framework: a
banded LSH index over *items* in which every item carries a mutable
reference to the cluster it is currently assigned to.

Build phase (run once, after centroid initialisation):

1. every item's signature is banded into ``b`` bucket keys;
2. per band, a hash table maps bucket key → the array of member items;
3. optionally, each item's static *neighbour list* — the union of its
   buckets' members — is precomputed, because buckets never change
   after the build.  Neighbour lists are stored as one flat CSR pair
   (``indptr``, ``indices``) per *group* of items with identical
   band-key rows: such items occupy exactly the same buckets and share
   one list, which collapses the pathological case of many identical
   (or empty) token sets from O(n²) to O(n) work and memory, and the
   flat layout keeps the per-iteration hot loop free of Python-object
   traffic.

Query phase (run once per item per iteration):

* :meth:`BaseClusteredIndex.candidate_clusters` returns the distinct
  clusters currently holding the item's neighbours.  This is the
  paper's *shortlist*.  Because an item always collides with itself,
  the shortlist always contains the item's own current cluster.

Update phase (after each reassignment):

* :meth:`BaseClusteredIndex.update_assignment` rewrites one slot of
  the assignment array — the O(1) "update the cluster reference" step
  the paper highlights.

:class:`BaseClusteredIndex` owns every piece of this surface that does
not depend on how bucket tables are laid out; the unsharded
:class:`ClusteredLSHIndex` here and the engine's
:class:`~repro.engine.sharded_index.ShardedClusteredLSHIndex` differ
only in their table layout hooks, so the assignment/insert/query
semantics cannot drift between them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.lsh.bands import compute_band_keys, validate_bands_rows

__all__ = [
    "BaseClusteredIndex",
    "ClusteredLSHIndex",
    "IndexStats",
    "band_runs",
    "tables_from_runs",
    "group_csr_from_runs",
]

#: One span's per-band bucket runs: ``(bucket_keys, starts, order)``.
BandRuns = list[tuple[np.ndarray, np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class IndexStats:
    """Summary statistics of a built index (useful for diagnostics).

    Attributes
    ----------
    n_items:
        Number of indexed items.
    bands, rows:
        Banding parameters.
    n_buckets:
        Total number of non-empty buckets across all bands.
    mean_bucket_size:
        Average number of items per bucket.
    max_bucket_size:
        Size of the fullest bucket.
    mean_neighbours:
        Average neighbour-list length (only when neighbours are
        precomputed; ``nan`` otherwise).
    """

    n_items: int
    bands: int
    rows: int
    n_buckets: int
    mean_bucket_size: float
    max_bucket_size: int
    mean_neighbours: float


# ----------------------------------------------------------------------
# shared build machinery (also used by the sharded index and the engine)
# ----------------------------------------------------------------------


def band_runs(band_keys: np.ndarray, bands: int, start: int, stop: int) -> BandRuns:
    """Sort one item span of the band-key matrix into bucket runs.

    Returns one compact ``(bucket_keys, starts, order)`` triple per
    band — three arrays instead of one tiny array per bucket, so a
    process backend ships O(bands) buffers back, not O(buckets).
    ``order`` holds *global* item ids (local argsort order plus the
    span offset); :func:`tables_from_runs` slices it into the per-key
    dict without copying.
    """
    local = band_keys[start:stop]
    out: BandRuns = []
    for j in range(bands):
        order = np.argsort(local[:, j], kind="stable").astype(np.int64)
        order += start
        sorted_keys = band_keys[order, j]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate([[0], boundaries])
        out.append((sorted_keys[starts], starts, order))
    return out


def tables_from_runs(runs: BandRuns) -> list[dict[int, np.ndarray]]:
    """Slice per-band bucket runs into key → members dicts (views)."""
    tables: list[dict[int, np.ndarray]] = []
    for bucket_keys, starts, order in runs:
        ends = np.concatenate([starts[1:], [len(order)]])
        tables.append(
            {
                int(key): order[s:e]
                for key, s, e in zip(bucket_keys, starts, ends)
            }
        )
    return tables


def group_csr_from_runs(
    unique_rows: np.ndarray,
    span_runs: list[BandRuns],
    n_items: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialise every group's neighbour list as one flat CSR pair.

    Per span and band, each group's bucket is located with one
    ``searchsorted`` against the sorted bucket keys and gathered as a
    run of the band's order array; the runs of all bands and spans are
    deduplicated per group with a single segmented ``np.unique`` over
    ``group * n_items + member`` keys.  No per-group Python work — this
    is what makes index construction fast at scale regardless of the
    backend.

    Returns ``(indptr, indices)`` where group ``g``'s sorted distinct
    neighbours are ``indices[indptr[g]:indptr[g + 1]]``.
    """
    n_groups = len(unique_rows)
    member_parts: list[np.ndarray] = []
    group_parts: list[np.ndarray] = []
    group_ids = np.arange(n_groups, dtype=np.int64)
    for runs in span_runs:
        for j, (bucket_keys, starts, order) in enumerate(runs):
            ends = np.concatenate([starts[1:], [len(order)]])
            pos = np.searchsorted(bucket_keys, unique_rows[:, j])
            found = np.flatnonzero(
                (pos < len(bucket_keys))
                & (bucket_keys[np.minimum(pos, len(bucket_keys) - 1)]
                   == unique_rows[:, j])
            )
            if not len(found):
                continue
            run_starts = starts[pos[found]]
            run_lengths = ends[pos[found]] - run_starts
            total = int(run_lengths.sum())
            # gather all runs at once: order[start_g + offset] for every
            # offset in [0, length_g)
            bases = np.repeat(run_starts, run_lengths)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(run_lengths) - run_lengths, run_lengths
            )
            member_parts.append(order[bases + offsets])
            group_parts.append(np.repeat(group_ids[found], run_lengths))
    if not member_parts:
        return np.zeros(n_groups + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    members = np.concatenate(member_parts)
    groups = np.concatenate(group_parts)
    uniq = np.unique(groups * n_items + members)
    u_group = uniq // n_items
    u_member = uniq - u_group * n_items
    lengths = np.bincount(u_group, minlength=n_groups)
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    return indptr, u_member


# ----------------------------------------------------------------------
# the shared index surface
# ----------------------------------------------------------------------


class BaseClusteredIndex:
    """Everything two clustered-index layouts must agree on.

    Subclasses supply the bucket-table layout through three hooks —
    :meth:`_is_built`, :meth:`_bucket_hits` and
    :meth:`_insert_into_buckets` (plus :meth:`_bucket_sizes` for
    diagnostics) — and inherit identical build validation, item
    storage, queries, assignment updates, amortised insertion and
    statistics, so the unsharded and sharded indexes cannot drift.

    Item storage uses amortised doubling buffers: band keys and
    assignments live in capacity arrays trimmed to the logical item
    count, so a stream of :meth:`insert` calls costs O(1) amortised
    per item instead of the O(n) reallocation a ``vstack`` per insert
    would pay.
    """

    def __init__(self, bands: int, rows: int, precompute_neighbours: bool = True):
        validate_bands_rows(bands, rows)
        self.bands = int(bands)
        self.rows = int(rows)
        self.precompute_neighbours = bool(precompute_neighbours)
        self._keys_buf: np.ndarray | None = None  # (capacity, bands) uint64
        self._assign_buf: np.ndarray | None = None  # (capacity,) int64
        self._n = 0
        self._read_only = False
        self._group_of: np.ndarray | None = None
        self._nbr_indptr: np.ndarray | None = None
        self._nbr_indices: np.ndarray | None = None

    # -- layout hooks ----------------------------------------------------

    def _is_built(self) -> bool:
        """Whether the bucket tables exist."""
        raise NotImplementedError

    def _bucket_hits(self, keys: np.ndarray) -> list[np.ndarray]:
        """All bucket member arrays matching a ``(bands,)`` key row."""
        raise NotImplementedError

    def _insert_into_buckets(self, keys: np.ndarray, item: int) -> None:
        """Hash one new item into the layout's bucket tables."""
        raise NotImplementedError

    def _insert_many_into_buckets(
        self, keys: np.ndarray, items: np.ndarray
    ) -> None:
        """Hash a batch of new items into the layout's bucket tables.

        The generic fallback loops :meth:`_insert_into_buckets`; both
        concrete layouts override with the vectorised per-band run
        appends of :meth:`_append_key_runs`.
        """
        for key_row, item in zip(keys, items):
            self._insert_into_buckets(key_row, int(item))

    def _bucket_sizes(self) -> np.ndarray:
        """Logical member count of every non-empty bucket."""
        raise NotImplementedError

    # -- shared build plumbing -------------------------------------------

    @staticmethod
    def _validated_assignments(
        n_rows: int, assignments: np.ndarray, what: str
    ) -> np.ndarray:
        assignments = np.asarray(assignments)
        if assignments.ndim != 1:
            raise DataValidationError(
                f"assignments must be 1-D, got ndim={assignments.ndim}"
            )
        if len(assignments) != n_rows:
            raise DataValidationError(
                f"{n_rows} {what} but {len(assignments)} assignments"
            )
        if n_rows == 0:
            raise DataValidationError("cannot build an index over zero items")
        return assignments

    def _store_items(self, band_keys: np.ndarray, assignments: np.ndarray) -> None:
        """Initialise the doubling buffers from a freshly built matrix."""
        self._keys_buf = np.ascontiguousarray(band_keys, dtype=np.uint64)
        self._assign_buf = assignments.astype(np.int64).copy()
        self._n = len(band_keys)

    def _store_neighbours(
        self, band_keys: np.ndarray, span_runs: list[BandRuns]
    ) -> None:
        """Group identical band-key rows and build the neighbour CSR."""
        unique_rows, group_of = np.unique(band_keys, axis=0, return_inverse=True)
        self._group_of = group_of.astype(np.int64).ravel()
        self._nbr_indptr, self._nbr_indices = group_csr_from_runs(
            unique_rows, span_runs, len(band_keys)
        )

    # -- queries ---------------------------------------------------------

    def candidate_items(self, item: int) -> np.ndarray:
        """All items sharing at least one bucket with ``item`` (incl. itself)."""
        self._check_built()
        if self._nbr_indptr is not None:
            assert self._group_of is not None and self._nbr_indices is not None
            group = self._group_of[item]
            return self._nbr_indices[
                self._nbr_indptr[group] : self._nbr_indptr[group + 1]
            ]
        assert self._keys_buf is not None
        return np.unique(np.concatenate(self._bucket_hits(self._keys_buf[item])))

    def candidate_clusters(self, item: int) -> np.ndarray:
        """The paper's shortlist: distinct clusters of the item's neighbours."""
        self._check_built()
        assert self._assign_buf is not None
        return np.unique(self._assign_buf[: self._n][self.candidate_items(item)])

    def candidate_clusters_for_signature(self, signature: np.ndarray) -> np.ndarray:
        """Shortlist for a *novel* (un-indexed) signature.

        Used at predict time for unseen items.  Unlike
        :meth:`candidate_clusters`, the result may be empty if the new
        signature collides with nothing.
        """
        self._check_built()
        assert self._assign_buf is not None
        signature = np.asarray(signature)
        if signature.ndim == 1:
            signature = signature[None, :]
        keys = compute_band_keys(signature, self.bands, self.rows)[0]
        hits = self._bucket_hits(keys)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._assign_buf[: self._n][np.concatenate(hits)])

    def shortlists_for_signatures(
        self, signatures: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`candidate_clusters_for_signature` as a CSR pair.

        Band keys for every query row are computed in one call, bucket
        hits are gathered per row, and the per-row deduplication runs
        as a single segmented ``np.unique`` over the whole batch.

        Returns ``(indptr, clusters)``: row ``r``'s sorted distinct
        candidate clusters are ``clusters[indptr[r]:indptr[r + 1]]``
        (an empty slice where the row collides with nothing) —
        row for row identical to the per-signature method.
        """
        self._check_built()
        assert self._assign_buf is not None
        signatures = np.asarray(signatures)
        if signatures.ndim != 2:
            raise DataValidationError(
                f"signatures must be 2-D, got ndim={signatures.ndim}"
            )
        n_rows = len(signatures)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        if n_rows == 0:
            return indptr, np.empty(0, dtype=np.int64)
        keys = compute_band_keys(signatures, self.bands, self.rows)
        member_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        for row in range(n_rows):
            hits = self._bucket_hits(keys[row])
            if hits:
                members = np.concatenate(hits)
                member_parts.append(members)
                row_parts.append(np.full(len(members), row, dtype=np.int64))
        if not member_parts:
            return indptr, np.empty(0, dtype=np.int64)
        members = np.concatenate(member_parts)
        rows_idx = np.concatenate(row_parts)
        clusters = self._assign_buf[: self._n][members]
        low = int(clusters.min())
        span = int(clusters.max()) - low + 1
        uniq = np.unique(rows_idx * span + (clusters - low))
        u_row = uniq // span
        u_cluster = uniq - u_row * span + low
        counts = np.bincount(u_row, minlength=n_rows)
        np.cumsum(counts, out=indptr[1:])
        return indptr, u_cluster

    def neighbour_csr(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """The flat neighbour storage: ``(group_of, indptr, indices)``.

        Item ``i``'s precomputed neighbour list is
        ``indices[indptr[group_of[i]]:indptr[group_of[i] + 1]]``; items
        with identical band-key rows share one list.  Returns ``None``
        when the index was built with ``precompute_neighbours=False``;
        callers must then go through :meth:`candidate_items`.
        """
        self._check_built()
        if self._nbr_indptr is None:
            return None
        assert self._group_of is not None and self._nbr_indices is not None
        return self._group_of, self._nbr_indptr, self._nbr_indices

    def neighbour_groups(self) -> tuple[np.ndarray, list[np.ndarray]] | None:
        """Grouped neighbour lists: ``(group_of, group_neighbours)``.

        Convenience view over :meth:`neighbour_csr` —
        ``group_neighbours[group_of[i]]`` is item ``i``'s neighbour
        list, each entry a zero-copy slice of the CSR ``indices``
        array.  Returns ``None`` when neighbours are not precomputed.
        """
        csr = self.neighbour_csr()
        if csr is None:
            return None
        group_of, indptr, indices = csr
        lists = [
            indices[indptr[g] : indptr[g + 1]] for g in range(len(indptr) - 1)
        ]
        return group_of, lists

    # -- read-only query mode (serving) ----------------------------------

    @property
    def read_only(self) -> bool:
        """Whether the index is frozen for concurrent read-only queries."""
        return self._read_only

    def freeze(self) -> "BaseClusteredIndex":
        """Switch the built index into read-only query mode (idempotent).

        A frozen index rejects every mutation — :meth:`insert`,
        :meth:`update_assignment`, :meth:`set_assignments`,
        :meth:`assignments_view` — and marks its item buffers
        non-writable, so any number of threads (or forked serving
        workers) can query it concurrently without a lock.  This is the
        mode :class:`repro.serve.ModelServer` rebuilds persisted
        indexes into; training always works on unfrozen indexes.
        """
        self._check_built()
        if self._read_only:
            return self
        assert self._keys_buf is not None and self._assign_buf is not None
        # Trim the growth buffers to the logical item count so the
        # frozen views are exact, then seal them.
        self._keys_buf = self._keys_buf[: self._n]
        self._assign_buf = self._assign_buf[: self._n]
        self._keys_buf.setflags(write=False)
        self._assign_buf.setflags(write=False)
        self._read_only = True
        return self

    def _check_mutable(self, what: str) -> None:
        if self._read_only:
            raise ConfigurationError(
                f"{what} is not available on a frozen index; this index "
                "is in read-only query mode (see freeze())"
            )

    # -- incremental insertion (streaming extension) ---------------------

    def insert(self, signature: np.ndarray, cluster: int) -> int:
        """Add one new item to the index and return its item id.

        Supports the streaming extension (the paper's Further Work):
        late-arriving items are hashed into the existing buckets with
        their cluster reference, making them visible to subsequent
        queries.  Requires ``precompute_neighbours=False`` — grouped
        neighbour lists are frozen at build time and cannot absorb
        inserts.  Band keys, assignments and bucket membership all
        grow through amortised doubling buffers, so a bootstrap that
        streams thousands of items in stays linear.

        Parameters
        ----------
        signature:
            ``(bands * rows,)`` signature of the new item.
        cluster:
            The cluster reference to store for it.
        """
        self._check_built()
        self._check_mutable("insert")
        if self._nbr_indptr is not None:
            raise ConfigurationError(
                "insert requires precompute_neighbours=False; grouped "
                "neighbour lists cannot absorb new items"
            )
        assert self._keys_buf is not None and self._assign_buf is not None
        signature = np.asarray(signature)
        if signature.ndim != 1:
            raise DataValidationError(
                f"signature must be 1-D, got ndim={signature.ndim}"
            )
        keys = compute_band_keys(signature[None, :], self.bands, self.rows)[0]
        item = self._n
        self._ensure_item_capacity(item + 1)
        self._keys_buf[item] = keys
        self._assign_buf[item] = np.int64(cluster)
        self._n = item + 1
        self._insert_into_buckets(keys, item)
        return item

    def insert_batch(
        self,
        signatures: np.ndarray,
        clusters: np.ndarray,
        band_keys: np.ndarray | None = None,
    ) -> np.ndarray:
        """Add a whole chunk of new items at once; returns their item ids.

        Row-for-row equivalent to calling :meth:`insert` on each
        ``(signature, cluster)`` pair in order, but amortised three
        ways: band keys for the chunk are computed in **one**
        :func:`~repro.lsh.bands.compute_band_keys` call, the doubling
        buffers grow to the final size in one step, and bucket
        membership is appended as per-band *runs* (one dict touch per
        distinct bucket key in the chunk, not one per item) through
        :meth:`_insert_many_into_buckets`.  This is the bulk-ingest
        path of the streaming extension.

        Parameters
        ----------
        signatures:
            ``(n_new, bands * rows)`` signature matrix of the arrivals.
        clusters:
            ``(n_new,)`` cluster reference per arrival.
        band_keys:
            Optional precomputed ``(n_new, bands)`` key matrix for the
            same signatures (callers that already banded the chunk —
            the streaming collision walk does — skip the rehash).
        """
        self._check_built()
        self._check_mutable("insert_batch")
        if self._nbr_indptr is not None:
            raise ConfigurationError(
                "insert_batch requires precompute_neighbours=False; grouped "
                "neighbour lists cannot absorb new items"
            )
        assert self._keys_buf is not None and self._assign_buf is not None
        clusters = np.asarray(clusters, dtype=np.int64)
        if clusters.ndim != 1:
            raise DataValidationError(
                f"clusters must be 1-D, got ndim={clusters.ndim}"
            )
        if band_keys is None:
            signatures = np.asarray(signatures)
            if signatures.ndim != 2:
                raise DataValidationError(
                    f"signatures must be 2-D, got ndim={signatures.ndim}"
                )
            if len(signatures) != len(clusters):
                raise DataValidationError(
                    f"{len(signatures)} signatures but {len(clusters)} clusters"
                )
            if len(clusters) == 0:
                return np.empty(0, dtype=np.int64)
            keys = compute_band_keys(signatures, self.bands, self.rows)
        else:
            keys = np.asarray(band_keys, dtype=np.uint64)
            if keys.ndim != 2 or keys.shape[1] != self.bands:
                raise DataValidationError(
                    f"band_keys must be (n_new, {self.bands}), got shape "
                    f"{keys.shape}"
                )
            if len(keys) != len(clusters):
                raise DataValidationError(
                    f"{len(keys)} key rows but {len(clusters)} clusters"
                )
            if len(clusters) == 0:
                return np.empty(0, dtype=np.int64)
        n_new = len(clusters)
        start = self._n
        items = np.arange(start, start + n_new, dtype=np.int64)
        self._ensure_item_capacity(start + n_new)
        self._keys_buf[start : start + n_new] = keys
        self._assign_buf[start : start + n_new] = clusters
        self._n = start + n_new
        self._insert_many_into_buckets(keys, items)
        return items

    def _ensure_item_capacity(self, target: int) -> None:
        """Grow the doubling item buffers to hold ``target`` items."""
        assert self._keys_buf is not None and self._assign_buf is not None
        capacity = len(self._keys_buf)
        if target <= capacity:
            return
        new_capacity = max(4, capacity)
        while new_capacity < target:
            new_capacity *= 2
        used = self._n
        keys_buf = np.empty((new_capacity, self.bands), dtype=np.uint64)
        keys_buf[:used] = self._keys_buf[:used]
        self._keys_buf = keys_buf
        assign_buf = np.empty(new_capacity, dtype=np.int64)
        assign_buf[:used] = self._assign_buf[:used]
        self._assign_buf = assign_buf

    @staticmethod
    def _bucket_append(
        table: dict[int, np.ndarray], fill: dict[int, int], key: int, item: int
    ) -> None:
        """Append one member to a bucket with geometric over-allocation.

        ``fill`` records the logical length of buckets whose array has
        spare capacity; buckets untouched by insertion stay exact-size
        views from the build and never appear in ``fill``.
        """
        members = table.get(key)
        if members is None:
            buf = np.empty(4, dtype=np.int64)
            buf[0] = item
            table[key] = buf
            fill[key] = 1
            return
        used = fill.get(key, len(members))
        if used == len(members):
            buf = np.empty(max(4, 2 * used), dtype=np.int64)
            buf[:used] = members[:used]
            table[key] = buf
            members = buf
        members[used] = item
        fill[key] = used + 1

    @staticmethod
    def _bucket_append_run(
        table: dict[int, np.ndarray],
        fill: dict[int, int],
        key: int,
        run: np.ndarray,
    ) -> None:
        """Append a whole run of members to one bucket in one step.

        The batched counterpart of :meth:`_bucket_append`: capacity
        grows at most once per call and the run is copied in with one
        slice assignment.  Logical bucket contents end up identical to
        appending the run's members one by one.
        """
        count = len(run)
        members = table.get(key)
        if members is None:
            buf = np.empty(max(4, count), dtype=np.int64)
            buf[:count] = run
            table[key] = buf
            fill[key] = count
            return
        used = fill.get(key, len(members))
        need = used + count
        if need > len(members):
            buf = np.empty(max(4, 2 * used, need), dtype=np.int64)
            buf[:used] = members[:used]
            table[key] = buf
            members = buf
        members[used:need] = run
        fill[key] = need

    @classmethod
    def _append_key_runs(
        cls,
        tables: list[dict[int, np.ndarray]],
        fills: list[dict[int, int]],
        keys: np.ndarray,
        items: np.ndarray,
    ) -> None:
        """Bulk-insert ``items`` into per-band bucket tables.

        Per band, the chunk's keys are sorted once and each distinct
        bucket receives its members as a single run — O(distinct keys)
        dict operations per band instead of O(items).  Within a bucket
        members keep ascending item order, matching what sequential
        appends would produce.
        """
        for j in range(len(tables)):
            column = keys[:, j]
            order = np.argsort(column, kind="stable")
            sorted_keys = column[order]
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.append(boundaries, len(order))
            run_items = items[order]
            for s, e in zip(starts.tolist(), ends.tolist()):
                cls._bucket_append_run(
                    tables[j], fills[j], int(sorted_keys[s]), run_items[s:e]
                )

    @staticmethod
    def _bucket_members(
        table: dict[int, np.ndarray], fill: dict[int, int], key: int
    ) -> np.ndarray | None:
        """A bucket's logical members (``None`` for an absent key)."""
        members = table.get(key)
        if members is None:
            return None
        used = fill.get(key)
        return members if used is None else members[:used]

    # -- cluster-reference updates ---------------------------------------

    def update_assignment(self, item: int, cluster: int) -> None:
        """O(1) rewrite of one item's cluster reference."""
        self._check_built()
        self._check_mutable("update_assignment")
        assert self._assign_buf is not None
        self._assign_buf[item] = cluster

    def set_assignments(self, assignments: np.ndarray) -> None:
        """Bulk-replace every cluster reference (used between iterations)."""
        self._check_built()
        self._check_mutable("set_assignments")
        assert self._assign_buf is not None
        assignments = np.asarray(assignments, dtype=np.int64)
        if assignments.shape != (self._n,):
            raise DataValidationError(
                f"expected shape {(self._n,)}, got {assignments.shape}"
            )
        self._assign_buf[: self._n] = assignments

    @property
    def assignments(self) -> np.ndarray:
        """A copy of the current cluster references."""
        self._check_built()
        assert self._assign_buf is not None
        return self._assign_buf[: self._n].copy()

    def assignments_view(self) -> np.ndarray:
        """The *live* cluster-reference array (no copy).

        Intended for the inner fitting loops of this library: writing
        ``view[i] = c`` is equivalent to :meth:`update_assignment` and
        is immediately visible to :meth:`candidate_clusters`.  Treat as
        an internal fast path; external callers should prefer the safe
        methods.  (A later :meth:`insert` may reallocate the backing
        buffer, so re-fetch the view after streaming new items in.)
        """
        self._check_built()
        self._check_mutable("assignments_view")
        assert self._assign_buf is not None
        return self._assign_buf[: self._n]

    # -- diagnostics -----------------------------------------------------

    @property
    def n_items(self) -> int:
        self._check_built()
        return self._n

    @property
    def band_keys(self) -> np.ndarray:
        """The ``(n_items, bands)`` bucket-key matrix (live, do not mutate).

        Together with the assignments this is sufficient to rebuild the
        index (``from_band_keys``), which is how fitted models are
        persisted without storing raw signatures.
        """
        self._check_built()
        assert self._keys_buf is not None
        return self._keys_buf[: self._n]

    def stats(self) -> IndexStats:
        """Bucket- and neighbour-level summary statistics."""
        self._check_built()
        sizes = self._bucket_sizes()
        if self._nbr_indptr is not None:
            assert self._group_of is not None
            lengths = np.diff(self._nbr_indptr)
            mean_nb = float(lengths[self._group_of].mean())
        else:
            mean_nb = float("nan")
        return IndexStats(
            n_items=self.n_items,
            bands=self.bands,
            rows=self.rows,
            n_buckets=int(len(sizes)),
            mean_bucket_size=float(sizes.mean()) if sizes.size else 0.0,
            max_bucket_size=int(sizes.max()) if sizes.size else 0,
            mean_neighbours=mean_nb,
        )

    def _check_built(self) -> None:
        if not self._is_built():
            raise NotFittedError(
                "index not built; call build(signatures, assignments) first"
            )


# ----------------------------------------------------------------------
# the unsharded index
# ----------------------------------------------------------------------


class ClusteredLSHIndex(BaseClusteredIndex):
    """Banded LSH index whose entries carry mutable cluster references.

    Parameters
    ----------
    bands:
        Number of bands ``b``.
    rows:
        Rows per band ``r``.  Signatures must have width ``b * r``.
    precompute_neighbours:
        If True (default), each item's neighbour list is materialised
        at build time in the flat CSR storage (see the module
        docstring).  Queries then cost a couple of numpy gathers.
        Turn off to save memory when buckets are enormous (for example
        1 band × 1 row on near-duplicate data), or to keep the index
        insertable for streaming.

    Examples
    --------
    >>> from repro.lsh import MinHasher, TokenSets
    >>> items = TokenSets.from_lists([[1, 2, 3], [1, 2, 4], [9, 10, 11]])
    >>> sigs = MinHasher(n_hashes=8, seed=0).signatures(items)
    >>> index = ClusteredLSHIndex(bands=4, rows=2)
    >>> index.build(sigs, assignments=np.array([0, 1, 2]))
    >>> sorted(index.candidate_clusters(0).tolist())  # doctest: +SKIP
    [0, 1]
    """

    def __init__(self, bands: int, rows: int, precompute_neighbours: bool = True):
        super().__init__(bands, rows, precompute_neighbours)
        self._tables: list[dict[int, np.ndarray]] | None = None
        self._fill: list[dict[int, int]] | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self, signatures: np.ndarray, assignments: np.ndarray) -> "ClusteredLSHIndex":
        """Index every item once (the single pass of Algorithm 2).

        Parameters
        ----------
        signatures:
            ``(n_items, bands * rows)`` signature matrix.
        assignments:
            ``(n_items,)`` initial cluster id per item.  Copied; use
            :meth:`update_assignment` / :meth:`set_assignments` to
            change later.
        """
        signatures = np.asarray(signatures)
        assignments = self._validated_assignments(
            len(signatures), assignments, "signatures"
        )
        band_keys = compute_band_keys(signatures, self.bands, self.rows)
        self._finalise(band_keys, assignments)
        return self

    @classmethod
    def from_band_keys(
        cls,
        bands: int,
        rows: int,
        band_keys: np.ndarray,
        assignments: np.ndarray,
        precompute_neighbours: bool = True,
    ) -> "ClusteredLSHIndex":
        """Rebuild an index from already-computed ``(n, bands)`` keys.

        Band keys fully determine the buckets and neighbour lists, so a
        persisted model only needs to store them (not the signatures)
        to reconstruct its index — CSR neighbour storage included —
        exactly; see :func:`repro.data.io.save_model`.
        """
        band_keys = np.asarray(band_keys)
        if band_keys.ndim != 2 or band_keys.shape[1] != bands:
            raise DataValidationError(
                f"band_keys must be (n_items, {bands}), got shape "
                f"{band_keys.shape}"
            )
        assignments = cls._validated_assignments(
            len(band_keys), assignments, "key rows"
        )
        index = cls(bands, rows, precompute_neighbours=precompute_neighbours)
        index._finalise(band_keys.astype(np.uint64, copy=False), assignments)
        return index

    def _finalise(self, band_keys: np.ndarray, assignments: np.ndarray) -> None:
        """Common tail of :meth:`build` and :meth:`from_band_keys`."""
        self._store_items(band_keys, assignments)
        runs = band_runs(band_keys, self.bands, 0, len(band_keys))
        self._tables = tables_from_runs(runs)
        self._fill = [{} for _ in range(self.bands)]
        if self.precompute_neighbours:
            self._store_neighbours(band_keys, [runs])

    # ------------------------------------------------------------------
    # layout hooks
    # ------------------------------------------------------------------

    def _is_built(self) -> bool:
        return self._tables is not None

    def _bucket_hits(self, keys: np.ndarray) -> list[np.ndarray]:
        assert self._tables is not None and self._fill is not None
        hits: list[np.ndarray] = []
        for j in range(self.bands):
            members = self._bucket_members(
                self._tables[j], self._fill[j], int(keys[j])
            )
            if members is not None:
                hits.append(members)
        return hits

    def _insert_into_buckets(self, keys: np.ndarray, item: int) -> None:
        assert self._tables is not None and self._fill is not None
        for j in range(self.bands):
            self._bucket_append(self._tables[j], self._fill[j], int(keys[j]), item)

    def _insert_many_into_buckets(
        self, keys: np.ndarray, items: np.ndarray
    ) -> None:
        assert self._tables is not None and self._fill is not None
        self._append_key_runs(self._tables, self._fill, keys, items)

    def _bucket_sizes(self) -> np.ndarray:
        assert self._tables is not None and self._fill is not None
        return np.array(
            [
                len(self._bucket_members(table, fill, key))
                for table, fill in zip(self._tables, self._fill)
                for key in table
            ],
            dtype=np.int64,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusteredLSHIndex(bands={self.bands}, rows={self.rows}, "
            f"built={self._is_built()})"
        )
