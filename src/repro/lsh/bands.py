"""Banding of signatures into bucket keys (the "LSH" step).

Section III-A2: a signature of length ``b * r`` is divided into ``b``
bands of ``r`` rows; each band is hashed to a bucket, with a separate
bucket space per band.  Two items become a *candidate pair* if they
share a bucket in at least one band, which happens with probability
``1 - (1 - s^r)^b`` for Jaccard similarity ``s`` — the S-curve that
gives the scheme its selectivity.

This module turns ``(n, b*r)`` signature matrices into ``(n, b)``
integer bucket keys.  Keys are built with a splitmix64 chain over the
band's rows, which gives avalanche mixing at a fixed, small memory
cost.  Keys from different bands are stored in structurally separate
dictionaries by the index, honouring the paper's "no overlapping
between bands" requirement.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.hashing import splitmix64

__all__ = [
    "compute_band_keys",
    "band_probability",
    "threshold_similarity",
    "validate_bands_rows",
]


def validate_bands_rows(bands: int, rows: int) -> None:
    """Raise :class:`ConfigurationError` unless both parameters are positive."""
    if bands <= 0:
        raise ConfigurationError(f"bands must be positive, got {bands}")
    if rows <= 0:
        raise ConfigurationError(f"rows must be positive, got {rows}")


def compute_band_keys(signatures: np.ndarray, bands: int, rows: int) -> np.ndarray:
    """Hash each band of each signature to a 64-bit bucket key.

    Parameters
    ----------
    signatures:
        ``(n_items, bands * rows)`` integer signature matrix.
    bands:
        Number of bands ``b``.
    rows:
        Rows per band ``r``.

    Returns
    -------
    numpy.ndarray
        ``(n_items, bands)`` uint64 key matrix.  Two items share a
        bucket in band ``j`` exactly when their keys in column ``j``
        are equal (up to a negligible 64-bit hash collision rate).

    Raises
    ------
    DataValidationError
        If the signature width is not ``bands * rows``.
    """
    validate_bands_rows(bands, rows)
    signatures = np.asarray(signatures)
    if signatures.ndim != 2:
        raise DataValidationError(
            f"expected 2-D signature matrix, got ndim={signatures.ndim}"
        )
    n, width = signatures.shape
    if width != bands * rows:
        raise DataValidationError(
            f"signature width {width} != bands*rows = {bands}*{rows}"
        )
    sig = signatures.astype(np.uint64, copy=False).reshape(n, bands, rows)
    # Chain the rows of each band through the mixer.  Seeding the chain
    # with the band index keeps identical row values in different bands
    # from producing identical keys.
    keys = splitmix64(np.arange(bands, dtype=np.uint64))[None, :]
    keys = np.broadcast_to(keys, (n, bands)).copy()
    for j in range(rows):
        with np.errstate(over="ignore"):
            keys = splitmix64(keys ^ sig[:, :, j])
    return keys


def band_probability(similarity: float, bands: int, rows: int) -> float:
    """Probability that two items become a candidate pair.

    Implements ``1 - (1 - s^r)^b`` from Section III-A2.

    Parameters
    ----------
    similarity:
        Jaccard similarity ``s`` in ``[0, 1]``.
    bands, rows:
        LSH banding parameters.
    """
    validate_bands_rows(bands, rows)
    if not 0.0 <= similarity <= 1.0:
        raise DataValidationError(f"similarity must be in [0, 1], got {similarity}")
    return 1.0 - (1.0 - similarity**rows) ** bands


def threshold_similarity(bands: int, rows: int) -> float:
    """Similarity at the steepest point of the S-curve, ``(1/b)^(1/r)``.

    Section III-A2: this is approximately the similarity at which a
    pair has a 50 % chance of becoming a candidate, so it acts as the
    effective similarity threshold of a ``(b, r)`` configuration.
    """
    validate_bands_rows(bands, rows)
    return (1.0 / bands) ** (1.0 / rows)
