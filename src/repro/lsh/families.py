"""LSH family protocol and registry.

The paper's framework is generic over the hashing scheme: any locality
sensitive family whose signatures can be banded works.  K-Modes uses
MinHash (Jaccard similarity); the further-work extension to numeric
data needs cosine (:class:`repro.lsh.simhash.SimHasher`) or Euclidean
(:class:`repro.lsh.pstable.PStableHasher`) families.

A *family* here is any object with

* an ``n_hashes`` attribute — the signature width, and
* a ``signatures(data) -> (n_items, n_hashes) int64`` method.

The registry lets estimators accept a family by name, mirroring how a
database system would expose pluggable index types.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["LSHFamily", "register_family", "get_family", "available_families"]


@runtime_checkable
class LSHFamily(Protocol):
    """Structural interface every LSH family implements."""

    n_hashes: int

    def signatures(self, data: Any) -> np.ndarray:
        """Return an ``(n_items, n_hashes)`` int64 signature matrix."""
        ...


_REGISTRY: dict[str, Callable[..., LSHFamily]] = {}


def register_family(name: str, factory: Callable[..., LSHFamily]) -> None:
    """Register a family factory under ``name``.

    Parameters
    ----------
    name:
        Lookup key, case-insensitive.
    factory:
        Callable accepting at least ``n_hashes`` and ``seed`` keyword
        arguments and returning a family instance.

    Raises
    ------
    ConfigurationError
        If the name is already taken (re-registering the same factory
        is allowed and is a no-op).
    """
    key = name.lower()
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not factory:
        raise ConfigurationError(f"LSH family {name!r} is already registered")
    _REGISTRY[key] = factory


def get_family(name: str, **kwargs: Any) -> LSHFamily:
    """Instantiate a registered family by name.

    Examples
    --------
    >>> family = get_family("minhash", n_hashes=16, seed=1)
    >>> family.n_hashes
    16
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown LSH family {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def available_families() -> list[str]:
    """Names of every registered family, sorted."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    """Register the built-in families lazily to avoid import cycles."""
    from repro.lsh.minhash import MinHasher
    from repro.lsh.pstable import PStableHasher
    from repro.lsh.simhash import SimHasher

    register_family("minhash", MinHasher)
    register_family("simhash", SimHasher)
    register_family("pstable", PStableHasher)


_register_builtins()
