"""p-stable LSH for Euclidean distance (Datar et al. scheme).

Second numeric family for the further-work extension.  Each hash
function projects a vector onto a random Gaussian direction, shifts it
by a random offset and quantises into cells of width ``w``:

    h(x) = floor((a · x + b) / w)

Close vectors land in the same cell with high probability; the cell
ids are int64 values that band exactly like MinHash signatures.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError

__all__ = ["PStableHasher"]


class PStableHasher:
    """Euclidean (2-stable, Gaussian) LSH with quantisation width ``w``.

    Parameters
    ----------
    n_hashes:
        Number of projections (signature width).
    seed:
        Seed for projections and offsets.
    width:
        Quantisation cell width ``w``.  Smaller widths are more
        selective.  Must be positive.
    n_features:
        Input dimensionality; inferred on first use if omitted.
    """

    def __init__(
        self,
        n_hashes: int,
        seed: int = 0,
        width: float = 4.0,
        n_features: int | None = None,
    ):
        if n_hashes <= 0:
            raise ConfigurationError(f"n_hashes must be positive, got {n_hashes}")
        if width <= 0:
            raise ConfigurationError(f"width must be positive, got {width}")
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)
        self.width = float(width)
        self.n_features = n_features
        self._directions: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        if n_features is not None:
            self._init_projections(n_features)

    def _init_projections(self, n_features: int) -> None:
        if n_features <= 0:
            raise ConfigurationError(f"n_features must be positive, got {n_features}")
        rng = np.random.default_rng(self.seed)
        self._directions = rng.standard_normal((n_features, self.n_hashes))
        self._offsets = rng.uniform(0.0, self.width, size=self.n_hashes)
        self.n_features = int(n_features)

    def signatures(self, X: np.ndarray) -> np.ndarray:
        """Quantised projections of a matrix of row vectors.

        Returns
        -------
        numpy.ndarray
            ``(n_items, n_hashes)`` int64 cell ids.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise DataValidationError(f"expected 2-D matrix, got ndim={X.ndim}")
        if self._directions is None:
            self._init_projections(X.shape[1])
        assert self._directions is not None and self._offsets is not None
        if X.shape[1] != self._directions.shape[0]:
            raise DataValidationError(
                f"expected {self._directions.shape[0]} features, got {X.shape[1]}"
            )
        projected = (X @ self._directions + self._offsets[None, :]) / self.width
        return np.floor(projected).astype(np.int64)

    def signature(self, x: np.ndarray) -> np.ndarray:
        """Hash a single vector (convenience wrapper)."""
        return self.signatures(np.asarray(x)[None, :])[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PStableHasher(n_hashes={self.n_hashes}, seed={self.seed}, "
            f"width={self.width}, n_features={self.n_features})"
        )
