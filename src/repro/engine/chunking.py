"""Chunk iterators shared by every parallel phase of the engine.

All engine parallelism is expressed as "run this kernel over contiguous
item spans and merge the partial results".  Contiguity matters twice:

* numpy slices of contiguous spans are views, so serial and threaded
  workers never copy the item matrix;
* results concatenate back in task order, which keeps every chunked
  phase bit-identical to its unchunked counterpart.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import ConfigurationError

__all__ = ["chunk_ranges", "iter_blocks"]


def chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``n_chunks`` balanced spans.

    Spans are contiguous, cover every item exactly once, appear in item
    order, and differ in length by at most one.  Empty spans are never
    produced, so fewer than ``n_chunks`` spans come back when
    ``n_items < n_chunks``.

    Examples
    --------
    >>> chunk_ranges(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> chunk_ranges(2, 8)
    [(0, 1), (1, 2)]
    """
    if n_items < 0:
        raise ConfigurationError(f"n_items must be non-negative, got {n_items}")
    if n_chunks <= 0:
        raise ConfigurationError(f"n_chunks must be positive, got {n_chunks}")
    n_chunks = min(n_chunks, n_items)
    spans: list[tuple[int, int]] = []
    start = 0
    for chunk in range(n_chunks):
        size = n_items // n_chunks + (1 if chunk < n_items % n_chunks else 0)
        spans.append((start, start + size))
        start += size
    return spans


def iter_blocks(start: int, stop: int, block: int) -> Iterator[tuple[int, int]]:
    """Walk ``[start, stop)`` in sub-spans of at most ``block`` items.

    Used inside chunk workers to bound the memory of the padded
    distance tensors without changing the per-item results.
    """
    if block <= 0:
        raise ConfigurationError(f"block must be positive, got {block}")
    for lo in range(start, stop, block):
        yield lo, min(lo + block, stop)
