"""Pluggable parallel execution for the clustering framework.

The engine subsystem scales every phase of an LSH-accelerated fit —
signature hashing, index construction, the per-iteration shortlist
assignment — across workers, behind one seam:

* :mod:`repro.engine.backends` — ``serial`` / ``thread`` / ``process``
  :class:`ExecutionBackend` strategies with reusable worker sessions;
* :mod:`repro.engine.shared` — :class:`SharedArray`, zero-copy /
  shared-memory transport for bulky read-only arrays;
* :mod:`repro.engine.chunking` — contiguous chunk iterators shared by
  every phase;
* :mod:`repro.engine.pool` — :class:`PersistentPool`, the worker pool
  with an explicit lifetime shared by fit sessions and the serving
  layer (:mod:`repro.serve`);
* :mod:`repro.engine.sharded_index` —
  :class:`ShardedClusteredLSHIndex`, per-shard bucket tables whose
  union reproduces the global index exactly (shard-count invariant);
* :mod:`repro.engine.parallel` — :class:`ClusteringEngine`, whose
  fit-lifetime session runs every phase — including the vectorised
  batch assignment pass — on one worker pool per fit.

Estimators expose it as ``backend=`` / ``n_jobs=`` / ``n_shards=``
parameters; the default ``backend='serial'`` reproduces the paper's
online semantics byte for byte, while batch updates run a vectorised
pass whose labels are identical across backends, chunkings and shard
counts.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.engine.chunking import chunk_ranges, iter_blocks
from repro.engine.parallel import ClusteringEngine, resolve_engine
from repro.engine.pool import PersistentPool, live_pool_count
from repro.engine.shared import SharedArray, resolve_array
from repro.engine.sharded_index import ShardedClusteredLSHIndex

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "chunk_ranges",
    "iter_blocks",
    "ClusteringEngine",
    "resolve_engine",
    "PersistentPool",
    "live_pool_count",
    "SharedArray",
    "resolve_array",
    "ShardedClusteredLSHIndex",
]
