"""A sharded clustered LSH index for parallel build and query.

:class:`ShardedClusteredLSHIndex` partitions the items into
``n_shards`` contiguous shards and keeps one bucket table *per shard
per band* instead of one global table per band.  The partitioning is a
pure storage decision:

* **build** parallelises — each shard bucketises only its own slice of
  the band-key matrix, so shard tables build independently (one task
  per shard on any :class:`~repro.engine.backends.ExecutionBackend`,
  or on an already-open engine fit session via
  :meth:`ShardedClusteredLSHIndex.from_shard_runs`);
* **queries stay exact** — an item's candidate set is the union of its
  bucket members *across all shards*, which equals the global bucket
  of :class:`~repro.lsh.index.ClusteredLSHIndex` element for element.
  Results are therefore invariant to the shard count (asserted by the
  shard-invariance tests).

Everything above the table layout — neighbour CSR storage, queries,
the O(1) reference update of Algorithm 2, the live
``assignments_view`` fast path, amortised insertion — is inherited
from :class:`~repro.lsh.index.BaseClusteredIndex`, shared verbatim
with the unsharded index so the two surfaces cannot drift.

Beck et al. ("A Distributed and Approximated Nearest Neighbors
Algorithm for an Efficient Large Scale Mean Shift Clustering") use the
same items-partitioned / centroids-shared layout to scale LSH-based
clustering across workers; this class is the single-machine analogue.
"""

from __future__ import annotations

import numpy as np

from repro.engine.backends import ExecutionBackend, SerialBackend
from repro.engine.chunking import chunk_ranges
from repro.engine.shared import resolve_array
from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.index import (
    BandRuns,
    BaseClusteredIndex,
    band_runs,
    tables_from_runs,
)
from repro.lsh.bands import compute_band_keys

__all__ = ["ShardedClusteredLSHIndex"]

#: One shard's bucket tables: per band, bucket key → global item ids.
ShardTables = list[dict[int, np.ndarray]]


def _build_shard_tables(static, dynamic, span: tuple[int, int]) -> BandRuns:
    """Kernel: sort one shard's slice of the band keys into bucket runs.

    ``dynamic`` is ``(band_keys_ref, bands)`` where the keys travel as
    a :class:`~repro.engine.shared.SharedArray` (zero-copy / shared
    memory) or a plain array; ``static`` is whatever the enclosing
    session pinned and is not consulted here.
    """
    band_keys_ref, bands = dynamic
    band_keys = resolve_array(band_keys_ref)
    return band_runs(band_keys, bands, span[0], span[1])


class ShardedClusteredLSHIndex(BaseClusteredIndex):
    """Clustered LSH index split into per-shard bucket tables.

    Drop-in for :class:`~repro.lsh.index.ClusteredLSHIndex` wherever
    the fitting loop and predict path are concerned (same query,
    assignment and neighbour-CSR methods), with two extra knobs:

    Parameters
    ----------
    bands, rows:
        Banding parameters; signatures must have width ``bands * rows``.
    n_shards:
        Number of item shards.  ``1`` behaves like the unsharded index
        (with shard-table indirection); more shards mean more build
        tasks for a parallel backend.
    precompute_neighbours:
        As in the unsharded index.  Must be ``False`` to allow
        :meth:`~repro.lsh.index.BaseClusteredIndex.insert` (streaming).

    Examples
    --------
    >>> from repro.lsh import MinHasher, TokenSets
    >>> items = TokenSets.from_lists([[1, 2, 3], [1, 2, 4], [9, 10, 11]])
    >>> sigs = MinHasher(n_hashes=8, seed=0).signatures(items)
    >>> index = ShardedClusteredLSHIndex(bands=4, rows=2, n_shards=2)
    >>> index.build(sigs, assignments=np.array([0, 1, 2])).n_items
    3
    """

    def __init__(
        self,
        bands: int,
        rows: int,
        n_shards: int = 1,
        precompute_neighbours: bool = True,
    ):
        super().__init__(bands, rows, precompute_neighbours)
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = int(n_shards)
        self._shards: list[ShardTables] | None = None
        self._shard_fill: list[list[dict[int, int]]] | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(
        self,
        signatures: np.ndarray,
        assignments: np.ndarray,
        backend: ExecutionBackend | None = None,
    ) -> "ShardedClusteredLSHIndex":
        """Index every item once, one build task per shard.

        Parameters
        ----------
        signatures:
            ``(n_items, bands * rows)`` signature matrix.
        assignments:
            ``(n_items,)`` initial cluster id per item (copied).
        backend:
            Where the shard builds run; defaults to serial.
        """
        signatures = np.asarray(signatures)
        assignments = self._validated_assignments(
            len(signatures), assignments, "signatures"
        )
        band_keys = compute_band_keys(signatures, self.bands, self.rows)
        runs = self._compute_runs(band_keys, backend or SerialBackend())
        self._finalise_from_runs(band_keys, assignments, runs)
        return self

    @classmethod
    def from_band_keys(
        cls,
        bands: int,
        rows: int,
        band_keys: np.ndarray,
        assignments: np.ndarray,
        n_shards: int = 1,
        precompute_neighbours: bool = True,
        backend: ExecutionBackend | None = None,
    ) -> "ShardedClusteredLSHIndex":
        """Rebuild from persisted ``(n, bands)`` keys (see ``save_model``)."""
        band_keys = np.asarray(band_keys)
        if band_keys.ndim != 2 or band_keys.shape[1] != bands:
            raise DataValidationError(
                f"band_keys must be (n_items, {bands}), got shape "
                f"{band_keys.shape}"
            )
        assignments = cls._validated_assignments(
            len(band_keys), assignments, "key rows"
        )
        index = cls(
            bands, rows, n_shards=n_shards, precompute_neighbours=precompute_neighbours
        )
        band_keys = band_keys.astype(np.uint64, copy=False)
        runs = index._compute_runs(band_keys, backend or SerialBackend())
        index._finalise_from_runs(band_keys, assignments, runs)
        return index

    @classmethod
    def from_shard_runs(
        cls,
        bands: int,
        rows: int,
        band_keys: np.ndarray,
        assignments: np.ndarray,
        shard_runs: list[BandRuns],
        n_shards: int = 1,
        precompute_neighbours: bool = True,
    ) -> "ShardedClusteredLSHIndex":
        """Assemble an index from bucket runs computed elsewhere.

        The engine's fit-lifetime session uses this to build the shard
        tables on its already-open worker pool (one
        :func:`_build_shard_tables` task per shard over
        :func:`~repro.engine.chunking.chunk_ranges` spans) without
        opening a second pool.
        """
        assignments = cls._validated_assignments(
            len(band_keys), assignments, "key rows"
        )
        index = cls(
            bands, rows, n_shards=n_shards, precompute_neighbours=precompute_neighbours
        )
        index._finalise_from_runs(
            np.asarray(band_keys, dtype=np.uint64), assignments, shard_runs
        )
        return index

    def _compute_runs(
        self, band_keys: np.ndarray, backend: ExecutionBackend
    ) -> list[BandRuns]:
        spans = chunk_ranges(len(band_keys), self.n_shards)
        keys_ref = backend.share_array(band_keys)
        try:
            return backend.run(
                _build_shard_tables, spans, dynamic=(keys_ref, self.bands)
            )
        finally:
            keys_ref.release()

    def _finalise_from_runs(
        self,
        band_keys: np.ndarray,
        assignments: np.ndarray,
        shard_runs: list[BandRuns],
    ) -> None:
        if len(shard_runs) > self.n_shards:
            raise ConfigurationError(
                f"{len(shard_runs)} shard runs for n_shards={self.n_shards}; "
                "runs must come from chunk_ranges(n_items, n_shards)"
            )
        self._store_items(band_keys, assignments)
        shards = [tables_from_runs(runs) for runs in shard_runs]
        # chunk_ranges never yields empty spans, so tiny inputs produce
        # fewer runs than shards; pad with empty tables so round-robin
        # insertion can target any of the configured shards.
        while len(shards) < self.n_shards:
            shards.append([{} for _ in range(self.bands)])
        self._shards = shards
        self._shard_fill = [
            [{} for _ in range(self.bands)] for _ in range(self.n_shards)
        ]
        if self.precompute_neighbours:
            self._store_neighbours(band_keys, shard_runs)

    # ------------------------------------------------------------------
    # layout hooks (contract identical to ClusteredLSHIndex)
    # ------------------------------------------------------------------

    def _is_built(self) -> bool:
        return self._shards is not None

    def _bucket_hits(self, keys: np.ndarray) -> list[np.ndarray]:
        assert self._shards is not None and self._shard_fill is not None
        hits: list[np.ndarray] = []
        for tables, fills in zip(self._shards, self._shard_fill):
            for j in range(self.bands):
                members = self._bucket_members(tables[j], fills[j], int(keys[j]))
                if members is not None:
                    hits.append(members)
        return hits

    def _insert_into_buckets(self, keys: np.ndarray, item: int) -> None:
        """Hash one new item into one shard's tables.

        New items are spread round-robin over the shards (``item_id %
        n_shards``); because queries union all shards, the choice never
        affects results.
        """
        assert self._shards is not None and self._shard_fill is not None
        shard = item % self.n_shards
        tables, fills = self._shards[shard], self._shard_fill[shard]
        for j in range(self.bands):
            self._bucket_append(tables[j], fills[j], int(keys[j]), item)

    def _insert_many_into_buckets(
        self, keys: np.ndarray, items: np.ndarray
    ) -> None:
        """Bulk-insert a chunk, round-robined over the shards.

        Items land in the same ``item % n_shards`` shard the one-by-one
        path would pick, then each shard absorbs its slice as per-band
        key runs; queries union all shards, so the partition never
        affects results.
        """
        assert self._shards is not None and self._shard_fill is not None
        shard_of = items % self.n_shards
        for shard in np.unique(shard_of):
            selected = shard_of == shard
            self._append_key_runs(
                self._shards[shard],
                self._shard_fill[shard],
                keys[selected],
                items[selected],
            )

    def _bucket_sizes(self) -> np.ndarray:
        assert self._shards is not None and self._shard_fill is not None
        return np.array(
            [
                len(self._bucket_members(tables[j], fills[j], key))
                for tables, fills in zip(self._shards, self._shard_fill)
                for j in range(self.bands)
                for key in tables[j]
            ],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def shard_sizes(self) -> np.ndarray:
        """Items indexed per shard (build partition plus inserts)."""
        self._check_built()
        assert self._shards is not None and self._shard_fill is not None
        sizes = np.zeros(self.n_shards, dtype=np.int64)
        if self.bands:
            for shard, (tables, fills) in enumerate(
                zip(self._shards, self._shard_fill)
            ):
                sizes[shard] = sum(
                    len(self._bucket_members(tables[0], fills[0], key))
                    for key in tables[0]
                )
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedClusteredLSHIndex(bands={self.bands}, rows={self.rows}, "
            f"n_shards={self.n_shards}, built={self._is_built()})"
        )
