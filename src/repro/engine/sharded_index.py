"""A sharded clustered LSH index for parallel build and query.

:class:`ShardedClusteredLSHIndex` partitions the items into
``n_shards`` contiguous shards and keeps one bucket table *per shard
per band* instead of one global table per band.  The partitioning is a
pure storage decision:

* **build** parallelises — each shard bucketises only its own slice of
  the band-key matrix, so shard tables build independently (one task
  per shard on any :class:`~repro.engine.backends.ExecutionBackend`);
* **queries stay exact** — an item's candidate set is the union of its
  bucket members *across all shards*, which equals the global bucket
  of :class:`~repro.lsh.index.ClusteredLSHIndex` element for element.
  Results are therefore invariant to the shard count (asserted by the
  shard-invariance tests).

Cluster references live in one shared assignment array exactly as in
the unsharded index, so the O(1) reference update of Algorithm 2 and
the live :meth:`assignments_view` fast path carry over unchanged, and
the serial fitting loop runs against either index type.

Beck et al. ("A Distributed and Approximated Nearest Neighbors
Algorithm for an Efficient Large Scale Mean Shift Clustering") use the
same items-partitioned / centroids-shared layout to scale LSH-based
clustering across workers; this class is the single-machine analogue.
"""

from __future__ import annotations

import numpy as np

from repro.engine.backends import ExecutionBackend, SerialBackend
from repro.engine.chunking import chunk_ranges
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.lsh.bands import compute_band_keys, validate_bands_rows
from repro.lsh.index import ClusteredLSHIndex, IndexStats

__all__ = ["ShardedClusteredLSHIndex"]

#: One shard's bucket tables: per band, bucket key → global item ids.
ShardTables = list[dict[int, np.ndarray]]


def _build_shard_tables(
    static: tuple[np.ndarray, int], dynamic: None, span: tuple[int, int]
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Sort one shard's slice of the band-key matrix into bucket runs.

    Returns one compact ``(bucket_keys, boundaries, order)`` triple per
    band — three arrays instead of one tiny array per bucket, so the
    process backend ships O(bands) buffers back, not O(buckets).
    ``order`` holds *global* item ids (local argsort order plus the
    shard offset); the parent slices it into the per-key dict.
    """
    band_keys, bands = static
    start, stop = span
    local = band_keys[start:stop]
    out = []
    for j in range(bands):
        order = np.argsort(local[:, j], kind="stable").astype(np.int64)
        order += start
        sorted_keys = band_keys[order, j]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate([[0], boundaries])
        out.append((sorted_keys[starts], starts, order))
    return out


def _tables_from_runs(
    runs: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> ShardTables:
    """Slice the per-band bucket runs into key → members dicts (views)."""
    tables: ShardTables = []
    for bucket_keys, starts, order in runs:
        ends = np.concatenate([starts[1:], [len(order)]])
        tables.append(
            {
                int(key): order[s:e]
                for key, s, e in zip(bucket_keys, starts, ends)
            }
        )
    return tables


def _group_neighbours_from_runs(
    unique_rows: np.ndarray,
    shard_runs: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]],
    n_items: int,
) -> list[np.ndarray]:
    """Materialise every group's neighbour list in one vectorised sweep.

    Per shard and band, each group's bucket is located with one
    ``searchsorted`` against the sorted bucket keys and gathered as a
    run of the band's order array; the runs of all bands and shards are
    deduplicated per group with a single segmented ``np.unique`` over
    ``group * n_items + member`` keys.  No per-group Python work — this
    is what makes index construction fast at scale regardless of the
    backend.
    """
    n_groups = len(unique_rows)
    member_parts: list[np.ndarray] = []
    group_parts: list[np.ndarray] = []
    group_ids = np.arange(n_groups, dtype=np.int64)
    for runs in shard_runs:
        for j, (bucket_keys, starts, order) in enumerate(runs):
            ends = np.concatenate([starts[1:], [len(order)]])
            pos = np.searchsorted(bucket_keys, unique_rows[:, j])
            found = np.flatnonzero(
                (pos < len(bucket_keys))
                & (bucket_keys[np.minimum(pos, len(bucket_keys) - 1)]
                   == unique_rows[:, j])
            )
            if not len(found):
                continue
            run_starts = starts[pos[found]]
            run_lengths = ends[pos[found]] - run_starts
            total = int(run_lengths.sum())
            # gather all runs at once: order[start_g + offset] for every
            # offset in [0, length_g)
            bases = np.repeat(run_starts, run_lengths)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(run_lengths) - run_lengths, run_lengths
            )
            member_parts.append(order[bases + offsets])
            group_parts.append(np.repeat(group_ids[found], run_lengths))
    members = np.concatenate(member_parts)
    groups = np.concatenate(group_parts)
    uniq = np.unique(groups * n_items + members)
    u_group = uniq // n_items
    u_member = uniq - u_group * n_items
    lengths = np.bincount(u_group, minlength=n_groups)
    return np.split(u_member, np.cumsum(lengths[:-1]))


class ShardedClusteredLSHIndex:
    """Clustered LSH index split into per-shard bucket tables.

    Drop-in for :class:`~repro.lsh.index.ClusteredLSHIndex` wherever
    the fitting loop and predict path are concerned (same query,
    assignment and neighbour-group methods), with two extra knobs:

    Parameters
    ----------
    bands, rows:
        Banding parameters; signatures must have width ``bands * rows``.
    n_shards:
        Number of item shards.  ``1`` behaves like the unsharded index
        (with shard-table indirection); more shards mean more build
        tasks for a parallel backend.
    precompute_neighbours:
        As in the unsharded index.  Must be ``False`` to allow
        :meth:`insert` (streaming).

    Examples
    --------
    >>> from repro.lsh import MinHasher, TokenSets
    >>> items = TokenSets.from_lists([[1, 2, 3], [1, 2, 4], [9, 10, 11]])
    >>> sigs = MinHasher(n_hashes=8, seed=0).signatures(items)
    >>> index = ShardedClusteredLSHIndex(bands=4, rows=2, n_shards=2)
    >>> index.build(sigs, assignments=np.array([0, 1, 2])).n_items
    3
    """

    def __init__(
        self,
        bands: int,
        rows: int,
        n_shards: int = 1,
        precompute_neighbours: bool = True,
    ):
        validate_bands_rows(bands, rows)
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        self.bands = int(bands)
        self.rows = int(rows)
        self.n_shards = int(n_shards)
        self.precompute_neighbours = bool(precompute_neighbours)
        self._assignments: np.ndarray | None = None
        self._band_keys: np.ndarray | None = None
        self._shards: list[ShardTables] | None = None
        self._group_of: np.ndarray | None = None
        self._group_neighbours: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(
        self,
        signatures: np.ndarray,
        assignments: np.ndarray,
        backend: ExecutionBackend | None = None,
    ) -> "ShardedClusteredLSHIndex":
        """Index every item once, one build task per shard.

        Parameters
        ----------
        signatures:
            ``(n_items, bands * rows)`` signature matrix.
        assignments:
            ``(n_items,)`` initial cluster id per item (copied).
        backend:
            Where the shard builds run; defaults to serial.
        """
        signatures = np.asarray(signatures)
        assignments = np.asarray(assignments)
        if assignments.ndim != 1:
            raise DataValidationError(
                f"assignments must be 1-D, got ndim={assignments.ndim}"
            )
        if len(assignments) != len(signatures):
            raise DataValidationError(
                f"{len(signatures)} signatures but {len(assignments)} assignments"
            )
        if len(signatures) == 0:
            raise DataValidationError("cannot build an index over zero items")
        band_keys = compute_band_keys(signatures, self.bands, self.rows)
        self._finalise(band_keys, assignments, backend or SerialBackend())
        return self

    @classmethod
    def from_band_keys(
        cls,
        bands: int,
        rows: int,
        band_keys: np.ndarray,
        assignments: np.ndarray,
        n_shards: int = 1,
        precompute_neighbours: bool = True,
        backend: ExecutionBackend | None = None,
    ) -> "ShardedClusteredLSHIndex":
        """Rebuild from persisted ``(n, bands)`` keys (see ``save_model``)."""
        band_keys = np.asarray(band_keys)
        assignments = np.asarray(assignments)
        if band_keys.ndim != 2 or band_keys.shape[1] != bands:
            raise DataValidationError(
                f"band_keys must be (n_items, {bands}), got shape "
                f"{band_keys.shape}"
            )
        if len(assignments) != len(band_keys):
            raise DataValidationError(
                f"{len(band_keys)} key rows but {len(assignments)} assignments"
            )
        if len(band_keys) == 0:
            raise DataValidationError("cannot build an index over zero items")
        index = cls(
            bands, rows, n_shards=n_shards, precompute_neighbours=precompute_neighbours
        )
        index._finalise(
            band_keys.astype(np.uint64, copy=False),
            assignments,
            backend or SerialBackend(),
        )
        return index

    def _finalise(
        self,
        band_keys: np.ndarray,
        assignments: np.ndarray,
        backend: ExecutionBackend,
    ) -> None:
        self._band_keys = band_keys
        self._assignments = assignments.astype(np.int64).copy()
        spans = chunk_ranges(len(band_keys), self.n_shards)
        shard_runs = backend.run(
            _build_shard_tables, spans, static=(band_keys, self.bands)
        )
        self._shards = [_tables_from_runs(runs) for runs in shard_runs]
        if self.precompute_neighbours:
            unique_rows, group_of = np.unique(
                band_keys, axis=0, return_inverse=True
            )
            self._group_of = group_of.astype(np.int64).ravel()
            self._group_neighbours = _group_neighbours_from_runs(
                unique_rows, shard_runs, len(band_keys)
            )

    # ------------------------------------------------------------------
    # queries (contract identical to ClusteredLSHIndex)
    # ------------------------------------------------------------------

    def _bucket_hits(self, keys: np.ndarray) -> list[np.ndarray]:
        """All shard buckets matching a ``(bands,)`` key row."""
        assert self._shards is not None
        hits: list[np.ndarray] = []
        for tables in self._shards:
            for j in range(self.bands):
                members = tables[j].get(int(keys[j]))
                if members is not None:
                    hits.append(members)
        return hits

    def candidate_items(self, item: int) -> np.ndarray:
        """All items sharing at least one bucket with ``item`` (incl. itself)."""
        self._check_built()
        if self._group_neighbours is not None:
            assert self._group_of is not None
            return self._group_neighbours[self._group_of[item]]
        assert self._band_keys is not None
        return np.unique(np.concatenate(self._bucket_hits(self._band_keys[item])))

    def candidate_clusters(self, item: int) -> np.ndarray:
        """The paper's shortlist: distinct clusters of the item's neighbours."""
        self._check_built()
        assert self._assignments is not None
        return np.unique(self._assignments[self.candidate_items(item)])

    def candidate_clusters_for_signature(self, signature: np.ndarray) -> np.ndarray:
        """Shortlist for a novel signature (may be empty), as unsharded."""
        self._check_built()
        assert self._assignments is not None
        signature = np.asarray(signature)
        if signature.ndim == 1:
            signature = signature[None, :]
        keys = compute_band_keys(signature, self.bands, self.rows)[0]
        hits = self._bucket_hits(keys)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._assignments[np.concatenate(hits)])

    def neighbour_groups(self) -> tuple[np.ndarray, list[np.ndarray]] | None:
        """Grouped neighbour lists, exactly as the unsharded index."""
        self._check_built()
        if self._group_of is None or self._group_neighbours is None:
            return None
        return self._group_of, self._group_neighbours

    # ------------------------------------------------------------------
    # incremental insertion (streaming extension)
    # ------------------------------------------------------------------

    def insert(self, signature: np.ndarray, cluster: int) -> int:
        """Add one new item, hashing it into one shard's tables.

        New items are spread round-robin over the shards (``item_id %
        n_shards``); because queries union all shards, the choice never
        affects results.  Requires ``precompute_neighbours=False``,
        like the unsharded :meth:`~repro.lsh.index.ClusteredLSHIndex.insert`.
        """
        self._check_built()
        if self._group_neighbours is not None:
            raise ConfigurationError(
                "insert requires precompute_neighbours=False; grouped "
                "neighbour lists cannot absorb new items"
            )
        assert (
            self._band_keys is not None
            and self._shards is not None
            and self._assignments is not None
        )
        signature = np.asarray(signature)
        if signature.ndim != 1:
            raise DataValidationError(
                f"signature must be 1-D, got ndim={signature.ndim}"
            )
        keys = compute_band_keys(signature[None, :], self.bands, self.rows)[0]
        item = len(self._band_keys)
        self._band_keys = np.vstack([self._band_keys, keys[None, :]])
        self._assignments = np.append(self._assignments, np.int64(cluster))
        tables = self._shards[item % self.n_shards]
        for j in range(self.bands):
            members = tables[j].get(int(keys[j]))
            if members is None:
                tables[j][int(keys[j])] = np.array([item], dtype=np.int64)
            else:
                tables[j][int(keys[j])] = np.append(members, np.int64(item))
        return item

    # ------------------------------------------------------------------
    # cluster-reference updates
    # ------------------------------------------------------------------

    def update_assignment(self, item: int, cluster: int) -> None:
        """O(1) rewrite of one item's cluster reference."""
        self._check_built()
        assert self._assignments is not None
        self._assignments[item] = cluster

    def set_assignments(self, assignments: np.ndarray) -> None:
        """Bulk-replace every cluster reference (used between iterations)."""
        self._check_built()
        assert self._assignments is not None
        assignments = np.asarray(assignments, dtype=np.int64)
        if assignments.shape != self._assignments.shape:
            raise DataValidationError(
                f"expected shape {self._assignments.shape}, got {assignments.shape}"
            )
        self._assignments = assignments.copy()

    @property
    def assignments(self) -> np.ndarray:
        """A copy of the current cluster references."""
        self._check_built()
        assert self._assignments is not None
        return self._assignments.copy()

    def assignments_view(self) -> np.ndarray:
        """The live cluster-reference array (no copy); see unsharded docs."""
        self._check_built()
        assert self._assignments is not None
        return self._assignments

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    @property
    def n_items(self) -> int:
        self._check_built()
        assert self._band_keys is not None
        return len(self._band_keys)

    @property
    def band_keys(self) -> np.ndarray:
        """The ``(n_items, bands)`` bucket-key matrix (live, do not mutate)."""
        self._check_built()
        assert self._band_keys is not None
        return self._band_keys

    def shard_sizes(self) -> np.ndarray:
        """Items indexed per shard (build partition plus inserts)."""
        self._check_built()
        assert self._shards is not None
        sizes = np.zeros(self.n_shards, dtype=np.int64)
        for shard, tables in enumerate(self._shards):
            if self.bands:
                sizes[shard] = sum(len(m) for m in tables[0].values())
        return sizes

    def stats(self) -> IndexStats:
        """Aggregate bucket/neighbour statistics across every shard."""
        self._check_built()
        assert self._shards is not None
        sizes = np.array(
            [
                len(members)
                for tables in self._shards
                for band in tables
                for members in band.values()
            ],
            dtype=np.int64,
        )
        if self._group_of is not None and self._group_neighbours is not None:
            lengths = np.array(
                [len(group) for group in self._group_neighbours], dtype=np.int64
            )
            mean_nb = float(lengths[self._group_of].mean())
        else:
            mean_nb = float("nan")
        return IndexStats(
            n_items=self.n_items,
            bands=self.bands,
            rows=self.rows,
            n_buckets=int(len(sizes)),
            mean_bucket_size=float(sizes.mean()) if sizes.size else 0.0,
            max_bucket_size=int(sizes.max()) if sizes.size else 0,
            mean_neighbours=mean_nb,
        )

    def _check_built(self) -> None:
        if self._shards is None:
            raise NotFittedError(
                "index not built; call build(signatures, assignments) first"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = self._shards is not None
        return (
            f"ShardedClusteredLSHIndex(bands={self.bands}, rows={self.rows}, "
            f"n_shards={self.n_shards}, built={built})"
        )
