"""Persistent worker pools: one pool, many dispatches, explicit lifetime.

The engine's original contract tied a worker pool's lifetime to one fit
(:class:`~repro.engine.parallel.EngineFitSession`).  Serving breaks
that shape: a :class:`repro.serve.ModelServer` answers an unbounded
stream of predict batches and must keep its workers warm *across*
calls.  :class:`PersistentPool` is the lifetime-owning object both
sides now share:

* it opens exactly one :class:`~repro.engine.backends.BackendSession`
  over a backend (counted by ``backend.sessions_opened``, which is how
  the one-pool-per-fit and one-pool-per-server contracts are asserted
  in tests — respawns after a worker death open additional sessions,
  by design);
* it tracks every :class:`~repro.engine.shared.SharedArray` segment
  created through :meth:`share` and releases them all at :meth:`close`
  — shared memory cannot outlive the pool that shipped it.  A
  :mod:`weakref` finalizer backs the close path, so segments are
  unlinked even when a crash leaves the pool to the garbage collector;
* :meth:`run` may be called any number of times, from any thread
  (the underlying executors serialise dispatch internally), and a
  kernel exception leaves the pool usable — the failed call raises,
  the next call proceeds;
* **worker death does not poison the pool**: when a dispatch fails
  with an infrastructure error (a worker SIGKILLed mid-chunk surfaces
  as ``BrokenProcessPool``), :meth:`run` respawns the session and
  retries the whole call under a
  :class:`~repro.resilience.retry.RetryPolicy` — kernels are pure, so
  re-running every chunk of the failed call is correct.  Adopted shm
  segments need no re-sharing: workers attach lazily by *name*, so
  existing handles stay valid in the fresh workers.  After the retry
  budget is spent the pool degrades to running the kernels in-process
  (``degrade='serial'``) or raises
  :class:`~repro.exceptions.PoolBrokenError` (``degrade='error'``).
  Restarts and degraded calls are counted on
  ``repro_pool_restarts_total`` / ``repro_degraded_requests_total``;
* :meth:`close` is idempotent, and the module-level
  :func:`live_pool_count` lets leak tests assert that every pool
  opened in a block was torn down.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Any

import numpy as np

from repro.engine.backends import (
    WORKER_FAILURE_EXCEPTIONS,
    ExecutionBackend,
    Kernel,
)
from repro.engine.shared import SharedArray
from repro.exceptions import ConfigurationError, PoolBrokenError, ServerClosedError
from repro.resilience.faults import InjectedPoolFault, active_faults, faulted_kernel
from repro.resilience.retry import RetryPolicy

__all__ = ["PersistentPool", "live_pool_count"]

#: Degrade policies accepted by :class:`PersistentPool`.
DEGRADE_POLICIES = ("serial", "error")

#: Exceptions that mean the dispatch *infrastructure* failed (vs the
#: kernel raising): worker death from the backend, plus the chaos
#: suite's injected lost-result stand-in.
_POOL_FAILURES = WORKER_FAILURE_EXCEPTIONS + (InjectedPoolFault,)

_LIVE_LOCK = threading.Lock()
_LIVE_POOLS = 0


def _count_pool(delta: int) -> None:
    global _LIVE_POOLS
    with _LIVE_LOCK:
        _LIVE_POOLS += delta


def live_pool_count() -> int:
    """Pools currently open in this process (0 when nothing leaks)."""
    with _LIVE_LOCK:
        return _LIVE_POOLS


def _release_handles(handles: list) -> None:
    """Finalizer target: release whatever segments are still tracked.

    Module-level and fed the mutable handle *list* (never the pool, or
    the finalizer would keep it alive); runs at :meth:`close`, or from
    the GC if a pool is dropped without closing — either way every
    adopted segment is unlinked instead of leaking until interpreter
    exit.
    """
    for handle in handles:
        try:
            handle.release()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    handles.clear()


class PersistentPool:
    """A worker pool bound to one static payload, alive until closed.

    Parameters
    ----------
    backend:
        The :class:`~repro.engine.backends.ExecutionBackend` whose
        workers execute dispatched kernels.  Serial backends are legal
        (the "pool" then runs in-process), so callers need one code
        path.
    static:
        Bulky read-only state pinned for the pool's lifetime (workers
        see it via fork copy-on-write, a once-per-worker pickle under
        spawn, or directly in shared address spaces).  Kept by the pool
        so a respawned session — and the serial degrade path — can
        rebuild worker state.
    handles:
        Already-created :class:`~repro.engine.shared.SharedArray`
        segments whose lifetime this pool adopts: released at
        :meth:`close` (finalizer-backed), or immediately if opening
        the session fails (no session means no close would ever run).
    metrics:
        Where kernel-side metrics recorded in *process* workers merge
        after each dispatch: a :class:`~repro.obs.MetricsRegistry`,
        ``True`` for the caller's process-local default registry
        (resolved per dispatch), or ``None``/``False`` to skip the
        snapshot shipping entirely.  Serial and thread workers share
        the caller's address space, so their kernels always reach the
        default registry directly regardless of this setting.  Restart
        and degrade counters are recorded on the given registry when
        one is passed, else on the process default — worker death is
        never invisible.
    retry_policy:
        Backoff schedule for respawn-and-retry after an infrastructure
        failure (default: :class:`~repro.resilience.retry.RetryPolicy`
        defaults — 2 retries, 50 ms doubling to 2 s, 10 % jitter).
    degrade:
        What happens once retries are exhausted: ``'serial'`` (default)
        runs the failed call's kernels in-process and answers anyway;
        ``'error'`` raises :class:`~repro.exceptions.PoolBrokenError`.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        static: Any = None,
        handles: tuple[SharedArray, ...] = (),
        metrics: Any = None,
        retry_policy: RetryPolicy | None = None,
        degrade: str = "serial",
    ):
        if degrade not in DEGRADE_POLICIES:
            raise ConfigurationError(
                f"degrade must be one of {DEGRADE_POLICIES}, got {degrade!r}"
            )
        self.backend = backend
        self._static = static
        # note: an *empty* registry is falsy (len 0) but still a target
        self._metrics = None if metrics is None or metrics is False else metrics
        self._retry_policy = retry_policy or RetryPolicy()
        self._degrade_policy = degrade
        self._handles: list[SharedArray] = list(handles)
        self._handle_lock = threading.Lock()
        # The finalizer owns segment teardown: close() invokes it
        # explicitly, the GC invokes it if a crashed caller never does.
        # It must see the same list object share() appends to, which is
        # why the handle list is only ever mutated in place.
        self._finalizer = weakref.finalize(self, _release_handles, self._handles)
        try:
            self._session = backend.session(static)
        except BaseException:
            self._finalizer()
            raise
        self._closed = False
        self._close_lock = threading.Lock()
        self._generation = 0
        self._restart_lock = threading.Lock()
        registry = self._resilience_registry(create_default=False)
        if registry is not None:
            self._init_resilience_instruments(registry)
        _count_pool(+1)
        # A pool reclaimed by the GC without close() is no longer live:
        # the leak counter must drop either way.  weakref.finalize runs
        # at most once, so close() calling it too cannot double-count.
        self._count_finalizer = weakref.finalize(self, _count_pool, -1)

    # -- metrics ---------------------------------------------------------

    def _resilience_registry(self, create_default: bool = True):
        """Registry for restart/degrade counters (never ``None`` unless
        ``create_default=False`` and no concrete registry was given)."""
        if self._metrics is not None and self._metrics is not True:
            return self._metrics
        if not create_default:
            return None
        from repro.obs.registry import metrics as default_registry

        return default_registry()

    @staticmethod
    def _init_resilience_instruments(registry) -> None:
        """Eagerly register the fault families (stable scrape schema)."""
        registry.counter(
            "repro_pool_restarts_total",
            help="Worker-pool sessions respawned after an infrastructure "
            "failure.",
        )
        registry.counter(
            "repro_degraded_requests_total",
            help="Dispatches answered by the in-process serial fallback "
            "after the retry budget was exhausted.",
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def restarts(self) -> int:
        """Sessions respawned over this pool's lifetime."""
        return self._generation

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the workers and every tracked segment.

        Idempotent and safe to race: exactly one caller tears down.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._count_finalizer()
        try:
            self._session.close()
        finally:
            self._finalizer()

    def _check_open(self) -> None:
        if self._closed:
            raise ServerClosedError("this PersistentPool is closed")

    # -- transport -------------------------------------------------------

    def share(self, array: np.ndarray) -> SharedArray:
        """Ship ``array`` to this pool's workers (released at close).

        Uses the backend's transport: zero-copy wrapping for shared
        address spaces, a named shared-memory segment for process
        pools.  The handle may ride inside any later ``dynamic`` tuple
        — including after a respawn, because workers attach segments
        lazily by name.
        """
        self._check_open()
        handle = self.backend.share_array(array)
        with self._handle_lock:
            self._handles.append(handle)
        return handle

    # -- dispatch --------------------------------------------------------

    def run(self, fn: Kernel, tasks: list, dynamic: Any = None) -> list:
        """Apply ``fn(static, dynamic, task)`` to every task, in order.

        A kernel exception propagates to the caller but does not poison
        the pool: subsequent :meth:`run` calls work normally.  An
        *infrastructure* failure (worker death) is retried under the
        pool's :class:`~repro.resilience.retry.RetryPolicy` with a
        session respawn per attempt, then handled per the degrade
        policy — see the class docstring.
        """
        self._check_open()
        # Fault-injection wrapping (chaos tests): route every kernel
        # call through the armed plan's counter.  Production pays one
        # module-global read.
        if active_faults() is not None:
            run_fn: Kernel = faulted_kernel
            run_tasks: list = [(fn, task) for task in tasks]
        else:
            run_fn, run_tasks = fn, tasks
        schedule = self._retry_policy.schedule()
        attempt = 0
        while True:
            generation = self._generation
            try:
                return self._dispatch(run_fn, run_tasks, dynamic)
            except _POOL_FAILURES as exc:
                attempt += 1
                if attempt > self._retry_policy.max_retries:
                    return self._degrade(fn, tasks, dynamic, exc)
                self._respawn(generation)
                delay_s = next(schedule)
                if delay_s > 0:
                    time.sleep(delay_s)

    def _dispatch(self, fn: Kernel, tasks: list, dynamic: Any) -> list:
        """One raw session dispatch (plus worker metric merging)."""
        if self._metrics is None:
            return self._session.run(fn, tasks, dynamic)
        results, snapshots = self._session.run_metered(fn, tasks, dynamic)
        if snapshots:
            target = self._resilience_registry()
            for snapshot in snapshots:
                target.merge(snapshot)
        return results

    def _respawn(self, seen_generation: int) -> None:
        """Replace a broken session with a fresh one, exactly once.

        Concurrent threads that all watched the same session die race
        here; the generation check makes the first one rebuild and the
        rest reuse its work, so ``repro_pool_restarts_total`` counts
        actual respawns, not observers.
        """
        with self._restart_lock:
            if self._closed:
                raise ServerClosedError("this PersistentPool is closed")
            if self._generation != seen_generation:
                return  # another thread already respawned this session
            old_session = self._session
            try:
                self._session = self.backend.session(self._static)
            except BaseException as exc:
                raise PoolBrokenError(
                    f"respawning the {self.backend.name!r} worker pool "
                    f"failed: {exc}"
                ) from exc
            self._generation += 1
            self._resilience_registry().counter(
                "repro_pool_restarts_total"
            ).inc()
        try:
            old_session.close()
        except Exception:  # pragma: no cover - broken sessions may gripe
            pass

    def _degrade(
        self, fn: Kernel, tasks: list, dynamic: Any, cause: BaseException
    ) -> list:
        """Retry budget spent: answer in-process or raise, per policy.

        Runs the *unwrapped* kernel — the fault plan applies to pool
        dispatches, not the fallback — so an injected fault schedule
        can never SIGKILL the caller's own process from here.
        """
        if self._degrade_policy == "error":
            raise PoolBrokenError(
                f"the {self.backend.name!r} worker pool failed "
                f"{self._retry_policy.max_retries + 1} consecutive "
                f"dispatch attempts (last error: {cause}); degrade "
                "policy is 'error'"
            ) from cause
        self._resilience_registry().counter(
            "repro_degraded_requests_total"
        ).inc()
        return [fn(self._static, dynamic, task) for task in tasks]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"PersistentPool(backend={self.backend.name!r}, {state}, "
            f"restarts={self._generation})"
        )
