"""Persistent worker pools: one pool, many dispatches, explicit lifetime.

The engine's original contract tied a worker pool's lifetime to one fit
(:class:`~repro.engine.parallel.EngineFitSession`).  Serving breaks
that shape: a :class:`repro.serve.ModelServer` answers an unbounded
stream of predict batches and must keep its workers warm *across*
calls.  :class:`PersistentPool` is the lifetime-owning object both
sides now share:

* it opens exactly one :class:`~repro.engine.backends.BackendSession`
  over a backend (counted by ``backend.sessions_opened``, which is how
  the one-pool-per-fit and one-pool-per-server contracts are asserted
  in tests);
* it tracks every :class:`~repro.engine.shared.SharedArray` segment
  created through :meth:`share` and releases them all at :meth:`close`
  — shared memory cannot outlive the pool that shipped it;
* :meth:`run` may be called any number of times, from any thread
  (the underlying executors serialise dispatch internally), and a
  kernel exception leaves the pool usable — the failed call raises,
  the next call proceeds;
* :meth:`close` is idempotent, and the module-level
  :func:`live_pool_count` lets leak tests assert that every pool
  opened in a block was torn down.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.engine.backends import ExecutionBackend, Kernel
from repro.engine.shared import SharedArray
from repro.exceptions import ConfigurationError

__all__ = ["PersistentPool", "live_pool_count"]

_LIVE_LOCK = threading.Lock()
_LIVE_POOLS = 0


def _count_pool(delta: int) -> None:
    global _LIVE_POOLS
    with _LIVE_LOCK:
        _LIVE_POOLS += delta


def live_pool_count() -> int:
    """Pools currently open in this process (0 when nothing leaks)."""
    with _LIVE_LOCK:
        return _LIVE_POOLS


class PersistentPool:
    """A worker pool bound to one static payload, alive until closed.

    Parameters
    ----------
    backend:
        The :class:`~repro.engine.backends.ExecutionBackend` whose
        workers execute dispatched kernels.  Serial backends are legal
        (the "pool" then runs in-process), so callers need one code
        path.
    static:
        Bulky read-only state pinned for the pool's lifetime (workers
        see it via fork copy-on-write, a once-per-worker pickle under
        spawn, or directly in shared address spaces).
    handles:
        Already-created :class:`~repro.engine.shared.SharedArray`
        segments whose lifetime this pool adopts: released at
        :meth:`close`, or immediately if opening the session fails
        (no session means no close would ever run).
    metrics:
        Where kernel-side metrics recorded in *process* workers merge
        after each dispatch: a :class:`~repro.obs.MetricsRegistry`,
        ``True`` for the caller's process-local default registry
        (resolved per dispatch), or ``None``/``False`` to skip the
        snapshot shipping entirely.  Serial and thread workers share
        the caller's address space, so their kernels always reach the
        default registry directly regardless of this setting.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        static: Any = None,
        handles: tuple[SharedArray, ...] = (),
        metrics: Any = None,
    ):
        self.backend = backend
        # note: an *empty* registry is falsy (len 0) but still a target
        self._metrics = None if metrics is None or metrics is False else metrics
        self._handles: list[SharedArray] = list(handles)
        self._handle_lock = threading.Lock()
        try:
            self._session = backend.session(static)
        except BaseException:
            for handle in self._handles:
                handle.release()
            raise
        self._closed = False
        self._close_lock = threading.Lock()
        _count_pool(+1)

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the workers and every tracked segment.

        Idempotent and safe to race: exactly one caller tears down.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        _count_pool(-1)
        try:
            self._session.close()
        finally:
            with self._handle_lock:
                handles, self._handles = self._handles, []
            for handle in handles:
                handle.release()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("this PersistentPool is closed")

    # -- transport -------------------------------------------------------

    def share(self, array: np.ndarray) -> SharedArray:
        """Ship ``array`` to this pool's workers (released at close).

        Uses the backend's transport: zero-copy wrapping for shared
        address spaces, a named shared-memory segment for process
        pools.  The handle may ride inside any later ``dynamic`` tuple.
        """
        self._check_open()
        handle = self.backend.share_array(array)
        with self._handle_lock:
            self._handles.append(handle)
        return handle

    # -- dispatch --------------------------------------------------------

    def run(self, fn: Kernel, tasks: list, dynamic: Any = None) -> list:
        """Apply ``fn(static, dynamic, task)`` to every task, in order.

        A kernel exception propagates to the caller but does not poison
        the pool: subsequent :meth:`run` calls work normally.
        """
        self._check_open()
        if self._metrics is None:
            return self._session.run(fn, tasks, dynamic)
        results, snapshots = self._session.run_metered(fn, tasks, dynamic)
        if snapshots:
            if self._metrics is True:
                from repro.obs.registry import metrics as default_registry

                target = default_registry()
            else:
                target = self._metrics
            for snapshot in snapshots:
                target.merge(snapshot)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"PersistentPool(backend={self.backend.name!r}, {state})"
