"""Pluggable execution backends for the clustering engine.

Every parallel phase of the engine is phrased the same way: a
module-level *kernel* ``fn(static, dynamic, task)`` is mapped over a
list of small tasks (usually item spans), where

* ``static`` is bulky read-only state fixed for the lifetime of a
  :class:`BackendSession` (the item matrix and the model's kernels —
  the engine opens **one** session per fit and it serves every phase);
* ``dynamic`` is small per-call state (current centroids and labels);
* ``task`` is the unit of work (a ``(start, stop)`` span, a shard id).

Backends differ only in *where* the kernel runs:

``serial``
    In-process, one task at a time.  Zero overhead, and the engine
    additionally routes the assignment loop through the paper's exact
    online per-item pass (see :mod:`repro.engine.parallel`).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  The chunk
    kernels spend their time in numpy, which releases the GIL, so
    threads scale for the distance-dominated phases and share
    ``static`` for free.
``process``
    A :mod:`multiprocessing` pool.  Where the platform supports the
    ``fork`` start method (Linux), workers inherit ``static`` through
    copy-on-write memory and nothing bulky is ever pickled; under
    ``spawn`` the engine routes bulky arrays through
    :class:`~repro.engine.shared.SharedArray` shared-memory segments,
    so the once-per-worker initializer pickle stays small.  Only
    ``dynamic`` and the small partial results cross the pipe per call.

Kernels must be module-level functions and their arguments picklable so
the process backend can dispatch them; the serial and thread backends
impose no such restriction but the engine keeps the discipline anyway.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable

from repro.engine.shared import SharedArray, ensure_cleanup_tracker
from repro.exceptions import ConfigurationError

__all__ = [
    "BACKEND_NAMES",
    "WORKER_FAILURE_EXCEPTIONS",
    "BackendSession",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
]

#: Backend names accepted by ``backend=`` parameters, in the order the
#: documentation presents them.
BACKEND_NAMES = ("serial", "thread", "process")

#: Kernel signature every backend maps over tasks.
Kernel = Callable[[Any, Any, Any], Any]

#: Exceptions meaning "the *infrastructure* under a dispatch failed"
#: (a worker died, a result was lost) as opposed to the kernel raising.
#: :class:`repro.engine.pool.PersistentPool` retries these by
#: respawning its session; kernel exceptions propagate untouched.
#: :class:`~repro.resilience.faults.InjectedPoolFault` is appended at
#: pool level so the chaos suite exercises the same path.
WORKER_FAILURE_EXCEPTIONS: tuple[type[BaseException], ...] = (BrokenProcessPool,)


def default_n_jobs() -> int:
    """Worker count used when ``n_jobs`` is not given (one per CPU)."""
    return os.cpu_count() or 1


class BackendSession(abc.ABC):
    """A worker pool bound to one ``static`` payload.

    Sessions are context managers; the engine opens one per phase (or
    one for all iterations of the assignment loop) and issues any
    number of :meth:`run` calls inside it.
    """

    def __enter__(self) -> "BackendSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @abc.abstractmethod
    def run(self, fn: Kernel, tasks: list, dynamic: Any = None) -> list:
        """Apply ``fn(static, dynamic, task)`` to every task, in order."""

    def run_metered(
        self, fn: Kernel, tasks: list, dynamic: Any = None
    ) -> tuple[list, list[dict]]:
        """Like :meth:`run`, but also return worker metric snapshots.

        Same-address-space sessions (serial, thread) record kernel-side
        spans straight into the caller's process-local default registry
        (:func:`repro.obs.metrics`), so there is nothing to ship: the
        base implementation returns ``(results, [])``.  The process
        session overrides this to capture each kernel call's registry
        delta inside the worker and return one snapshot per task for
        the caller to :meth:`~repro.obs.MetricsRegistry.merge` — that
        is how process-pool worker time is attributed, not lost.
        """
        return self.run(fn, tasks, dynamic), []

    def close(self) -> None:
        """Release the session's workers (idempotent)."""


class ExecutionBackend(abc.ABC):
    """Strategy object deciding where engine kernels execute."""

    #: Identifier used in ``backend=`` parameters and run statistics.
    name: str = "abstract"

    def __init__(self, n_jobs: int | None = None):
        if n_jobs is not None and n_jobs <= 0:
            raise ConfigurationError(f"n_jobs must be positive, got {n_jobs}")
        self.n_jobs = int(n_jobs) if n_jobs is not None else default_n_jobs()
        #: Sessions opened over this backend's lifetime.  The engine's
        #: contract is *one* session per fit (pools are expensive); unit
        #: tests assert it through this counter.
        self.sessions_opened = 0

    @property
    def is_parallel(self) -> bool:
        """Whether this backend runs tasks outside the calling thread."""
        return self.name != "serial"

    @property
    def inherits_static(self) -> bool:
        """Whether workers see session ``static`` without any transport.

        True for same-address-space backends (serial, thread) and for
        ``fork`` process pools (copy-on-write); False when the static
        payload must be shipped (``spawn``), in which case the engine
        routes bulky arrays through :meth:`share_array` instead.
        """
        return True

    def share_array(self, array: Any) -> SharedArray:
        """Wrap a bulky read-only array for transport to this backend's
        workers (zero-copy here; shared memory for process pools)."""
        return SharedArray.wrap(array)

    def session(self, static: Any = None) -> BackendSession:
        """Open a worker session holding ``static`` read-only state."""
        self.sessions_opened += 1
        return self._open_session(static)

    @abc.abstractmethod
    def _open_session(self, static: Any) -> BackendSession:
        """Create the concrete session (workers spin up here)."""

    def run(
        self, fn: Kernel, tasks: list, static: Any = None, dynamic: Any = None
    ) -> list:
        """One-shot convenience: open a session, run, tear down."""
        with self.session(static) as session:
            return session.run(fn, tasks, dynamic)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


# ----------------------------------------------------------------------
# serial
# ----------------------------------------------------------------------


class _SerialSession(BackendSession):
    def __init__(self, static: Any):
        self._static = static

    def run(self, fn: Kernel, tasks: list, dynamic: Any = None) -> list:
        return [fn(self._static, dynamic, task) for task in tasks]


class SerialBackend(ExecutionBackend):
    """Run every task in the calling thread (the default)."""

    name = "serial"

    def __init__(self, n_jobs: int | None = None):
        super().__init__(1 if n_jobs is None else n_jobs)

    def _open_session(self, static: Any = None) -> BackendSession:
        return _SerialSession(static)


# ----------------------------------------------------------------------
# threads
# ----------------------------------------------------------------------


class _ThreadSession(BackendSession):
    def __init__(self, static: Any, n_jobs: int):
        self._static = static
        self._executor: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=n_jobs, thread_name_prefix="repro-engine"
        )

    def run(self, fn: Kernel, tasks: list, dynamic: Any = None) -> list:
        assert self._executor is not None, "session is closed"
        static = self._static
        return list(
            self._executor.map(lambda task: fn(static, dynamic, task), tasks)
        )

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ThreadBackend(ExecutionBackend):
    """Run tasks on a shared-memory thread pool."""

    name = "thread"

    def _open_session(self, static: Any = None) -> BackendSession:
        return _ThreadSession(static, self.n_jobs)


# ----------------------------------------------------------------------
# processes
# ----------------------------------------------------------------------

#: Per-worker slot for the session's static payload.  Set by
#: :func:`_init_process_worker` (from fork-inherited memory on Linux,
#: from a once-per-worker pickle elsewhere).
_PROCESS_STATIC: Any = None


def _init_process_worker(static: Any) -> None:
    global _PROCESS_STATIC
    _PROCESS_STATIC = static


def _invoke_in_process(call: tuple) -> Any:
    fn, dynamic, task = call
    return fn(_PROCESS_STATIC, dynamic, task)


def _invoke_in_process_metered(call: tuple) -> tuple[Any, dict]:
    """Run one kernel call and capture its metric delta.

    The capture swaps in a fresh default registry for exactly this
    call, so fork-inherited parent counters never leak into the
    snapshot — the returned dict is precisely what this kernel call
    recorded.  Worker processes run tasks one at a time, so the swap
    is race-free there.
    """
    from repro.obs.registry import capture_metrics

    fn, dynamic, task = call
    with capture_metrics() as captured:
        result = fn(_PROCESS_STATIC, dynamic, task)
    return result, captured.snapshot()


class _ProcessSession(BackendSession):
    def __init__(self, static: Any, n_jobs: int, start_method: str | None = None):
        # fork keeps ``static`` out of the pickle pipe entirely
        # (copy-on-write); under spawn the initializer ships it once per
        # worker — the engine routes bulky arrays through shared memory
        # so only small objects ever cross that pickle.  Workers must
        # inherit the parent's (not their own) resource tracker for the
        # shared-memory bookkeeping to balance.
        #
        # ProcessPoolExecutor rather than multiprocessing.Pool: when a
        # worker dies abruptly (SIGKILL, OOM), the executor *raises*
        # BrokenProcessPool on the pending map instead of hanging the
        # dispatch forever — which is what lets PersistentPool detect
        # worker death and respawn.  A kernel exception still
        # propagates per-task without breaking the executor.
        ensure_cleanup_tracker()
        context = multiprocessing.get_context(start_method)
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=n_jobs,
            mp_context=context,
            initializer=_init_process_worker,
            initargs=(static,),
        )

    def run(self, fn: Kernel, tasks: list, dynamic: Any = None) -> list:
        assert self._executor is not None, "session is closed"
        return list(
            self._executor.map(
                _invoke_in_process, [(fn, dynamic, task) for task in tasks]
            )
        )

    def run_metered(
        self, fn: Kernel, tasks: list, dynamic: Any = None
    ) -> tuple[list, list[dict]]:
        assert self._executor is not None, "session is closed"
        pairs = list(
            self._executor.map(
                _invoke_in_process_metered,
                [(fn, dynamic, task) for task in tasks],
            )
        )
        return [result for result, _ in pairs], [snap for _, snap in pairs]

    def close(self) -> None:
        if self._executor is not None:
            # A broken executor's workers are already dead; shutdown
            # then just reaps bookkeeping and returns promptly.
            self._executor.shutdown(wait=True)
            self._executor = None


class ProcessBackend(ExecutionBackend):
    """Run tasks on a pool of worker processes.

    Parameters
    ----------
    n_jobs:
        Worker count (default: one per CPU).
    start_method:
        Multiprocessing start method.  Defaults to ``'fork'`` where the
        platform supports it (workers inherit session state through
        copy-on-write) and the platform default elsewhere; pass
        ``'spawn'`` explicitly to exercise the shared-memory transport
        on any platform.
    """

    name = "process"

    def __init__(self, n_jobs: int | None = None, start_method: str | None = None):
        super().__init__(n_jobs)
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else available[0]
        elif start_method not in available:
            raise ConfigurationError(
                f"start_method must be one of {available}, got {start_method!r}"
            )
        self.start_method = start_method

    @property
    def inherits_static(self) -> bool:
        return self.start_method == "fork"

    def share_array(self, array: Any) -> SharedArray:
        # Process workers live in other address spaces: hand arrays over
        # through shared memory so they never ride the task pickles.
        return SharedArray.via_shm(array)

    def _open_session(self, static: Any = None) -> BackendSession:
        return _ProcessSession(static, self.n_jobs, self.start_method)


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------

_BACKEND_CLASSES: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def resolve_backend(
    backend: str | ExecutionBackend, n_jobs: int | None = None
) -> ExecutionBackend:
    """Turn a ``backend=`` argument into an :class:`ExecutionBackend`.

    Parameters
    ----------
    backend:
        A backend name from :data:`BACKEND_NAMES` or an already
        constructed backend (returned unchanged; ``n_jobs`` must then
        be ``None``).
    n_jobs:
        Worker count for named backends; defaults to one worker per
        CPU for the parallel backends and is fixed at 1 for serial.
    """
    if isinstance(backend, ExecutionBackend):
        if n_jobs is not None and n_jobs != backend.n_jobs:
            raise ConfigurationError(
                f"n_jobs={n_jobs} conflicts with the provided backend's "
                f"n_jobs={backend.n_jobs}; configure one or the other"
            )
        return backend
    cls = _BACKEND_CLASSES.get(backend)
    if cls is None:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {BACKEND_NAMES}"
        )
    return cls(n_jobs)
