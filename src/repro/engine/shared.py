"""Zero-copy array transport between the engine and its workers.

Parallel phases need bulky read-only arrays — the item matrix, band
keys, the flattened neighbour CSR — visible to every worker without
re-pickling them per task.  :class:`SharedArray` is the one handle the
engine passes around, with two modes:

* **wrapped** — holds the array directly.  Free for the serial and
  thread backends (same address space) and for ``fork`` process pools
  opened *after* the array exists (copy-on-write).
* **shm-backed** — the owning process copies the array once into a
  named :mod:`multiprocessing.shared_memory` segment.  Pickled handles
  carry only ``(name, shape, dtype)`` — a few hundred bytes — and
  workers attach lazily on first :meth:`SharedArray.get`, cached per
  process, so a handle can ride inside every task's ``dynamic`` tuple
  for the cost of its descriptor.  This is how state created *after* a
  fit-lifetime pool opened (band keys, neighbour CSR) reaches process
  workers, and how ``spawn`` pools receive the item matrix itself.

The owner must call :meth:`SharedArray.release` when the fit session
closes; workers keep their attachments for the life of the process
(the mapping stays valid after an unlink on POSIX).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover - extremely stripped builds
    _shm_module = None

__all__ = [
    "SharedArray",
    "ensure_cleanup_tracker",
    "live_segment_count",
    "resolve_array",
]

#: Names of shm segments created (and not yet released) by this
#: process.  Leak tests assert this returns to its baseline after every
#: pool teardown — including the worker-crash/respawn paths, where the
#: pool's finalizer rather than a clean ``close()`` does the release.
_LIVE_SEGMENTS: set[str] = set()
_LIVE_SEGMENTS_LOCK = threading.Lock()


def live_segment_count() -> int:
    """Owner-created shm segments not yet released (0 when nothing leaks)."""
    with _LIVE_SEGMENTS_LOCK:
        return len(_LIVE_SEGMENTS)

#: Per-process cache of attached segments: shm name -> (segment, array).
#: Attaching costs an shm_open + mmap, so each worker pays it once per
#: segment no matter how many task dispatches reference it.
_ATTACHED: dict[str, tuple[Any, np.ndarray]] = {}


def ensure_cleanup_tracker() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    Called before a worker pool is created: workers then inherit the
    parent's tracker, so their attach-time registrations (Python ≤ 3.12
    registers unconditionally) land in the same cache the owner's
    unlink clears — one tracker, balanced bookkeeping, no spurious
    "leaked shared_memory" warnings from per-worker trackers.
    """
    try:  # pragma: no cover - defensive around a semi-private API
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass


def _attach_segment(name: str) -> Any:
    """Attach to an existing segment without adopting its cleanup.

    Only the creating process may unlink a segment; on Pythons whose
    :class:`~multiprocessing.shared_memory.SharedMemory` supports the
    ``track`` flag (3.13+) attaching would otherwise enrol the segment
    with the resource tracker and double-unlink it at exit.
    """
    try:
        return _shm_module.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 (attach never tracks)
        return _shm_module.SharedMemory(name=name)


class SharedArray:
    """Picklable handle to a read-only ndarray (see module docstring).

    Build with :meth:`wrap` (direct reference) or :meth:`via_shm`
    (copy into shared memory); read with :meth:`get`; the creating
    side releases shm segments with :meth:`release`.
    """

    __slots__ = ("_array", "_shm", "_name", "_shape", "_dtype")

    def __init__(self) -> None:
        self._array: np.ndarray | None = None
        self._shm: Any = None
        self._name: str | None = None
        self._shape: tuple[int, ...] | None = None
        self._dtype: np.dtype | None = None

    @classmethod
    def wrap(cls, array: np.ndarray) -> "SharedArray":
        """Reference ``array`` directly (shared address space / fork COW)."""
        handle = cls()
        handle._array = np.asarray(array)
        return handle

    @classmethod
    def via_shm(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a named shared-memory segment.

        Falls back to :meth:`wrap` (pickled transport) when shared
        memory is unavailable, so callers never need a second code
        path — only a slower one on exotic platforms.
        """
        array = np.ascontiguousarray(array)
        if _shm_module is None:
            return cls.wrap(array)
        try:
            segment = _shm_module.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
        except (OSError, ValueError):
            return cls.wrap(array)
        view: np.ndarray = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf
        )
        view[...] = array
        handle = cls()
        handle._array = view
        handle._shm = segment
        handle._name = segment.name
        handle._shape = array.shape
        handle._dtype = array.dtype
        with _LIVE_SEGMENTS_LOCK:
            _LIVE_SEGMENTS.add(segment.name)
        return handle

    @property
    def is_shm(self) -> bool:
        """Whether the handle travels as an shm descriptor."""
        return self._name is not None

    def get(self) -> np.ndarray:
        """The referenced array (attaching and caching on first use)."""
        if self._array is not None:
            return self._array
        assert self._name is not None and _shm_module is not None
        cached = _ATTACHED.get(self._name)
        if cached is None:
            segment = _attach_segment(self._name)
            array: np.ndarray = np.ndarray(
                self._shape, dtype=self._dtype, buffer=segment.buf
            )
            cached = (segment, array)
            _ATTACHED[self._name] = cached
        self._array = cached[1]
        return self._array

    def release(self) -> None:
        """Owner-side cleanup: unlink the segment (no-op when wrapped)."""
        if self._shm is None:
            return
        self._array = None
        segment, self._shm = self._shm, None
        with _LIVE_SEGMENTS_LOCK:
            _LIVE_SEGMENTS.discard(segment.name)
        try:
            segment.close()
            segment.unlink()
        except (BufferError, FileNotFoundError):  # pragma: no cover
            pass

    # -- pickling: descriptors only for shm-backed handles --------------

    def __getstate__(self) -> dict:
        if self._name is not None:
            return {"name": self._name, "shape": self._shape, "dtype": self._dtype}
        return {"array": self._array}

    def __setstate__(self, state: dict) -> None:
        self._array = state.get("array")
        self._shm = None
        self._name = state.get("name")
        self._shape = state.get("shape")
        self._dtype = state.get("dtype")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = f"shm={self._name!r}" if self.is_shm else "wrapped"
        return f"SharedArray({mode})"


def resolve_array(ref: "SharedArray | np.ndarray") -> np.ndarray:
    """Materialise a kernel argument that may be a :class:`SharedArray`."""
    if isinstance(ref, SharedArray):
        return ref.get()
    return np.asarray(ref)
