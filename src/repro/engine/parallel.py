"""The clustering engine: every fit phase, chunked over one seam.

:class:`ClusteringEngine` is the object
:class:`~repro.core.framework.BaseLSHAcceleratedClustering` delegates
its phases to.  Each phase is a map of a module-level kernel over
contiguous item spans:

* **exhaustive assignment** (setup) — row chunks through the model's
  own ``_exhaustive_assign`` kernel, merged by concatenation;
* **signatures** — row chunks through ``_signatures`` after the model
  has frozen any data-dependent encoding state (``_prepare_signatures``);
* **index build** — delegated to
  :class:`~repro.engine.sharded_index.ShardedClusteredLSHIndex`, one
  task per shard;
* **assignment pass** — the per-iteration hot loop.

Semantics: the serial backend runs the paper's exact *online* per-item
pass (``update_refs='online'`` reassignments are visible to later items
in the same pass).  Parallel backends run **batch** passes: every chunk
scores its items against the labels frozen at the start of the pass,
and move counts, shortlist statistics and cluster references merge at a
per-pass barrier.  A batch pass partitions into chunks without changing
any per-item decision, so labels are identical for any chunking, any
shard count, and any backend — the backend-equivalence tests assert
exactly this.

The parallel pass is also *vectorised*: per chunk, the ragged
shortlists are built with one segmented ``np.unique`` over
``item * k + label`` keys, padded into a dense block, and scored with
the model's ``_block_distances`` kernel instead of one tiny distance
call per item.  Tie-breaking replicates the serial rule (keep the
current cluster whenever it is at least as close as the best
candidate; first minimum wins among the sorted shortlist).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.engine.backends import ExecutionBackend, resolve_backend
from repro.engine.chunking import chunk_ranges, iter_blocks
from repro.engine.sharded_index import ShardedClusteredLSHIndex
from repro.exceptions import ConfigurationError
from repro.lsh.index import ClusteredLSHIndex

__all__ = ["ClusteringEngine", "resolve_engine"]

#: Rough element budget for one padded ``(rows, smax, m)`` distance
#: tensor inside a chunk worker; blocks are sliced to stay under it.
_BLOCK_ELEMENT_BUDGET = 4_000_000

#: Items handled per vectorised sub-block before memory capping.
_BLOCK_ITEMS = 1024

AnyIndex = ClusteredLSHIndex | ShardedClusteredLSHIndex


# ----------------------------------------------------------------------
# kernels (module-level so the process backend can dispatch them)
# ----------------------------------------------------------------------


def _exhaustive_chunk(
    static: tuple, dynamic: tuple, span: tuple[int, int]
) -> np.ndarray:
    """Exhaustively assign one row span (labels chunk only)."""
    model, X = static
    (centroids, labels) = dynamic
    start, stop = span
    chunk_labels, _ = model._exhaustive_assign(
        X[start:stop], centroids, labels[start:stop]
    )
    return chunk_labels


def _signature_chunk(static: tuple, dynamic: None, span: tuple[int, int]) -> np.ndarray:
    """Signatures of one row span (encoding state already frozen)."""
    model, X = static
    start, stop = span
    return model._signatures(X[start:stop])


def _assignment_chunk(
    static: tuple, dynamic: tuple, span: tuple[int, int]
) -> tuple[np.ndarray, int, int, int]:
    """One chunk of a batch assignment pass.

    Returns ``(new_labels_chunk, moves, shortlist_total, shortlist_max)``;
    the session merges chunks in task order.
    """
    model, X, indptr, indices = static
    centroids, labels = dynamic
    start, stop = span
    k = int(model.n_clusters)
    m = X.shape[1]
    out = np.empty(stop - start, dtype=np.int64)
    moves = 0
    shortlist_total = 0
    shortlist_max = 0
    for lo, hi in iter_blocks(start, stop, _BLOCK_ITEMS):
        count = hi - lo
        # --- segmented shortlist build: one np.unique over the whole
        # block.  Keys ``local_item * k + label`` sort by item first,
        # then ascending label, reproducing per-item np.unique exactly.
        flat = indices[indptr[lo] : indptr[hi]]
        lengths = indptr[lo + 1 : hi + 1] - indptr[lo:hi]
        local = np.repeat(np.arange(count, dtype=np.int64), lengths)
        uniq = np.unique(local * k + labels[flat])
        u_item = uniq // k
        u_label = uniq - u_item * k
        sizes = np.bincount(u_item, minlength=count)
        smax = int(sizes.max())
        offsets = np.concatenate([[0], np.cumsum(sizes[:-1])])
        positions = np.arange(len(uniq)) - offsets[u_item]
        padded = np.zeros((count, smax), dtype=np.int64)
        valid = np.zeros((count, smax), dtype=bool)
        padded[u_item, positions] = u_label
        valid[u_item, positions] = True

        block = X[lo:hi]
        current = labels[lo:hi]
        current_distance = model._block_distances(
            block, centroids[current[:, None]]
        )[:, 0]
        best_label = np.empty(count, dtype=np.int64)
        best_distance = np.empty(count, dtype=np.float64)
        rows_at_once = max(1, min(count, _BLOCK_ELEMENT_BUDGET // max(1, smax * m)))
        for r0, r1 in iter_blocks(0, count, rows_at_once):
            distances = np.asarray(
                model._block_distances(block[r0:r1], centroids[padded[r0:r1]]),
                dtype=np.float64,
            )
            distances[~valid[r0:r1]] = np.inf
            rows = np.arange(r1 - r0)
            best_pos = np.argmin(distances, axis=1)
            best_distance[r0:r1] = distances[rows, best_pos]
            best_label[r0:r1] = padded[r0:r1][rows, best_pos]
        keep = current_distance <= best_distance
        out[lo - start : hi - start] = np.where(keep, current, best_label)
        moves += int(np.count_nonzero(~keep))
        shortlist_total += int(sizes.sum())
        shortlist_max = max(shortlist_max, smax)
    return out, moves, shortlist_total, shortlist_max


# ----------------------------------------------------------------------
# assignment sessions
# ----------------------------------------------------------------------


class _SerialAssignmentSession:
    """Runs the paper's per-item pass (online or batch) unchanged."""

    def __init__(self, model, X: np.ndarray, index: AnyIndex):
        self._model = model
        self._X = X
        self._index = index

    def run_pass(self, centroids, labels, accumulator):
        return self._model._shortlist_pass(
            self._X, centroids, labels, self._index, accumulator
        )


class _ParallelAssignmentSession:
    """Chunked batch passes over a live backend session.

    The per-item neighbour lists are flattened once into a CSR pair at
    session open (they are static — buckets never change after build),
    so the per-pass work inside workers is pure array slicing.
    """

    def __init__(self, model, X, index: AnyIndex, backend: ExecutionBackend):
        self._index = index
        self._n = X.shape[0]
        self._n_tasks = backend.n_jobs
        indptr, indices = _neighbour_csr(index, self._n)
        self._session = backend.session((model, X, indptr, indices))

    def run_pass(self, centroids, labels, accumulator):
        spans = chunk_ranges(self._n, self._n_tasks)
        results = self._session.run(
            _assignment_chunk, spans, dynamic=(centroids, labels)
        )
        new_labels = np.concatenate([chunk for chunk, _, _, _ in results])
        moves = sum(chunk_moves for _, chunk_moves, _, _ in results)
        accumulator.add_many(
            sum(total for _, _, total, _ in results),
            self._n,
            max(chunk_max for _, _, _, chunk_max in results),
        )
        self._index.set_assignments(new_labels)
        return new_labels, moves

    def close(self) -> None:
        self._session.close()


def _neighbour_csr(index: AnyIndex, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-item neighbour lists into ``(indptr, indices)``."""
    groups = index.neighbour_groups()
    if groups is not None:
        group_of, group_neighbours = groups
        per_item = [group_neighbours[g] for g in group_of]
    else:
        per_item = [index.candidate_items(i) for i in range(n)]
    lengths = np.fromiter((len(nb) for nb in per_item), dtype=np.int64, count=n)
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    indices = np.concatenate(per_item) if n else np.empty(0, dtype=np.int64)
    return indptr, indices


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class ClusteringEngine:
    """Executes the phases of one fit on a chosen backend.

    Parameters
    ----------
    backend:
        Where kernels run; see :mod:`repro.engine.backends`.
    n_shards:
        Shard count for the index.  ``None`` means one shard per
        worker for parallel backends and an unsharded
        :class:`~repro.lsh.index.ClusteredLSHIndex` for serial.
    """

    def __init__(self, backend: ExecutionBackend, n_shards: int | None = None):
        if n_shards is not None and n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        self.backend = backend
        self.n_shards = n_shards

    @property
    def is_parallel(self) -> bool:
        return self.backend.is_parallel

    def resolved_shards(self) -> int:
        if self.n_shards is not None:
            return self.n_shards
        return self.backend.n_jobs if self.is_parallel else 1

    # -- setup phases ---------------------------------------------------

    def exhaustive_assign(
        self, model, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """The one-off exact pass, chunked by rows on parallel backends."""
        if not self.is_parallel:
            return model._exhaustive_assign(X, centroids, labels)
        spans = chunk_ranges(X.shape[0], self.backend.n_jobs)
        chunks = self.backend.run(
            _exhaustive_chunk,
            spans,
            static=(model, X),
            dynamic=(centroids, labels),
        )
        new_labels = np.concatenate(chunks)
        moves = int(np.count_nonzero(new_labels != labels))
        return new_labels, moves

    def compute_signatures(self, model, X: np.ndarray) -> np.ndarray:
        """Hash every item once, chunked by rows on parallel backends."""
        if not self.is_parallel:
            return model._signatures(X)
        # Freeze data-dependent encoding state (e.g. the inferred token
        # domain) on the FULL matrix before any chunk is hashed, so a
        # chunk's local maximum can never change the encoding.
        model._prepare_signatures(X)
        spans = chunk_ranges(X.shape[0], self.backend.n_jobs)
        chunks = self.backend.run(_signature_chunk, spans, static=(model, X))
        return np.concatenate(chunks)

    def build_index(
        self, model, signatures: np.ndarray, labels: np.ndarray
    ) -> AnyIndex:
        """Build the clustered index (sharded when shards > 1)."""
        shards = self.resolved_shards()
        if shards == 1 and not self.is_parallel:
            index = ClusteredLSHIndex(
                model.bands,
                model.rows,
                precompute_neighbours=model.precompute_neighbours,
            )
            index.build(signatures, labels)
            return index
        sharded = ShardedClusteredLSHIndex(
            model.bands,
            model.rows,
            n_shards=shards,
            precompute_neighbours=model.precompute_neighbours,
        )
        sharded.build(signatures, labels, backend=self.backend)
        return sharded

    def index_from_band_keys(
        self, model, band_keys: np.ndarray, assignments: np.ndarray
    ) -> AnyIndex:
        """Rebuild the fitted index from persisted band keys."""
        shards = self.resolved_shards()
        if shards == 1 and not self.is_parallel:
            return ClusteredLSHIndex.from_band_keys(
                model.bands,
                model.rows,
                band_keys,
                assignments,
                precompute_neighbours=model.precompute_neighbours,
            )
        return ShardedClusteredLSHIndex.from_band_keys(
            model.bands,
            model.rows,
            band_keys,
            assignments,
            n_shards=shards,
            precompute_neighbours=model.precompute_neighbours,
            backend=self.backend,
        )

    # -- iteration phase ------------------------------------------------

    @contextmanager
    def assignment_session(
        self, model, X: np.ndarray, index: AnyIndex
    ) -> Iterator[Any]:
        """Session object whose ``run_pass`` executes one assignment pass."""
        if not self.is_parallel:
            yield _SerialAssignmentSession(model, X, index)
            return
        session = _ParallelAssignmentSession(model, X, index, self.backend)
        try:
            yield session
        finally:
            session.close()


def resolve_engine(
    backend: str | ExecutionBackend,
    n_jobs: int | None = None,
    n_shards: int | None = None,
) -> ClusteringEngine:
    """Build a :class:`ClusteringEngine` from estimator parameters."""
    return ClusteringEngine(resolve_backend(backend, n_jobs), n_shards=n_shards)
