"""The clustering engine: every fit phase, one worker session.

:class:`ClusteringEngine` is the object
:class:`~repro.core.framework.BaseLSHAcceleratedClustering` delegates
its phases to.  A fit opens **one** :class:`EngineFitSession` (and,
on parallel backends, exactly one worker pool) that lives from the
exhaustive setup pass to the last iteration:

* **exhaustive assignment** (setup) — row chunks through the model's
  own ``_exhaustive_assign`` kernel, merged by concatenation;
* **signatures** — row chunks through ``_signatures`` after the model
  has frozen any data-dependent encoding state (``_prepare_signatures``
  runs at session open, *before* process workers snapshot the model);
* **index build** — one bucket-run task per shard, assembled into a
  :class:`~repro.engine.sharded_index.ShardedClusteredLSHIndex`;
* **assignment passes** — the per-iteration hot loop.

Bulky state crosses into workers exactly once.  The item matrix rides
the session's static payload (copy-on-write under ``fork``, a
:mod:`multiprocessing.shared_memory` segment under ``spawn``); state
created *after* the pool opened — band keys, the flattened neighbour
CSR — always travels as shared-memory handles inside the small
per-task ``dynamic`` tuples (see :mod:`repro.engine.shared`).

Semantics: with ``update_refs='online'`` the serial backend runs the
paper's exact per-item pass (reassignments visible to later items in
the same pass).  With ``update_refs='batch'`` **every** backend —
serial included — runs the vectorised batch pass: per chunk, the
ragged shortlists are built with one segmented ``np.unique`` over
``group * k + label`` keys off the index's group-level neighbour CSR
(items with identical band keys share one neighbour list *and* one
shortlist), padded into a dense block, and scored with the model's
``_block_distances`` kernel.  Tie-breaking replicates the per-item rule (keep the current
cluster whenever it is at least as close as the best candidate; first
minimum wins among the sorted shortlist), so a batch pass partitions
into chunks without changing any per-item decision — labels are
identical for any chunking, any shard count, and any backend, which
the backend-equivalence tests assert exactly.
"""

from __future__ import annotations

import numpy as np

from repro.engine.backends import ExecutionBackend, resolve_backend
from repro.engine.chunking import chunk_ranges, iter_blocks
from repro.engine.pool import PersistentPool
from repro.engine.shared import SharedArray, resolve_array
from repro.engine.sharded_index import ShardedClusteredLSHIndex, _build_shard_tables
from repro.exceptions import ConfigurationError
from repro.lsh.bands import compute_band_keys
from repro.obs import span as trace_span
from repro.obs import traced
from repro.lsh.index import ClusteredLSHIndex

__all__ = ["ClusteringEngine", "backend_from_spec", "resolve_engine"]

#: Rough element budget for one padded ``(rows, smax, m)`` distance
#: tensor inside a chunk worker; blocks are sliced to stay under it.
_BLOCK_ELEMENT_BUDGET = 4_000_000

#: Items handled per vectorised sub-block before memory capping.
_BLOCK_ITEMS = 1024

AnyIndex = ClusteredLSHIndex | ShardedClusteredLSHIndex


# ----------------------------------------------------------------------
# kernels (module-level so the process backend can dispatch them)
# ----------------------------------------------------------------------


@traced("fit.exhaustive_chunk")
def _exhaustive_chunk(
    static: tuple, dynamic: tuple, span: tuple[int, int]
) -> np.ndarray:
    """Exhaustively assign one row span (labels chunk only)."""
    model, x_ref = static
    X = resolve_array(x_ref)
    (centroids, labels) = dynamic
    start, stop = span
    chunk_labels, _ = model._exhaustive_assign(
        X[start:stop], centroids, labels[start:stop]
    )
    return chunk_labels


@traced("fit.signature_chunk")
def _signature_chunk(static: tuple, dynamic: None, span: tuple[int, int]) -> np.ndarray:
    """Signatures of one row span (encoding state already frozen)."""
    model, x_ref = static
    X = resolve_array(x_ref)
    start, stop = span
    return model._signatures(X[start:stop])


def best_shortlisted_centroids(
    model,
    block: np.ndarray,
    candidates: np.ndarray,
    sizes: np.ndarray,
    centroids: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """First-minimum centroid per row over ragged candidate lists.

    ``candidates`` concatenates each row's (non-empty, sorted) centroid
    shortlist; ``sizes`` holds the per-row lengths.  The ragged lists
    are padded into dense per-block ``(rows, smax)`` tiles, scored with
    the model's vectorised ``_block_distances`` kernel in memory-capped
    row slices, and reduced with a masked argmin.  Because every
    shortlist is sorted, the first minimum is the smallest-id centroid
    among the ties — exactly what a per-row ``np.argmin`` over the same
    shortlist would pick.

    When the size distribution is skewed (a few huge shortlists among
    many tiny ones — typical for novel items hitting the predict
    fallback neighbourhoods), rows are processed in size-sorted order
    so each tile pads only to *its own* maximum, instead of every row
    paying for the global one.  Results are per-row and therefore
    identical under any processing order.

    Returns ``(best_label, best_distance)`` per row.
    """
    count, m = block.shape
    smax = int(sizes.max())
    offsets = np.zeros(count, dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])

    # Size-sort only when padding to the global smax would inflate the
    # scored elements noticeably; unskewed inputs keep row order (and
    # the argsort off the hot per-iteration pass).
    skewed = smax * count >= 2 * len(candidates)
    order = np.argsort(sizes, kind="stable") if skewed else None

    best_label = np.empty(count, dtype=np.int64)
    best_distance = np.empty(count, dtype=np.float64)
    for c0, c1 in iter_blocks(0, count, _BLOCK_ITEMS):
        chunk_sel = order[c0:c1] if skewed else slice(c0, c1)
        chunk_smax = int(sizes[chunk_sel].max())
        rows_at_once = max(1, _BLOCK_ELEMENT_BUDGET // max(1, chunk_smax * m))
        for r0, r1 in iter_blocks(c0, c1, rows_at_once):
            rows_sel = order[r0:r1] if skewed else slice(r0, r1)
            take = r1 - r0
            tile_sizes = sizes[rows_sel]
            tile_smax = int(tile_sizes.max())
            flat = int(tile_sizes.sum())
            row_ids = np.repeat(np.arange(take, dtype=np.int64), tile_sizes)
            starts = np.zeros(take, dtype=np.int64)
            np.cumsum(tile_sizes[:-1], out=starts[1:])
            positions = np.arange(flat, dtype=np.int64) - np.repeat(
                starts, tile_sizes
            )
            flat_idx = np.repeat(offsets[rows_sel], tile_sizes) + positions
            padded = np.zeros((take, tile_smax), dtype=np.int64)
            valid = np.zeros((take, tile_smax), dtype=bool)
            padded[row_ids, positions] = candidates[flat_idx]
            valid[row_ids, positions] = True

            distances = np.asarray(
                model._block_distances(block[rows_sel], centroids[padded]),
                dtype=np.float64,
            )
            distances[~valid] = np.inf
            rows = np.arange(take)
            best_pos = np.argmin(distances, axis=1)
            best_distance[rows_sel] = distances[rows, best_pos]
            best_label[rows_sel] = padded[rows, best_pos]
    return best_label, best_distance


@traced("fit.assignment_chunk")
def _assignment_chunk(
    static: tuple, dynamic: tuple, span: tuple[int, int]
) -> tuple[np.ndarray, int, int, int]:
    """One chunk of a batch assignment pass.

    Returns ``(new_labels_chunk, moves, shortlist_total, shortlist_max)``;
    the session merges chunks in task order.
    """
    model, x_ref = static
    X = resolve_array(x_ref)
    centroids, labels, (group_of_ref, indptr_ref, indices_ref) = dynamic
    group_of = resolve_array(group_of_ref)
    group_indptr = resolve_array(indptr_ref)
    group_indices = resolve_array(indices_ref)
    start, stop = span
    k = int(model.n_clusters)

    # --- group shortlists, once per chunk.  Items with identical
    # band-key rows share one neighbour list, and labels are frozen for
    # the whole pass, so their shortlists are identical too: the
    # segmented ``np.unique`` runs over the chunk's *distinct* groups.
    # Keys ``group * k + label`` sort by group first, then ascending
    # label, reproducing each item's per-item np.unique exactly — and
    # duplicate-heavy data (many identical rows, one giant group) costs
    # O(one neighbour list), not O(items × list).
    span_groups = group_of[start:stop]
    chunk_groups, local_group = np.unique(span_groups, return_inverse=True)
    lengths = group_indptr[chunk_groups + 1] - group_indptr[chunk_groups]
    total = int(lengths.sum())
    flat_starts = np.zeros(len(chunk_groups), dtype=np.int64)
    np.cumsum(lengths[:-1], out=flat_starts[1:])
    bases = np.repeat(group_indptr[chunk_groups], lengths)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(flat_starts, lengths)
    members = group_indices[bases + offsets]
    owner = np.repeat(np.arange(len(chunk_groups), dtype=np.int64), lengths)
    uniq = np.unique(owner * k + labels[members])
    u_owner = uniq // k
    u_label = uniq - u_owner * k
    group_sizes = np.bincount(u_owner, minlength=len(chunk_groups))
    group_starts = np.zeros(len(chunk_groups), dtype=np.int64)
    np.cumsum(group_sizes[:-1], out=group_starts[1:])

    out = np.empty(stop - start, dtype=np.int64)
    moves = 0
    shortlist_total = 0
    shortlist_max = 0
    for lo, hi in iter_blocks(start, stop, _BLOCK_ITEMS):
        block_groups = local_group[lo - start : hi - start]
        sizes = group_sizes[block_groups]
        # gather every item's (sorted) shortlist from its group's run
        flat = int(sizes.sum())
        row_starts = np.zeros(hi - lo, dtype=np.int64)
        np.cumsum(sizes[:-1], out=row_starts[1:])
        candidate_offsets = (
            np.arange(flat, dtype=np.int64) - np.repeat(row_starts, sizes)
        )
        candidates = u_label[
            np.repeat(group_starts[block_groups], sizes) + candidate_offsets
        ]

        block = X[lo:hi]
        current = labels[lo:hi]
        current_distance = model._block_distances(
            block, centroids[current[:, None]]
        )[:, 0]
        best_label, best_distance = best_shortlisted_centroids(
            model, block, candidates, sizes, centroids
        )
        keep = current_distance <= best_distance
        out[lo - start : hi - start] = np.where(keep, current, best_label)
        moves += int(np.count_nonzero(~keep))
        shortlist_total += int(sizes.sum())
        shortlist_max = max(shortlist_max, int(sizes.max()))
    return out, moves, shortlist_total, shortlist_max


# ----------------------------------------------------------------------
# neighbour CSR expansion
# ----------------------------------------------------------------------


def _pass_neighbour_csr(
    index: AnyIndex, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ``(group_of, indptr, indices)`` CSR the batch kernels walk.

    Precomputed neighbours come straight from the index's group-level
    storage (:meth:`~repro.lsh.index.BaseClusteredIndex.neighbour_csr`)
    — zero copies, and the grouping's O(n) guarantee on
    duplicate-heavy data carries into the batch pass.  Without
    precomputation the lists are materialised once per fit with
    identity groups.
    """
    csr = index.neighbour_csr() if index.precompute_neighbours else None
    if csr is not None:
        return csr
    per_item = [index.candidate_items(i) for i in range(n)]
    lengths = np.fromiter((len(nb) for nb in per_item), dtype=np.int64, count=n)
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    indices = np.concatenate(per_item) if n else np.empty(0, dtype=np.int64)
    return np.arange(n, dtype=np.int64), indptr, indices


# ----------------------------------------------------------------------
# fit sessions
# ----------------------------------------------------------------------


class _SerialFitSession:
    """In-process fit session: the model's own kernels, zero overhead.

    The assignment loop honours ``update_refs``: ``'online'`` runs the
    paper's per-item pass unchanged; ``'batch'`` runs the vectorised
    chunk kernel on the full span (identical labels, far fewer Python
    dispatches).  Tests can pin ``model._force_per_item_pass = True``
    to keep the per-item batch pass as an equivalence reference.
    """

    #: Pool spin-up cost; zero by construction for the serial session.
    open_s = 0.0

    def __init__(self, engine: "ClusteringEngine", model, X: np.ndarray):
        self._engine = engine
        self._model = model
        self._X = X
        self._index: AnyIndex | None = None
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def __enter__(self) -> "_SerialFitSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def exhaustive_assign(
        self, centroids: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        return self._model._exhaustive_assign(self._X, centroids, labels)

    def compute_signatures(self) -> np.ndarray:
        return self._model._signatures(self._X)

    def build_index(self, signatures: np.ndarray, labels: np.ndarray) -> AnyIndex:
        self._index = self._engine.build_index(self._model, signatures, labels)
        return self._index

    def run_pass(self, centroids, labels, accumulator) -> tuple[np.ndarray, int]:
        model = self._model
        assert self._index is not None, "build_index must run before passes"
        if model.update_refs == "online" or getattr(
            model, "_force_per_item_pass", False
        ):
            return model._shortlist_pass(
                self._X, centroids, labels, self._index, accumulator
            )
        if self._csr is None:
            self._csr = _pass_neighbour_csr(self._index, self._X.shape[0])
        n = self._X.shape[0]
        out, moves, total, smax = _assignment_chunk(
            (model, self._X), (centroids, labels, self._csr), (0, n)
        )
        accumulator.add_many(total, n, smax)
        self._index.set_assignments(out)
        return out, moves

    def close(self) -> None:
        pass


class _ParallelFitSession:
    """One worker pool serving every phase of one fit.

    Opening the session spins up the backend's workers exactly once
    (``open_s`` records the cost); the item matrix is pinned as static
    session state, and everything computed later — band keys, the
    per-item neighbour CSR — reaches the workers through
    :class:`~repro.engine.shared.SharedArray` handles riding the small
    per-task ``dynamic`` tuples.
    """

    def __init__(self, engine: "ClusteringEngine", model, X: np.ndarray):
        self._engine = engine
        self._model = model
        self._X = X
        self._n = X.shape[0]
        backend = engine.backend
        self._backend = backend
        # Freeze data-dependent encoding state (e.g. the inferred token
        # domain) on the FULL matrix before workers snapshot the model,
        # so a chunk's local statistics can never change the encoding.
        model._prepare_signatures(X)
        pre_handles: tuple[SharedArray, ...] = ()
        if backend.inherits_static:
            x_ref = SharedArray.wrap(X)
        else:
            # spawn workers must not receive the matrix through the
            # initializer pickle; hand it over in shared memory.  The
            # pool adopts the segment, releasing it even when opening
            # the session fails.
            x_ref = backend.share_array(X)
            pre_handles = (x_ref,)
        # span-reported pool spin-up: the same Timer reading the old
        # code published, now also visible in the metrics registry.
        with trace_span("fit.session_open", backend=backend.name) as open_span:
            self._pool = PersistentPool(
                backend,
                (model, x_ref),
                handles=pre_handles,
                metrics=True,  # ship process-worker kernel spans home
            )
        self.open_s = open_span.wall_s
        self._index: AnyIndex | None = None
        self._csr_refs: tuple[SharedArray, SharedArray, SharedArray] | None = None

    def __enter__(self) -> "_ParallelFitSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _share(self, array: np.ndarray) -> SharedArray:
        return self._pool.share(array)

    def exhaustive_assign(
        self, centroids: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        spans = chunk_ranges(self._n, self._backend.n_jobs)
        chunks = self._pool.run(
            _exhaustive_chunk, spans, dynamic=(centroids, labels)
        )
        new_labels = np.concatenate(chunks)
        moves = int(np.count_nonzero(new_labels != labels))
        return new_labels, moves

    def compute_signatures(self) -> np.ndarray:
        spans = chunk_ranges(self._n, self._backend.n_jobs)
        return np.concatenate(self._pool.run(_signature_chunk, spans))

    def build_index(self, signatures: np.ndarray, labels: np.ndarray) -> AnyIndex:
        model = self._model
        shards = self._engine.resolved_shards()
        band_keys = compute_band_keys(signatures, model.bands, model.rows)
        keys_ref = self._share(band_keys)
        spans = chunk_ranges(self._n, shards)
        runs = self._pool.run(
            _build_shard_tables, spans, dynamic=(keys_ref, model.bands)
        )
        self._index = ShardedClusteredLSHIndex.from_shard_runs(
            model.bands,
            model.rows,
            band_keys,
            labels,
            runs,
            n_shards=shards,
            precompute_neighbours=model.precompute_neighbours,
        )
        return self._index

    def run_pass(self, centroids, labels, accumulator) -> tuple[np.ndarray, int]:
        assert self._index is not None, "build_index must run before passes"
        if self._csr_refs is None:
            group_of, indptr, indices = _pass_neighbour_csr(self._index, self._n)
            self._csr_refs = (
                self._share(group_of),
                self._share(indptr),
                self._share(indices),
            )
        spans = chunk_ranges(self._n, self._backend.n_jobs)
        results = self._pool.run(
            _assignment_chunk, spans, dynamic=(centroids, labels, self._csr_refs)
        )
        new_labels = np.concatenate([chunk for chunk, _, _, _ in results])
        moves = sum(chunk_moves for _, chunk_moves, _, _ in results)
        accumulator.add_many(
            sum(total for _, _, total, _ in results),
            self._n,
            max(chunk_max for _, _, _, chunk_max in results),
        )
        self._index.set_assignments(new_labels)
        return new_labels, moves

    def close(self) -> None:
        self._pool.close()


EngineFitSession = _SerialFitSession | _ParallelFitSession


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class ClusteringEngine:
    """Executes the phases of one fit on a chosen backend.

    Parameters
    ----------
    backend:
        Where kernels run; see :mod:`repro.engine.backends`.
    n_shards:
        Shard count for the index.  ``None`` means one shard per
        worker for parallel backends and an unsharded
        :class:`~repro.lsh.index.ClusteredLSHIndex` for serial.
    """

    def __init__(self, backend: ExecutionBackend, n_shards: int | None = None):
        if n_shards is not None and n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        self.backend = backend
        self.n_shards = n_shards

    @property
    def is_parallel(self) -> bool:
        return self.backend.is_parallel

    def resolved_shards(self) -> int:
        if self.n_shards is not None:
            return self.n_shards
        return self.backend.n_jobs if self.is_parallel else 1

    def fit_session(self, model, X: np.ndarray) -> EngineFitSession:
        """Open the one session serving every phase of this fit.

        Use as a context manager; on parallel backends the worker pool
        (and any shared-memory segments) lives exactly as long as the
        session.
        """
        if not self.is_parallel:
            return _SerialFitSession(self, model, X)
        return _ParallelFitSession(self, model, X)

    # -- standalone index construction (serial helpers) -----------------

    def build_index(
        self, model, signatures: np.ndarray, labels: np.ndarray
    ) -> AnyIndex:
        """Build the clustered index (sharded when shards > 1)."""
        shards = self.resolved_shards()
        if shards == 1 and not self.is_parallel:
            index = ClusteredLSHIndex(
                model.bands,
                model.rows,
                precompute_neighbours=model.precompute_neighbours,
            )
            index.build(signatures, labels)
            return index
        sharded = ShardedClusteredLSHIndex(
            model.bands,
            model.rows,
            n_shards=shards,
            precompute_neighbours=model.precompute_neighbours,
        )
        sharded.build(signatures, labels, backend=self.backend)
        return sharded

    def index_from_band_keys(
        self, model, band_keys: np.ndarray, assignments: np.ndarray
    ) -> AnyIndex:
        """Rebuild the fitted index from persisted band keys."""
        shards = self.resolved_shards()
        if shards == 1 and not self.is_parallel:
            return ClusteredLSHIndex.from_band_keys(
                model.bands,
                model.rows,
                band_keys,
                assignments,
                precompute_neighbours=model.precompute_neighbours,
            )
        return ShardedClusteredLSHIndex.from_band_keys(
            model.bands,
            model.rows,
            band_keys,
            assignments,
            n_shards=shards,
            precompute_neighbours=model.precompute_neighbours,
            backend=self.backend,
        )


def backend_from_spec(spec) -> ExecutionBackend:
    """Build the :class:`ExecutionBackend` an ``EngineSpec`` describes."""
    if spec.backend == "process" and spec.start_method is not None:
        from repro.engine.backends import ProcessBackend

        return ProcessBackend(spec.n_jobs, start_method=spec.start_method)
    return resolve_backend(spec.backend, spec.n_jobs)


def resolve_engine(
    backend,
    n_jobs: int | None = None,
    n_shards: int | None = None,
) -> ClusteringEngine:
    """Build a :class:`ClusteringEngine` from estimator parameters.

    ``backend`` may be an :class:`~repro.api.EngineSpec` (the spec
    fully describes the engine; ``n_jobs``/``n_shards`` must then stay
    unset), a backend name, or a pre-built
    :class:`~repro.engine.backends.ExecutionBackend`.
    """
    from repro.api.specs import EngineSpec

    if isinstance(backend, EngineSpec):
        if n_jobs is not None or n_shards is not None:
            raise ConfigurationError(
                "when resolving an EngineSpec, n_jobs/n_shards come from "
                "the spec; do not pass them separately"
            )
        return ClusteringEngine(
            backend_from_spec(backend), n_shards=backend.n_shards
        )
    return ClusteringEngine(resolve_backend(backend, n_jobs), n_shards=n_shards)
