"""The generic LSH-accelerated centroid clustering loop.

This is the paper's framework (Section III-B) factored out of any one
algorithm.  A concrete estimator supplies five kernels:

* how items are validated and *encoded* for the LSH family;
* how initial centroids are chosen;
* the exhaustive assignment pass (used once at setup, per the paper's
  step 2, and by the baseline comparison path);
* a point-to-centroids distance kernel (run against shortlists);
* the centroid update and the cost function.

The base class owns the loop itself:

1. choose centroids; run one exhaustive assignment pass;
2. hash every item once, build the
   :class:`~repro.lsh.index.ClusteredLSHIndex` with the items'
   cluster references (all of this is the *setup* cost the paper
   includes in total clustering time);
3. per iteration: compute exact distances only against each item's
   candidate-cluster shortlist from the index, and update cluster
   references in place (``update_refs='online'``, the paper's
   behaviour: a per-item pass where reassignments are visible to
   later items) or at the end of the pass (``'batch'``: a vectorised
   pass over the index's flat neighbour CSR, identical labels on
   every backend);
4. recompute centroids; stop when no item moved or ``max_iter`` hits.

All phases of one fit — including the per-iteration passes — run on a
single engine fit session, so a parallel backend opens exactly one
worker pool per fit and bulky arrays cross into workers once (see
:mod:`repro.engine.parallel`).

Shortlists of indexed items always contain the item's current cluster
because every item collides with itself, so an iteration can never
leave an item without candidates.
"""

from __future__ import annotations

import abc

import numpy as np

from repro import kernels
from repro.api.legacy import resolve_specs
from repro.api.model import ClusterModel
from repro.api.protocol import EstimatorProtocol, SpecAttributeSurface
from repro.api.specs import LSH_FAMILIES, EngineSpec, LSHSpec, TrainSpec
from repro.core.shortlist import (
    ShortlistAccumulator,
    apply_fallback,
    best_centroids_full_scan,
)
from repro.engine import (
    ClusteringEngine,
    SerialBackend,
    ShardedClusteredLSHIndex,
    resolve_engine,
)
from repro.engine.parallel import best_shortlisted_centroids
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    check_fitted,
)
from repro.instrumentation import RunStats, Timer
from repro.obs import PhaseSpans
from repro.lsh.index import ClusteredLSHIndex

__all__ = ["BaseLSHAcceleratedClustering"]


class BaseLSHAcceleratedClustering(SpecAttributeSurface, EstimatorProtocol, abc.ABC):
    """Template for centroid algorithms accelerated with a banded LSH index.

    Configuration is spec-driven (see :mod:`repro.api`): the three
    frozen spec objects fully describe a fit, and the legacy flat
    kwargs (``bands=``, ``backend=``, ...) keep working through a
    deprecation shim that maps them onto the same specs — identical
    labels either way.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    lsh:
        :class:`~repro.api.LSHSpec` — hash family, banding (``bands``,
        ``rows``), quantisation ``width`` and the ``seed`` controlling
        both initialisation and hashing.  ``None``: the estimator's
        default spec.
    engine:
        :class:`~repro.api.EngineSpec` — execution backend, worker
        count, index shard count, setup chunking and process start
        method.  ``'serial'`` (the default) reproduces the paper's
        exact loop; results are invariant to backend and shard count.
    train:
        :class:`~repro.api.TrainSpec` — initialisation, ``max_iter``,
        reference-update mode (``'online'`` per the paper on serial,
        ``'batch'`` for the vectorised pass on any backend),
        empty-cluster policy, cost tracking and the predict fallback.
    precompute_neighbours:
        Forwarded to :class:`~repro.lsh.index.ClusteredLSHIndex`
        (``False`` keeps the index insertable for streaming).
    **legacy:
        Deprecated flat kwargs, each mapped onto its spec field with a
        :class:`DeprecationWarning`
        (see :data:`repro.api.LEGACY_PARAMETER_MAP`).

    Attributes
    ----------
    centroids_:
        ``(k, m)`` fitted centroids.
    labels_:
        Training assignments.
    stats_:
        Per-iteration series (time, moves, mean shortlist size); the
        setup pass is recorded in ``stats_.setup_s``.
    index_:
        The built :class:`~repro.lsh.index.ClusteredLSHIndex` (or
        :class:`~repro.engine.ShardedClusteredLSHIndex` when the fit
        ran sharded).

    All fitted attributes raise
    :class:`~repro.exceptions.NotFittedError` before ``fit`` completes;
    after it, :meth:`fitted_model` exports the immutable
    :class:`~repro.api.ClusterModel` serving artifact.
    """

    #: Spec acceptance marker used by the registry/artifact layer.
    _accepts_specs = True

    #: Per-class default specs; concrete estimators override.
    _default_lsh = LSHSpec()
    _default_engine = EngineSpec()
    _default_train = TrainSpec()

    #: Values of ``lsh.family`` / ``train.init`` /
    #: ``train.empty_cluster_policy`` the concrete algorithm supports.
    _supported_families: tuple[str, ...] = LSH_FAMILIES
    _supported_inits: tuple[str, ...] = ("random",)
    _supported_empty_policies: tuple[str, ...] = ("keep", "reinit", "error")

    def __init__(
        self,
        n_clusters: int,
        lsh: LSHSpec | dict | None = None,
        engine: EngineSpec | dict | None = None,
        train: TrainSpec | dict | None = None,
        precompute_neighbours: bool = True,
        **legacy,
    ):
        lsh, engine, train, backend_instance = resolve_specs(
            type(self).__name__,
            lsh,
            train=train,
            engine=engine,
            legacy=legacy,
            lsh_default=self._default_lsh,
            engine_default=self._default_engine,
            train_default=self._default_train,
            # user frame -> concrete __init__ -> this __init__ ->
            # resolve_specs: one deeper than a direct call
            stacklevel=4,
        )
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if lsh.family not in self._supported_families:
            raise ConfigurationError(
                f"{type(self).__name__} supports LSH families "
                f"{self._supported_families}, got {lsh.family!r}"
            )
        if train.init not in self._supported_inits:
            raise ConfigurationError(
                f"{type(self).__name__} supports init {self._supported_inits}, "
                f"got {train.init!r}"
            )
        if train.empty_cluster_policy not in self._supported_empty_policies:
            raise ConfigurationError(
                f"{type(self).__name__} supports empty_cluster_policy "
                f"{self._supported_empty_policies}, got "
                f"{train.empty_cluster_policy!r}"
            )
        self.n_clusters = int(n_clusters)
        self.lsh = lsh
        self.engine = engine
        self.train = train
        self._backend_instance = backend_instance
        parallel = (
            backend_instance.is_parallel
            if backend_instance is not None
            else engine.backend != "serial"
        )
        if train.update_refs == "online" and parallel:
            raise ConfigurationError(
                "update_refs='online' requires backend='serial'; parallel "
                "backends merge reference updates at a per-pass barrier "
                "(update_refs='batch')"
            )
        self._resolved_update_refs = train.update_refs or (
            "batch" if parallel else "online"
        )
        self.precompute_neighbours = bool(precompute_neighbours)

        self.cost_: float = float("nan")
        self.n_iter_: int = 0
        self.converged_: bool = False
        self._centroids: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._stats: RunStats | None = None
        self._index: ClusteredLSHIndex | ShardedClusteredLSHIndex | None = None

    # -- legacy read surface: SpecAttributeSurface, with update_refs
    # resolved against the backend --------------------------------------

    @property
    def update_refs(self) -> str:
        """The *resolved* reference-update mode ('online' or 'batch')."""
        return self._resolved_update_refs

    # -- fitted state (NotFittedError before fit) -----------------------

    def _is_fitted(self) -> bool:
        return self._centroids is not None

    @property
    def centroids_(self) -> np.ndarray:
        """``(k, m)`` fitted centroids."""
        check_fitted(self)
        return self._centroids

    @property
    def labels_(self) -> np.ndarray:
        """Training assignments."""
        check_fitted(self)
        return self._labels

    @property
    def stats_(self) -> RunStats | None:
        """Fit statistics (``None`` on estimators restored from disk)."""
        check_fitted(self)
        return self._stats

    @property
    def index_(self) -> ClusteredLSHIndex | ShardedClusteredLSHIndex:
        """The built clustered index."""
        check_fitted(self)
        return self._index

    def _make_engine(self) -> ClusteringEngine:
        """The engine executing this estimator's fit phases."""
        if self._backend_instance is not None:
            return ClusteringEngine(
                self._backend_instance, n_shards=self.engine.n_shards
            )
        return resolve_engine(self.engine)

    # -- the fitted-model artifact --------------------------------------

    def _artifact_params(self) -> dict:
        """Estimator-own constructor params persisted in the artifact."""
        return {"precompute_neighbours": self.precompute_neighbours}

    def _artifact_state(self) -> dict:
        """Extra fitted scalars persisted in the artifact."""
        return {}

    def fitted_model(self) -> ClusterModel:
        """Export the immutable :class:`~repro.api.ClusterModel` artifact.

        The artifact carries everything serving needs — centroids, the
        index's band keys and cluster references, the three specs and
        the estimator-own parameters — so ``predict`` works without
        this training object (and byte-identically to it).
        """
        check_fitted(self)
        index = self._index
        return ClusterModel(
            algorithm=getattr(type(self), "_registry_name", type(self).__name__),
            n_clusters=self.n_clusters,
            centroids=self._centroids,
            lsh=self.lsh,
            engine=self.engine,
            train=self.train,
            labels=self._labels,
            band_keys=None if index is None else index.band_keys,
            assignments=None if index is None else index.assignments,
            params=self._artifact_params(),
            state={**self._artifact_scalars(), **self._artifact_state()},
            metadata=self._artifact_metadata(),
        )

    def _restore_fit_state(self, model: ClusterModel) -> None:
        """Adopt a :class:`~repro.api.ClusterModel`'s fitted state.

        Called on a freshly constructed estimator by
        :meth:`ClusterModel.to_estimator`; the index is rebuilt from
        the band keys in-process (results are backend-invariant and a
        read-only load should not fork a worker pool as a side
        effect), honouring the persisted shard count.
        """
        super()._restore_fit_state(model)
        if model.band_keys is not None:
            engine = ClusteringEngine(
                SerialBackend(), n_shards=self.engine.n_shards
            )
            self._index = engine.index_from_band_keys(
                self, np.array(model.band_keys), np.array(model.assignments)
            )

    # ------------------------------------------------------------------
    # kernels supplied by concrete algorithms
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        """Check and normalise the input matrix."""

    @abc.abstractmethod
    def _algorithm_name(self) -> str:
        """Label used in run statistics, e.g. ``"MH-K-Modes 20b 5r"``."""

    @abc.abstractmethod
    def _initial_centroids(
        self, X: np.ndarray, initial: np.ndarray | None, rng: np.random.Generator
    ) -> np.ndarray:
        """Choose the k starting centroids."""

    @abc.abstractmethod
    def _signatures(self, X: np.ndarray) -> np.ndarray:
        """Encode items and produce the ``(n, bands*rows)`` signatures."""

    @abc.abstractmethod
    def _exhaustive_assign(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Assign every item against every centroid; returns (labels, moves)."""

    @abc.abstractmethod
    def _point_distances(
        self, X: np.ndarray, item: int, centroids: np.ndarray
    ) -> np.ndarray:
        """Distances from item ``item`` to a subset matrix of centroids."""

    @abc.abstractmethod
    def _update_centroids(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Recompute centroids for the new assignment."""

    @abc.abstractmethod
    def _compute_cost(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> float:
        """Clustering cost (only called when ``track_cost`` is on)."""

    # -- optional kernels with generic defaults -------------------------

    def _prepare_signatures(self, X: np.ndarray) -> None:
        """Freeze any data-dependent encoding state before chunked hashing.

        Called by parallel engines on the *full* matrix before
        ``_signatures`` runs per chunk, so a chunk's local statistics
        (e.g. the maximum category code) can never change the encoding.
        The default does nothing; override when ``_signatures`` infers
        state from its input.
        """

    def _block_distances(
        self, block: np.ndarray, centroid_blocks: np.ndarray
    ) -> np.ndarray:
        """Distances from ``block[i]`` to every row of ``centroid_blocks[i]``.

        Parameters
        ----------
        block:
            ``(c, m)`` items.
        centroid_blocks:
            ``(c, s, m)`` per-item candidate centroids (padded rows are
            masked by the caller, so their values are irrelevant).

        Returns
        -------
        numpy.ndarray
            ``(c, s)`` distances.  The default loops over the block via
            ``_point_distances``; override with a fully vectorised
            kernel — it is the hot path of the parallel backends.
        """
        return np.stack(
            [
                self._point_distances(block, i, centroid_blocks[i])
                for i in range(block.shape[0])
            ]
        )

    # ------------------------------------------------------------------
    # the framework loop
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, initial_centroids: np.ndarray | None = None):
        """Run the accelerated clustering on ``X``.

        Parameters
        ----------
        X:
            Item matrix (validated by the concrete algorithm).
        initial_centroids:
            Optional explicit starting centroids; pass the same array
            to the exhaustive baseline to replicate the paper's
            fixed-initialisation protocol.
        """
        X = self._validate_X(X)
        rng = np.random.default_rng(self.seed)
        centroids = self._initial_centroids(X, initial_centroids, rng)
        n = X.shape[0]
        engine = self._make_engine()

        stats = RunStats(algorithm=self._algorithm_name())

        converged = False
        # One session serves every phase: parallel backends open their
        # worker pool here, exactly once per fit.
        with engine.fit_session(self, X) as session:
            # --- setup: one exhaustive pass + one indexing pass (paper's
            # "initial extra step", charged to total time, not
            # per-iteration).  Pool spin-up is charged to setup too.
            # Every phase reports through the span API: the same Timer
            # readings the old code published in phase_s, now also in
            # the metrics registry (span "fit.<phase>") and the trace
            # stream.  Parallel sessions report their own
            # "fit.session_open" span at open.
            phases = PhaseSpans("fit")
            with Timer() as setup_timer:
                with phases.span("exhaustive_assign"):
                    labels, _ = session.exhaustive_assign(
                        centroids, np.full(n, -1, dtype=np.int64)
                    )
                with phases.span(
                    "signatures", kernels=kernels.active_backend()
                ):
                    signatures = session.compute_signatures()
                with phases.span("index_build"):
                    index = session.build_index(signatures, labels)
                centroids = self._update_centroids(X, labels, centroids, rng)
            stats.setup_s = setup_timer.elapsed_s + session.open_s
            stats.phase_s["session_open"] = session.open_s
            stats.phase_s.update(phases.totals)

            for _ in range(self.max_iter):
                accumulator = ShortlistAccumulator()
                with phases.span("iterations") as iteration_span:
                    labels, moves = session.run_pass(centroids, labels, accumulator)
                    centroids = self._update_centroids(X, labels, centroids, rng)
                cost = (
                    self._compute_cost(X, centroids, labels)
                    if self.track_cost
                    else float("nan")
                )
                stats.record(
                    duration_s=iteration_span.wall_s,
                    moves=moves,
                    cost=cost,
                    mean_shortlist=accumulator.mean(),
                    n_empty_clusters=self.n_clusters - len(np.unique(labels)),
                )
                if moves == 0:
                    converged = True
                    break

        stats.converged = converged
        stats.phase_s["iterations"] = sum(it.duration_s for it in stats.iterations)
        self._centroids = centroids
        self._labels = labels
        self.cost_ = float(self._compute_cost(X, centroids, labels))
        self.n_iter_ = stats.n_iterations
        self.converged_ = converged
        self._stats = stats
        self._index = index
        return self

    def fit_predict(
        self, X: np.ndarray, initial_centroids: np.ndarray | None = None
    ) -> np.ndarray:
        """Fit and return the training labels."""
        self.fit(X, initial_centroids=initial_centroids)
        assert self.labels_ is not None
        return self.labels_

    def _shortlist_pass(
        self,
        X: np.ndarray,
        centroids: np.ndarray,
        labels: np.ndarray,
        index: ClusteredLSHIndex | ShardedClusteredLSHIndex,
        accumulator: ShortlistAccumulator,
    ) -> tuple[np.ndarray, int]:
        """One assignment pass over all items using index shortlists.

        This is the hot loop of the whole library, so it works on raw
        arrays: the index's live assignment view doubles as the label
        array (online reference updates are then a plain element write),
        and precomputed neighbour lists are walked as CSR slices.
        """
        online = self.update_refs == "online"
        index.set_assignments(labels)
        refs = index.assignments_view()  # live view; refs[i] = c updates the index
        new_labels = labels.copy()
        working = refs if online else labels
        csr = index.neighbour_csr() if index.precompute_neighbours else None
        if csr is not None:
            group_of, nbr_indptr, nbr_indices = csr
        point_distances = self._point_distances
        unique = np.unique
        argmin = np.argmin
        searchsorted = np.searchsorted
        moves = 0
        total_shortlist = 0
        n = X.shape[0]
        for i in range(n):
            if csr is not None:
                group = group_of[i]
                neighbours = nbr_indices[nbr_indptr[group] : nbr_indptr[group + 1]]
            else:
                neighbours = index.candidate_items(i)
            shortlist = unique(working[neighbours])
            total_shortlist += len(shortlist)
            distances = point_distances(X, i, centroids[shortlist])
            best_pos = argmin(distances)
            current = working[i] if online else labels[i]
            # Keep the current cluster on ties so that a fixed point of
            # the assignment step exists (required for the no-moves
            # termination criterion).  ``shortlist`` is sorted (np.unique),
            # so the current cluster is found by bisection.
            cur_pos = searchsorted(shortlist, current)
            if distances[cur_pos] <= distances[best_pos]:
                continue
            best = int(shortlist[best_pos])
            moves += 1
            new_labels[i] = best
            if online:
                refs[i] = best
        accumulator.add_many(total_shortlist, n)
        if not online:
            index.set_assignments(new_labels)
        return new_labels, moves

    # ------------------------------------------------------------------
    # prediction for novel items
    # ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign unseen items using the index (with fallback policy).

        Novel items are hashed and their shortlists looked up from the
        trained index in one batched query
        (:meth:`~repro.lsh.index.BaseClusteredIndex.shortlists_for_signatures`);
        the nearest shortlisted centroid wins, scored with the
        vectorised ``_block_distances`` kernel over the ragged
        shortlist block.  Rows whose shortlist is empty trigger
        ``predict_fallback`` individually (``'full'`` scores them
        against every centroid; ``'error'`` raises).  Row for row
        identical to hashing and assigning each item on its own.
        """
        check_fitted(self)
        if self._index is None:
            raise NotFittedError(
                "this model carries no clustered index (it was restored "
                "from an artifact without band keys); shortlist-based "
                "predict is unavailable"
            )
        X = self._validate_predict_X(X)
        if X.shape[1] != self.centroids_.shape[1]:
            raise DataValidationError(
                f"X has {X.shape[1]} attributes but the model was fitted "
                f"with {self.centroids_.shape[1]}"
            )
        if X.shape[0] == 0:
            # An empty batch is a legal serving request; the signature
            # and shortlist machinery below assume at least one row.
            return np.empty(0, dtype=np.int64)
        return self._predict_from_signatures(X, self._signatures(X))

    def _predict_from_signatures(
        self, X: np.ndarray, signatures: np.ndarray
    ) -> np.ndarray:
        """The post-hashing tail of :meth:`predict`.

        Split out so callers that need the signatures for something
        else too — the serving layer's streaming ``extend`` hashes once
        and feeds the same matrix to ``insert_batch`` — avoid paying
        the MinHash pass twice.  ``X`` must already be validated and
        non-empty.
        """
        indptr, clusters = self.index_.shortlists_for_signatures(signatures)
        lengths = np.diff(indptr)
        out = np.empty(X.shape[0], dtype=np.int64)

        empty = np.flatnonzero(lengths == 0)
        if empty.size:
            # Resolve the policy once ('error' raises here); the 'full'
            # fallback then scores the empty rows against every centroid
            # with the broadcast full-scan kernel — an all-clusters
            # shortlist would gather a (rows, k, m) centroid copy per
            # block, which is exactly what made batched predict slower
            # than the per-item loop on all-novel batches.
            apply_fallback(
                np.empty(0, dtype=np.int64), self.n_clusters, self.predict_fallback
            )
            labels, _ = best_centroids_full_scan(self, X[empty], self.centroids_)
            out[empty] = labels

        filled = np.flatnonzero(lengths > 0)
        if filled.size:
            # ``clusters`` holds only the filled rows' entries (empty
            # rows contribute zero-length slices), already row-ordered.
            labels, _ = best_shortlisted_centroids(
                self, X[filled], clusters, lengths[filled], self.centroids_
            )
            out[filled] = labels
        return out
