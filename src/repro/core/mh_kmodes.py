"""MH-K-Modes — the paper's MinHash-accelerated K-Modes (Section III-B).

The estimator plugs the K-Modes kernels (matching dissimilarity,
frequency-based mode update, P(W, Q) cost) into the generic
:class:`~repro.core.framework.BaseLSHAcceleratedClustering` loop with
MinHash as the LSH family:

* items are encoded as sets of *(attribute, value)* tokens, optionally
  dropping an "absent" code first (the presence filtering of
  Algorithm 2 lines 1-4, important for sparse binary data such as the
  Yahoo! Answers word-presence vectors);
* each item is MinHashed once into a banded index that also carries
  the item's current cluster;
* every assignment step consults the index for a shortlist of
  candidate clusters and computes exact matching distances only
  against the shortlist.

With parameters ``bands=20, rows=5`` and the synthetic workloads of
Section IV-A, shortlists shrink from k (tens of thousands in the
paper) to a handful, which is where the 2-6× speedup comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import BaseLSHAcceleratedClustering
from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmodes.cost import clustering_cost
from repro.kmodes.dissimilarity import distances_to_modes
from repro.kmodes.initialization import resolve_init
from repro.kmodes.modes import compute_modes
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets

__all__ = ["MHKModes"]


class MHKModes(BaseLSHAcceleratedClustering):
    """MinHash-accelerated K-Modes.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    bands, rows:
        MinHash banding parameters.  The paper evaluates (20, 2),
        (20, 5), (50, 5) and (1, 1); see
        :func:`repro.core.parameters.suggest_bands_rows` for guidance.
    init:
        Centroid initialisation (``'random'`` as in the paper,
        ``'huang'``, or ``'cao'``); ignored when ``fit`` receives
        explicit ``initial_centroids``.
    max_iter:
        Cap on shortlist iterations.
    seed:
        Controls initialisation and hashing.
    absent_code:
        If given, attribute values equal to this code are treated as
        "feature not present" and excluded from MinHash (presence
        filtering).  Distances are still computed on the full vectors,
        exactly as in the paper.
    domain_size:
        Global category domain size for token encoding (default:
        inferred from the data).
    empty_cluster_policy:
        Forwarded to the mode update: ``'keep'``, ``'reinit'``,
        ``'error'``.
    update_refs, backend, n_jobs, n_shards, precompute_neighbours,
    track_cost, predict_fallback:
        See :class:`~repro.core.framework.BaseLSHAcceleratedClustering`.
    chunk_items:
        Chunk size of the one-off exhaustive setup pass.

    Attributes
    ----------
    modes_:
        Alias of ``centroids_`` in K-Modes terminology.

    Examples
    --------
    >>> X = np.array([[0, 1, 2], [0, 1, 2], [7, 8, 9], [7, 8, 9]])
    >>> model = MHKModes(n_clusters=2, bands=8, rows=1, seed=0).fit(X)
    >>> sorted(np.bincount(model.labels_).tolist())
    [2, 2]
    """

    def __init__(
        self,
        n_clusters: int,
        bands: int = 20,
        rows: int = 5,
        init: str = "random",
        max_iter: int = 100,
        seed: int | None = None,
        absent_code: int | None = None,
        domain_size: int | None = None,
        empty_cluster_policy: str = "keep",
        update_refs: str | None = None,
        backend="serial",
        n_jobs: int | None = None,
        n_shards: int | None = None,
        precompute_neighbours: bool = True,
        track_cost: bool = True,
        predict_fallback: str = "full",
        chunk_items: int = 256,
    ):
        super().__init__(
            n_clusters=n_clusters,
            bands=bands,
            rows=rows,
            max_iter=max_iter,
            seed=seed,
            update_refs=update_refs,
            backend=backend,
            n_jobs=n_jobs,
            n_shards=n_shards,
            precompute_neighbours=precompute_neighbours,
            track_cost=track_cost,
            predict_fallback=predict_fallback,
        )
        resolve_init(init)
        if chunk_items <= 0:
            raise ConfigurationError(f"chunk_items must be positive, got {chunk_items}")
        self.init = init
        self.absent_code = absent_code
        self.domain_size = domain_size
        self.empty_cluster_policy = empty_cluster_policy
        self.chunk_items = int(chunk_items)
        self._hasher = MinHasher(self.bands * self.rows, seed=self._hash_seed())
        self._fitted_domain_size: int | None = None

    def _hash_seed(self) -> int:
        # Decouple the hashing stream from the initialisation stream so
        # fixing initial modes across variants does not change hashes.
        return (0 if self.seed is None else int(self.seed)) ^ 0x5EEDBEEF

    # ------------------------------------------------------------------
    # K-Modes kernels
    # ------------------------------------------------------------------

    @property
    def modes_(self) -> np.ndarray | None:
        """Cluster modes (K-Modes name for the centroids)."""
        return self.centroids_

    def _algorithm_name(self) -> str:
        return f"MH-K-Modes {self.bands}b {self.rows}r"

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2 or X.size == 0:
            raise DataValidationError("X must be a non-empty 2-D matrix")
        if not np.issubdtype(X.dtype, np.integer):
            raise DataValidationError(
                f"X must hold integer category codes, got dtype {X.dtype}; "
                "use repro.data.encoding.CategoricalEncoder for raw values"
            )
        if X.min() < 0:
            raise DataValidationError("category codes must be non-negative")
        return X

    def _initial_centroids(
        self, X: np.ndarray, initial: np.ndarray | None, rng: np.random.Generator
    ) -> np.ndarray:
        if initial is not None:
            initial = np.asarray(initial)
            if initial.shape != (self.n_clusters, X.shape[1]):
                raise DataValidationError(
                    f"initial_centroids shape {initial.shape} != "
                    f"({self.n_clusters}, {X.shape[1]})"
                )
            return initial.astype(X.dtype, copy=True)
        if self.n_clusters > X.shape[0]:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds n_items={X.shape[0]}"
            )
        return resolve_init(self.init)(X, self.n_clusters, rng)

    def _prepare_signatures(self, X: np.ndarray) -> None:
        # Freeze the inferred domain on the full matrix before any
        # chunked hashing, so chunk-local maxima cannot change tokens.
        if self.domain_size is None and self._fitted_domain_size is None:
            self._fitted_domain_size = int(X.max()) + 1

    def _signatures(self, X: np.ndarray) -> np.ndarray:
        domain = self.domain_size
        if domain is None:
            # Freeze the inferred domain at fit time so predict-time
            # matrices with smaller maxima encode identically.
            if self._fitted_domain_size is None:
                self._fitted_domain_size = int(X.max()) + 1
            domain = self._fitted_domain_size
        token_sets = TokenSets.from_categorical_matrix(
            X, domain_size=domain, absent_code=self.absent_code
        )
        return self._hasher.signatures(token_sets)

    def _exhaustive_assign(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        n = X.shape[0]
        new_labels = np.empty(n, dtype=np.int64)
        for start in range(0, n, self.chunk_items):
            stop = min(start + self.chunk_items, n)
            dists = np.count_nonzero(
                X[start:stop, None, :] != centroids[None, :, :], axis=2
            )
            best = np.argmin(dists, axis=1)
            chunk_labels = labels[start:stop]
            assigned = chunk_labels >= 0
            if np.any(assigned):
                rows_idx = np.flatnonzero(assigned)
                current = chunk_labels[rows_idx]
                keep = dists[rows_idx, current] <= dists[rows_idx, best[rows_idx]]
                best[rows_idx[keep]] = current[keep]
            new_labels[start:stop] = best
        moves = int(np.count_nonzero(new_labels != labels))
        return new_labels, moves

    def _point_distances(
        self, X: np.ndarray, item: int, centroids: np.ndarray
    ) -> np.ndarray:
        # Hot path: inline the matching-distance kernel without the
        # public API's validation (inputs are trusted here, and this
        # runs once per item per iteration).
        return np.count_nonzero(centroids != X[item][None, :], axis=1)

    def _block_distances(
        self, block: np.ndarray, centroid_blocks: np.ndarray
    ) -> np.ndarray:
        # Vectorised matching distance for the engine's chunked passes:
        # (c, s) mismatch counts in one comparison tensor.
        return np.count_nonzero(centroid_blocks != block[:, None, :], axis=2)

    def _update_centroids(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return compute_modes(
            X,
            labels,
            self.n_clusters,
            previous_modes=previous,
            empty_policy=self.empty_cluster_policy,
            rng=rng,
        )

    def _compute_cost(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> float:
        return float(clustering_cost(X, centroids, labels))
