"""MH-K-Modes — the paper's MinHash-accelerated K-Modes (Section III-B).

The estimator plugs the K-Modes kernels (matching dissimilarity,
frequency-based mode update, P(W, Q) cost) into the generic
:class:`~repro.core.framework.BaseLSHAcceleratedClustering` loop with
MinHash as the LSH family:

* items are encoded as sets of *(attribute, value)* tokens, optionally
  dropping an "absent" code first (the presence filtering of
  Algorithm 2 lines 1-4, important for sparse binary data such as the
  Yahoo! Answers word-presence vectors);
* each item is MinHashed once into a banded index that also carries
  the item's current cluster;
* every assignment step consults the index for a shortlist of
  candidate clusters and computes exact matching distances only
  against the shortlist.

With parameters ``bands=20, rows=5`` and the synthetic workloads of
Section IV-A, shortlists shrink from k (tens of thousands in the
paper) to a handful, which is where the 2-6× speedup comes from.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, LSHSpec, TrainSpec
from repro.core.framework import BaseLSHAcceleratedClustering
from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmodes.cost import clustering_cost
from repro.kmodes.dissimilarity import distances_to_modes
from repro.kmodes.initialization import resolve_init
from repro.kmodes.modes import compute_modes
from repro.lsh.minhash import MinHasher

__all__ = ["MHKModes"]


@register_estimator("mh-kmodes")
class MHKModes(BaseLSHAcceleratedClustering):
    """MinHash-accelerated K-Modes.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    lsh:
        :class:`~repro.api.LSHSpec`; the family is always
        ``'minhash'``.  The paper evaluates bandings (20, 2), (20, 5),
        (50, 5) and (1, 1); see
        :func:`repro.core.parameters.suggest_bands_rows` for guidance.
    engine:
        :class:`~repro.api.EngineSpec` (backend / workers / shards /
        setup chunking).
    train:
        :class:`~repro.api.TrainSpec`; ``init`` may be ``'random'``
        (the paper), ``'huang'`` or ``'cao'``, and
        ``empty_cluster_policy`` is forwarded to the mode update.
    absent_code:
        If given, attribute values equal to this code are treated as
        "feature not present" and excluded from MinHash (presence
        filtering).  Distances are still computed on the full vectors,
        exactly as in the paper.
    domain_size:
        Global category domain size for token encoding (default:
        inferred from the data).
    precompute_neighbours:
        See :class:`~repro.core.framework.BaseLSHAcceleratedClustering`.
    **legacy:
        Deprecated flat kwargs (``bands=``, ``rows=``, ``init=``,
        ``backend=``, ...), mapped onto the specs with a
        :class:`DeprecationWarning`.

    Attributes
    ----------
    modes_:
        Alias of ``centroids_`` in K-Modes terminology.

    Examples
    --------
    >>> from repro.api import LSHSpec
    >>> X = np.array([[0, 1, 2], [0, 1, 2], [7, 8, 9], [7, 8, 9]])
    >>> model = MHKModes(n_clusters=2, lsh=LSHSpec(bands=8, rows=1, seed=1))
    >>> sorted(np.bincount(model.fit(X).labels_).tolist())
    [2, 2]
    """

    _default_lsh = LSHSpec(family="minhash", bands=20, rows=5)
    _default_engine = EngineSpec()
    _default_train = TrainSpec()
    _supported_families = ("minhash",)
    _supported_inits = ("random", "huang", "cao")

    def __init__(
        self,
        n_clusters: int,
        lsh: LSHSpec | dict | None = None,
        engine: EngineSpec | dict | None = None,
        train: TrainSpec | dict | None = None,
        absent_code: int | None = None,
        domain_size: int | None = None,
        precompute_neighbours: bool = True,
        **legacy,
    ):
        super().__init__(
            n_clusters,
            lsh=lsh,
            engine=engine,
            train=train,
            precompute_neighbours=precompute_neighbours,
            **legacy,
        )
        resolve_init(self.init)
        self.absent_code = absent_code
        self.domain_size = domain_size
        self._hasher = MinHasher(self.bands * self.rows, seed=self._hash_seed())
        self._fitted_domain_size: int | None = None

    def _hash_seed(self) -> int:
        # Decouple the hashing stream from the initialisation stream so
        # fixing initial modes across variants does not change hashes.
        return (0 if self.seed is None else int(self.seed)) ^ 0x5EEDBEEF

    # ------------------------------------------------------------------
    # K-Modes kernels
    # ------------------------------------------------------------------

    @property
    def modes_(self) -> np.ndarray | None:
        """Cluster modes (K-Modes name for the centroids)."""
        return self.centroids_

    def _algorithm_name(self) -> str:
        return f"MH-K-Modes {self.bands}b {self.rows}r"

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2 or X.size == 0:
            raise DataValidationError("X must be a non-empty 2-D matrix")
        if not np.issubdtype(X.dtype, np.integer):
            raise DataValidationError(
                f"X must hold integer category codes, got dtype {X.dtype}; "
                "use repro.data.encoding.CategoricalEncoder for raw values"
            )
        if X.min() < 0:
            raise DataValidationError("category codes must be non-negative")
        # Canonicalise: int64 C-order, so dtype/contiguity variants of
        # the same codes hash to identical tokens (narrow dtypes could
        # otherwise overflow the attribute-offset token encoding).
        return np.ascontiguousarray(X, dtype=np.int64)

    def _initial_centroids(
        self, X: np.ndarray, initial: np.ndarray | None, rng: np.random.Generator
    ) -> np.ndarray:
        if initial is not None:
            initial = np.asarray(initial)
            if initial.shape != (self.n_clusters, X.shape[1]):
                raise DataValidationError(
                    f"initial_centroids shape {initial.shape} != "
                    f"({self.n_clusters}, {X.shape[1]})"
                )
            return initial.astype(X.dtype, copy=True)
        if self.n_clusters > X.shape[0]:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds n_items={X.shape[0]}"
            )
        return resolve_init(self.init)(X, self.n_clusters, rng)

    def _prepare_signatures(self, X: np.ndarray) -> None:
        # Freeze the inferred domain on the full matrix before any
        # chunked hashing, so chunk-local maxima cannot change tokens.
        if self.domain_size is None and self._fitted_domain_size is None:
            self._fitted_domain_size = int(X.max()) + 1

    def _signatures(self, X: np.ndarray) -> np.ndarray:
        domain = self.domain_size
        if domain is None:
            # Freeze the inferred domain at fit time so predict-time
            # matrices with smaller maxima encode identically.
            if self._fitted_domain_size is None:
                self._fitted_domain_size = int(X.max()) + 1
            domain = self._fitted_domain_size
        return self._hasher.signatures_categorical(
            X, domain_size=domain, absent_code=self.absent_code
        )

    def _exhaustive_assign(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        n = X.shape[0]
        new_labels = np.empty(n, dtype=np.int64)
        for start in range(0, n, self.chunk_items):
            stop = min(start + self.chunk_items, n)
            dists = np.count_nonzero(
                X[start:stop, None, :] != centroids[None, :, :], axis=2
            )
            best = np.argmin(dists, axis=1)
            chunk_labels = labels[start:stop]
            assigned = chunk_labels >= 0
            if np.any(assigned):
                rows_idx = np.flatnonzero(assigned)
                current = chunk_labels[rows_idx]
                keep = dists[rows_idx, current] <= dists[rows_idx, best[rows_idx]]
                best[rows_idx[keep]] = current[keep]
            new_labels[start:stop] = best
        moves = int(np.count_nonzero(new_labels != labels))
        return new_labels, moves

    def _point_distances(
        self, X: np.ndarray, item: int, centroids: np.ndarray
    ) -> np.ndarray:
        # Hot path: inline the matching-distance kernel without the
        # public API's validation (inputs are trusted here, and this
        # runs once per item per iteration).
        return np.count_nonzero(centroids != X[item][None, :], axis=1)

    def _block_distances(
        self, block: np.ndarray, centroid_blocks: np.ndarray
    ) -> np.ndarray:
        # Vectorised matching distance for the engine's chunked passes:
        # (c, s) mismatch counts in one comparison tensor.
        return np.count_nonzero(centroid_blocks != block[:, None, :], axis=2)

    def _update_centroids(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return compute_modes(
            X,
            labels,
            self.n_clusters,
            previous_modes=previous,
            empty_policy=self.empty_cluster_policy,
            rng=rng,
        )

    def _compute_cost(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> float:
        return float(clustering_cost(X, centroids, labels))

    # ------------------------------------------------------------------
    # artifact support
    # ------------------------------------------------------------------

    def _artifact_params(self) -> dict:
        return {
            **super()._artifact_params(),
            "absent_code": self.absent_code,
            "domain_size": self.domain_size,
        }

    def _artifact_state(self) -> dict:
        state = super()._artifact_state()
        if self._fitted_domain_size is not None:
            state["fitted_domain_size"] = self._fitted_domain_size
        return state

    def _restore_fit_state(self, model) -> None:
        super()._restore_fit_state(model)
        fitted_domain = model.state.get("fitted_domain_size")
        if fitted_domain is not None:
            self._fitted_domain_size = int(fitted_domain)
