"""(bands, rows) selection — the guidance of Section III-D.

The choice of ``b`` and ``r`` positions the S-curve
``1 - (1 - s^r)^b``: more bands catch lower similarities (more recall,
bigger shortlists); more rows sharpen the curve (smaller shortlists,
more false negatives).  The paper's twist is that the framework only
needs *one* collision per candidate cluster, so the effective recall is
computed per cluster (``cluster_size`` collision opportunities) rather
than per pair, and the standard selection rules "need not be so
strict".

:func:`suggest_bands_rows` searches small (b, r) grids for the cheapest
configuration whose *cluster-level* recall at a target similarity
clears a requested probability — exactly the reasoning of the paper's
footnote 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error_bound import (
    candidate_pair_probability,
    cluster_recall_probability,
)
from repro.exceptions import ConfigurationError
from repro.lsh.bands import threshold_similarity

__all__ = ["ParameterRecommendation", "suggest_bands_rows", "probability_table"]


@dataclass(frozen=True)
class ParameterRecommendation:
    """A candidate (bands, rows) configuration and its properties.

    Attributes
    ----------
    bands, rows:
        The configuration.
    n_hashes:
        Signature width ``bands * rows`` (the computational cost of
        hashing each item).
    pair_probability:
        Candidate-pair probability at the target similarity.
    cluster_recall:
        Probability the true cluster reaches the shortlist at the
        target similarity, given the assumed cluster size.
    threshold:
        The S-curve midpoint ``(1/b)^(1/r)``.
    """

    bands: int
    rows: int
    n_hashes: int
    pair_probability: float
    cluster_recall: float
    threshold: float


def suggest_bands_rows(
    target_similarity: float,
    cluster_size: int = 10,
    min_recall: float = 0.95,
    max_hashes: int = 512,
    max_rows: int = 8,
) -> ParameterRecommendation:
    """Cheapest (b, r) whose cluster-level recall clears ``min_recall``.

    Parameters
    ----------
    target_similarity:
        Jaccard similarity at which similar items must be found — for
        K-Modes acceleration a sensible value is the typical
        within-cluster item similarity.
    cluster_size:
        Assumed number of similar items in the true cluster (the paper
        uses 10 in Tables I/II and 20 in the error-bound example).
    min_recall:
        Required :func:`cluster_recall_probability`.
    max_hashes:
        Budget on signature width ``b*r`` (hashing cost per item).
    max_rows:
        Largest ``r`` considered.

    Returns
    -------
    ParameterRecommendation
        The configuration with the fewest hash functions that meets the
        recall target; ties prefer more rows (sharper curves produce
        smaller shortlists).

    Raises
    ------
    ConfigurationError
        If no configuration within the budget reaches the target.
    """
    if not 0.0 < target_similarity <= 1.0:
        raise ConfigurationError(
            f"target_similarity must be in (0, 1], got {target_similarity}"
        )
    if not 0.0 < min_recall < 1.0:
        raise ConfigurationError(f"min_recall must be in (0, 1), got {min_recall}")
    if cluster_size <= 0:
        raise ConfigurationError(f"cluster_size must be positive, got {cluster_size}")
    best: ParameterRecommendation | None = None
    for rows in range(max_rows, 0, -1):
        for bands in range(1, max_hashes // rows + 1):
            recall = cluster_recall_probability(
                target_similarity, bands, rows, cluster_size
            )
            if recall < min_recall:
                continue
            candidate = ParameterRecommendation(
                bands=bands,
                rows=rows,
                n_hashes=bands * rows,
                pair_probability=candidate_pair_probability(
                    target_similarity, bands, rows
                ),
                cluster_recall=recall,
                threshold=threshold_similarity(bands, rows),
            )
            if best is None or candidate.n_hashes < best.n_hashes:
                best = candidate
            break  # more bands at this r only costs more
    if best is None:
        raise ConfigurationError(
            f"no (bands, rows) with at most {max_hashes} hashes reaches "
            f"recall {min_recall} at similarity {target_similarity}"
        )
    return best


def probability_table(
    rows: int,
    band_choices: list[int],
    similarities: list[float],
    cluster_size: int = 10,
) -> list[dict[str, float]]:
    """Regenerate a Table I / Table II style probability grid.

    One output row per (bands, similarity) combination, with the
    candidate-pair probability and the cluster-level MH-K-Modes
    probability, exactly as printed in the paper.

    Examples
    --------
    >>> table = probability_table(1, [10], [0.1])
    >>> round(table[0]["pair_probability"], 2)
    0.65
    """
    out: list[dict[str, float]] = []
    for bands in band_choices:
        for s in similarities:
            out.append(
                {
                    "bands": float(bands),
                    "rows": float(rows),
                    "similarity": s,
                    "pair_probability": candidate_pair_probability(s, bands, rows),
                    "mh_kmodes_probability": cluster_recall_probability(
                        s, bands, rows, cluster_size
                    ),
                }
            )
    return out
