"""The paper's primary contribution: LSH-accelerated centroid clustering.

* :mod:`repro.core.framework` — the generic accelerate-any-centroid-
  algorithm loop: index items once, shortlist candidate clusters per
  item per iteration, update cluster references in O(1).
* :mod:`repro.core.mh_kmodes` — :class:`MHKModes`, the MinHash +
  K-Modes instantiation evaluated in the paper.
* :mod:`repro.core.error_bound` — closed-form candidate-pair and
  cluster-recall probabilities (Tables I & II) and the Section III-C
  error bound.
* :mod:`repro.core.parameters` — (bands, rows) selection helpers
  implementing the guidance of Section III-D.
* :mod:`repro.core.shortlist` — shortlist gathering with fallback
  policies and per-iteration size accounting.
"""

from repro.core.error_bound import (
    candidate_pair_probability,
    cluster_recall_probability,
    error_bound,
    minimum_similarity,
)
from repro.core.framework import BaseLSHAcceleratedClustering
from repro.core.mh_kmodes import MHKModes
from repro.core.parameters import (
    ParameterRecommendation,
    probability_table,
    suggest_bands_rows,
)
from repro.core.shortlist import ShortlistAccumulator
from repro.core.streaming import ClusterModeTracker, StreamingMHKModes

__all__ = [
    "MHKModes",
    "StreamingMHKModes",
    "ClusterModeTracker",
    "BaseLSHAcceleratedClustering",
    "candidate_pair_probability",
    "cluster_recall_probability",
    "error_bound",
    "minimum_similarity",
    "suggest_bands_rows",
    "probability_table",
    "ParameterRecommendation",
    "ShortlistAccumulator",
]
