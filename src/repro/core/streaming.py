"""Streaming MH-K-Modes — the paper's Further Work, implemented.

The paper closes with: "adapting our algorithm to develop an online
streaming clustering framework would be another exciting future
research topic."  The index makes this natural: the expensive part of
assigning an item is gone (shortlists replace full scans), and a new
item can be hashed into the existing buckets in O(bands).

:class:`StreamingMHKModes` works in two phases:

1. **bootstrap** — an ordinary MH-K-Modes fit on an initial batch
   establishes modes and the clustered index (built *without*
   precomputed neighbour lists so it stays insertable);
2. **streaming** — each arriving item is MinHashed, inserted into the
   buckets with its cluster reference, and assigned to the nearest
   mode on its shortlist.  Per-cluster per-attribute value counts are
   maintained incrementally, and modes are refreshed from these counts
   every ``refresh_interval`` arrivals — no pass over past data ever
   happens again.

Items that collide with nothing fall back to a full mode scan (exact,
rare) or can be rejected, per ``stream_fallback``.
"""

from __future__ import annotations

import numpy as np

from repro.api.legacy import resolve_specs
from repro.api.model import ClusterModel
from repro.api.protocol import EstimatorProtocol, SpecAttributeSurface
from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, LSHSpec, TrainSpec
from repro.core.mh_kmodes import MHKModes
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    check_fitted,
)
from repro.lsh.minhash import MinHasher
from repro.lsh.tokens import TokenSets

__all__ = ["ClusterModeTracker", "StreamingMHKModes"]


class ClusterModeTracker:
    """Incremental per-cluster, per-attribute category counts.

    Maintains, for every cluster and attribute, a value → count map so
    the mode (most frequent value, smallest code on ties) can be read
    off at any time without touching historical items.
    """

    def __init__(self, n_clusters: int, n_attributes: int):
        if n_clusters <= 0 or n_attributes <= 0:
            raise ConfigurationError(
                "n_clusters and n_attributes must be positive, got "
                f"{n_clusters} and {n_attributes}"
            )
        self.n_clusters = int(n_clusters)
        self.n_attributes = int(n_attributes)
        self._counts: list[list[dict[int, int]]] = [
            [{} for _ in range(n_attributes)] for _ in range(n_clusters)
        ]
        self.cluster_sizes = np.zeros(n_clusters, dtype=np.int64)

    @classmethod
    def from_assignment(
        cls, X: np.ndarray, labels: np.ndarray, n_clusters: int
    ) -> "ClusterModeTracker":
        """Build counts from an existing batch assignment."""
        X = np.asarray(X)
        tracker = cls(n_clusters, X.shape[1])
        for item, cluster in zip(X, labels):
            tracker.add(item, int(cluster))
        return tracker

    def add(self, item: np.ndarray, cluster: int) -> None:
        """Count one item into ``cluster``."""
        if not 0 <= cluster < self.n_clusters:
            raise DataValidationError(
                f"cluster {cluster} outside [0, {self.n_clusters})"
            )
        row = self._counts[cluster]
        for j in range(self.n_attributes):
            value = int(item[j])
            row[j][value] = row[j].get(value, 0) + 1
        self.cluster_sizes[cluster] += 1

    def mode_of(self, cluster: int, fallback: np.ndarray) -> np.ndarray:
        """Current mode of ``cluster`` (``fallback`` where it is empty)."""
        row = self._counts[cluster]
        out = fallback.copy()
        for j in range(self.n_attributes):
            counts = row[j]
            if counts:
                # max count, ties to the smallest value code — matching
                # repro.kmodes.modes.compute_modes exactly.
                out[j] = min(
                    (value for value in counts),
                    key=lambda v: (-counts[v], v),
                )
        return out

    def modes(self, fallback: np.ndarray) -> np.ndarray:
        """All cluster modes at once."""
        fallback = np.asarray(fallback)
        if fallback.shape != (self.n_clusters, self.n_attributes):
            raise DataValidationError(
                f"fallback shape {fallback.shape} != "
                f"({self.n_clusters}, {self.n_attributes})"
            )
        return np.stack(
            [self.mode_of(c, fallback[c]) for c in range(self.n_clusters)]
        )


@register_estimator("streaming-mh-kmodes")
class StreamingMHKModes(SpecAttributeSurface, EstimatorProtocol):
    """Online MH-K-Modes over an unbounded item stream.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    lsh, engine, train:
        :class:`~repro.api.LSHSpec` / :class:`~repro.api.EngineSpec` /
        :class:`~repro.api.TrainSpec`, configuring both the bootstrap
        fit and the streaming index (as in :class:`repro.core.MHKModes`).
        With ``train.update_refs='batch'`` the bootstrap runs the
        engine's vectorised batch passes on any backend; with
        ``engine.n_shards > 1`` the insertable index is a
        :class:`~repro.engine.ShardedClusteredLSHIndex` and streamed
        arrivals are hashed into the shards round-robin.
    absent_code, domain_size:
        As in :class:`repro.core.MHKModes`.
    refresh_interval:
        Modes are recomputed from the incremental counts after this
        many streamed arrivals (and counts continue to accumulate in
        between).  Smaller = fresher modes, more overhead.
    stream_fallback:
        ``'full'`` — items whose shortlist is empty are assigned by a
        full scan over the modes (exact, rare);
        ``'error'`` — raise instead.
    **legacy:
        Deprecated flat kwargs (``bands=``, ``seed=``, ``backend=``,
        ...), mapped onto the specs with a
        :class:`DeprecationWarning`.

    Attributes
    ----------
    modes_:
        Current cluster modes.
    n_seen_:
        Total items absorbed (bootstrap + streamed).
    n_fallbacks_:
        Streamed items that needed the full-scan fallback.

    Examples
    --------
    >>> from repro.api import LSHSpec
    >>> from repro.data import RuleBasedGenerator
    >>> data = RuleBasedGenerator(n_clusters=5, n_attributes=12, seed=0).generate(120)
    >>> stream = StreamingMHKModes(n_clusters=5, lsh=LSHSpec(bands=8, rows=1, seed=0))
    >>> labels = stream.bootstrap(data.X[:80]).extend(data.X[80:])
    >>> len(labels)
    40
    """

    _accepts_specs = True
    _default_lsh = LSHSpec(family="minhash", bands=20, rows=5)
    _default_engine = EngineSpec()
    _default_train = TrainSpec()

    def __init__(
        self,
        n_clusters: int,
        lsh: LSHSpec | dict | None = None,
        engine: EngineSpec | dict | None = None,
        train: TrainSpec | dict | None = None,
        absent_code: int | None = None,
        domain_size: int | None = None,
        refresh_interval: int = 200,
        stream_fallback: str = "full",
        **legacy,
    ):
        lsh, engine, train, backend_instance = resolve_specs(
            type(self).__name__,
            lsh,
            engine,
            train,
            legacy,
            lsh_default=self._default_lsh,
            engine_default=self._default_engine,
            train_default=self._default_train,
        )
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if lsh.family != "minhash":
            raise ConfigurationError(
                f"StreamingMHKModes supports the 'minhash' family only, "
                f"got {lsh.family!r}"
            )
        if refresh_interval <= 0:
            raise ConfigurationError(
                f"refresh_interval must be positive, got {refresh_interval}"
            )
        if stream_fallback not in ("full", "error"):
            raise ConfigurationError(
                f"stream_fallback must be 'full' or 'error', got {stream_fallback!r}"
            )
        self.n_clusters = int(n_clusters)
        self.lsh = lsh
        self.engine = engine
        self.train = train
        self._backend_instance = backend_instance
        self.absent_code = absent_code
        self.domain_size = domain_size
        self.refresh_interval = int(refresh_interval)
        self.stream_fallback = stream_fallback

        self._bootstrap_model: MHKModes | None = None
        self._hasher: MinHasher | None = None
        self._tracker: ClusterModeTracker | None = None
        self._fitted_domain: int | None = None
        self._since_refresh = 0
        self._modes: np.ndarray | None = None
        self.n_seen_: int = 0
        self.n_fallbacks_: int = 0

    # legacy read surface (bands/rows/seed/backend/...) comes from
    # SpecAttributeSurface; update_refs stays the raw spec value here
    # because resolution happens inside the bootstrap fit.

    def _is_fitted(self) -> bool:
        return self._bootstrap_model is not None

    @property
    def modes_(self) -> np.ndarray:
        """Current cluster modes."""
        check_fitted(self)
        return self._modes

    # ------------------------------------------------------------------
    # phase 1: bootstrap
    # ------------------------------------------------------------------

    def bootstrap(self, X: np.ndarray, initial_centroids: np.ndarray | None = None):
        """Fit the initial batch and build the insertable index."""
        model = MHKModes(
            n_clusters=self.n_clusters,
            lsh=self.lsh,
            engine=self.engine,
            train=self.train,
            absent_code=self.absent_code,
            domain_size=self.domain_size,
            precompute_neighbours=False,  # keeps the index insertable
        )
        if self._backend_instance is not None:
            model._backend_instance = self._backend_instance
        model.fit(X, initial_centroids=initial_centroids)
        assert model.labels_ is not None and model.centroids_ is not None
        assert model.index_ is not None
        self._bootstrap_model = model
        self._hasher = model._hasher
        self._fitted_domain = (
            self.domain_size
            if self.domain_size is not None
            else model._fitted_domain_size
        )
        self._tracker = ClusterModeTracker.from_assignment(
            np.asarray(X), model.labels_, self.n_clusters
        )
        self._modes = model.centroids_.copy()
        self.n_seen_ = len(X)
        return self

    # ------------------------------------------------------------------
    # phase 2: streaming
    # ------------------------------------------------------------------

    def push(self, item: np.ndarray) -> int:
        """Absorb one arriving item; returns its assigned cluster."""
        check_fitted(self)
        assert (
            self._bootstrap_model is not None
            and self._hasher is not None
            and self._tracker is not None
            and self._modes is not None
        )
        item = np.asarray(item)
        if item.ndim != 1 or item.shape[0] != self._modes.shape[1]:
            raise DataValidationError(
                f"item must be 1-D with {self._modes.shape[1]} attributes, "
                f"got shape {item.shape}"
            )
        index = self._bootstrap_model.index_
        assert index is not None

        tokens = TokenSets.from_categorical_matrix(
            item[None, :],
            domain_size=self._fitted_domain,
            absent_code=self.absent_code,
        )
        signature = self._hasher.signatures(tokens)[0]
        shortlist = index.candidate_clusters_for_signature(signature)
        if shortlist.size == 0:
            if self.stream_fallback == "error":
                raise ConfigurationError(
                    "streamed item collided with nothing and "
                    "stream_fallback='error'"
                )
            self.n_fallbacks_ += 1
            shortlist = np.arange(self.n_clusters, dtype=np.int64)
        distances = np.count_nonzero(
            self._modes[shortlist] != item[None, :], axis=1
        )
        cluster = int(shortlist[np.argmin(distances)])

        index.insert(signature, cluster)
        self._tracker.add(item, cluster)
        self.n_seen_ += 1
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_interval:
            self.refresh_modes()
        return cluster

    def extend(self, X: np.ndarray) -> np.ndarray:
        """Absorb a batch of arrivals; returns their cluster labels."""
        X = np.asarray(X)
        if X.ndim != 2:
            raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
        return np.array([self.push(row) for row in X], dtype=np.int64)

    def refresh_modes(self) -> None:
        """Recompute modes from the incremental counts."""
        check_fitted(self)
        assert self._tracker is not None and self._modes is not None
        self._modes = self._tracker.modes(self._modes)
        self._since_refresh = 0

    # ------------------------------------------------------------------

    @property
    def cluster_sizes_(self) -> np.ndarray:
        """Items absorbed per cluster (bootstrap + streamed)."""
        check_fitted(self)
        assert self._tracker is not None
        return self._tracker.cluster_sizes.copy()

    def fitted_model(self) -> ClusterModel:
        """Export the current state as an immutable serving artifact.

        The artifact is an ``'mh-kmodes'`` :class:`~repro.api.ClusterModel`
        carrying the *current* modes and the live index — bootstrap
        items and every streamed arrival included — so a reconstructed
        model predicts exactly like this stream would assign (minus the
        insertion side effects, which belong to training).
        """
        check_fitted(self)
        assert self._bootstrap_model is not None and self._modes is not None
        index = self._bootstrap_model.index_
        state = {
            "cost": float("nan"),
            "n_iter": int(self._bootstrap_model.n_iter_),
            "converged": bool(self._bootstrap_model.converged_),
            "n_seen": int(self.n_seen_),
            "n_fallbacks": int(self.n_fallbacks_),
        }
        if self._fitted_domain is not None:
            state["fitted_domain_size"] = int(self._fitted_domain)
        return ClusterModel(
            algorithm="mh-kmodes",
            n_clusters=self.n_clusters,
            centroids=self._modes,
            lsh=self.lsh,
            engine=self.engine,
            train=self.train,
            labels=index.assignments,
            band_keys=index.band_keys,
            assignments=index.assignments,
            params={
                "absent_code": self.absent_code,
                "domain_size": self.domain_size,
                "precompute_neighbours": False,
            },
            state=state,
            metadata=self._artifact_metadata(),
        )
